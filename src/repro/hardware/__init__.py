"""Machine models: topology, calibration data, routing cost tables."""

from repro.hardware.calibration import (
    READOUT_SLOTS,
    SINGLE_QUBIT_SLOTS,
    TIMESLOT_NS,
    Calibration,
    EdgeCalibration,
    QubitCalibration,
    uniform_calibration,
)
from repro.hardware.calibration_gen import (
    CalibrationGenerator,
    NoiseProfile,
    default_ibmq16_calibration,
)
from repro.hardware.devices import (
    device_calibration,
    device_names,
    device_topology,
    ibmq5_topology,
    ibmq20_topology,
    linear_topology,
)
from repro.hardware.reliability import ReliabilityTables, RoutedCnot, route_cost
from repro.hardware.topology import (
    GridTopology,
    edge_key,
    ibmq16_topology,
    square_topology,
)

__all__ = [
    "Calibration",
    "CalibrationGenerator",
    "device_calibration",
    "device_names",
    "device_topology",
    "ibmq20_topology",
    "ibmq5_topology",
    "linear_topology",
    "EdgeCalibration",
    "GridTopology",
    "NoiseProfile",
    "QubitCalibration",
    "READOUT_SLOTS",
    "ReliabilityTables",
    "RoutedCnot",
    "SINGLE_QUBIT_SLOTS",
    "TIMESLOT_NS",
    "default_ibmq16_calibration",
    "edge_key",
    "ibmq16_topology",
    "route_cost",
    "square_topology",
    "uniform_calibration",
]
