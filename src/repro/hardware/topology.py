"""Hardware qubit topologies.

The paper assumes hardware qubits arranged as a 2-D grid of dimensions
Mx x My, with two-qubit gates permitted only between grid-adjacent qubits
(§4.1). IBMQ16 Rueschlikon is modeled as the 2 x 8 instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.exceptions import TopologyError

Edge = Tuple[int, int]


def edge_key(a: int, b: int) -> Edge:
    """Canonical (min, max) form of an undirected edge."""
    if a == b:
        raise TopologyError(f"self-edge on qubit {a}")
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class GridTopology:
    """An Mx x My grid of hardware qubits with nearest-neighbor coupling.

    Qubit ids are row-major: ``id = y * Mx + x``. Coordinates are
    ``(x, y)`` with ``0 <= x < Mx`` and ``0 <= y < My``.
    """

    mx: int
    my: int
    name: str = "grid"

    def __post_init__(self) -> None:
        if self.mx < 1 or self.my < 1:
            raise TopologyError("grid dimensions must be positive")

    @property
    def n_qubits(self) -> int:
        """Total number of hardware qubits."""
        return self.mx * self.my

    def qubit_at(self, x: int, y: int) -> int:
        """Qubit id at coordinate (x, y)."""
        if not (0 <= x < self.mx and 0 <= y < self.my):
            raise TopologyError(f"coordinate ({x}, {y}) outside grid")
        return y * self.mx + x

    def coords(self, qubit: int) -> Tuple[int, int]:
        """Coordinate (x, y) of a qubit id."""
        self._check(qubit)
        return qubit % self.mx, qubit // self.mx

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self.n_qubits:
            raise TopologyError(
                f"qubit {qubit} outside machine of {self.n_qubits} qubits")

    def distance(self, a: int, b: int) -> int:
        """Manhattan (grid) distance between two qubits."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def is_adjacent(self, a: int, b: int) -> bool:
        """Whether a CNOT between *a* and *b* is directly supported."""
        return self.distance(a, b) == 1

    def neighbors(self, qubit: int) -> List[int]:
        """Grid neighbors of a qubit, in increasing id order."""
        x, y = self.coords(qubit)
        out = []
        for dx, dy in ((0, -1), (-1, 0), (1, 0), (0, 1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.mx and 0 <= ny < self.my:
                out.append(self.qubit_at(nx, ny))
        return sorted(out)

    def edges(self) -> List[Edge]:
        """All undirected coupling edges in canonical order."""
        out: List[Edge] = []
        for q in range(self.n_qubits):
            for nb in self.neighbors(q):
                if nb > q:
                    out.append((q, nb))
        return out

    def edge_set(self) -> FrozenSet[Edge]:
        """Edges as a frozen set for O(1) membership tests."""
        return frozenset(self.edges())

    def iter_qubits(self) -> Iterator[int]:
        return iter(range(self.n_qubits))

    # ------------------------------------------------------------------
    # One-bend (L-shaped) paths, the paper's 1BP routing geometry
    # ------------------------------------------------------------------
    def one_bend_junctions(self, a: int, b: int) -> Tuple[int, int]:
        """The two corner junctions of the bounding rectangle of (a, b).

        Junction 0 is ``(bx, ay)`` (x-first travel from *a*), junction 1
        is ``(ax, by)`` (y-first). For collinear qubits both coincide
        with the straight-line path.
        """
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return self.qubit_at(bx, ay), self.qubit_at(ax, by)

    def one_bend_path(self, a: int, b: int, junction: int) -> List[int]:
        """Qubit ids along the L-path a -> junction -> b (inclusive).

        Args:
            junction: 0 for the x-first corner, 1 for the y-first corner.
        """
        if junction not in (0, 1):
            raise TopologyError("junction index must be 0 or 1")
        corner = self.one_bend_junctions(a, b)[junction]
        return self._straight(a, corner)[:-1] + self._straight(corner, b)

    def _straight(self, a: int, b: int) -> List[int]:
        """Axis-aligned path between two collinear-or-corner points."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        path = [a]
        x, y = ax, ay
        while x != bx:
            x += 1 if bx > x else -1
            path.append(self.qubit_at(x, y))
        while y != by:
            y += 1 if by > y else -1
            path.append(self.qubit_at(x, y))
        return path

    def bounding_rectangle(self, a: int, b: int) -> List[int]:
        """All qubits in the bounding rectangle of (a, b) — the region the
        RR policy reserves for a routed CNOT."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        x0, x1 = min(ax, bx), max(ax, bx)
        y0, y1 = min(ay, by), max(ay, by)
        return [self.qubit_at(x, y)
                for y in range(y0, y1 + 1) for x in range(x0, x1 + 1)]


def ibmq16_topology() -> GridTopology:
    """The 16-qubit IBMQ Rueschlikon machine as a 2 x 8 grid."""
    return GridTopology(mx=8, my=2, name="IBMQ16")


def ibmq5_topology() -> GridTopology:
    """A 5-qubit IBM device approximated as a 1x5 line."""
    return GridTopology(mx=5, my=1, name="IBMQ5")


def ibmq20_topology() -> GridTopology:
    """The 20-qubit IBM device (Tokyo-class) as a 5x4 grid."""
    return GridTopology(mx=5, my=4, name="IBMQ20")


def linear_topology(n_qubits: int, name: str = "") -> GridTopology:
    """A 1-D chain — the nearest-neighbor ion-trap-style layout."""
    if n_qubits < 1:
        raise TopologyError("need at least one qubit")
    return GridTopology(mx=n_qubits, my=1,
                        name=name or f"linear{n_qubits}")


def square_topology(n_qubits: int) -> GridTopology:
    """Smallest near-square grid holding *n_qubits* (for Fig.-11 sweeps)."""
    if n_qubits < 1:
        raise TopologyError("need at least one qubit")
    mx = 1
    while mx * mx < n_qubits:
        mx += 1
    my = mx
    while mx * (my - 1) >= n_qubits:
        my -= 1
    return GridTopology(mx=mx, my=my, name=f"grid{mx}x{my}")
