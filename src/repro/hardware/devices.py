"""Preset device lookups (compatibility layer over :mod:`repro.backend`).

The old ``DEVICE_REGISTRY`` dict lived here; machines are now
first-class :class:`~repro.backend.Backend` values registered with
:func:`repro.backend.register_backend` (presets in
:mod:`repro.backend.presets`). This module keeps the established
entry points — :func:`device_topology` and :func:`device_calibration`
— as thin wrappers over that registry, so adding a machine never means
editing this file again.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.calibration import Calibration
from repro.hardware.calibration_gen import NoiseProfile
from repro.hardware.topology import (  # noqa: F401 — re-exported (the
    GridTopology,                      # factories lived here pre-registry)
    ibmq5_topology,
    ibmq20_topology,
    linear_topology,
)

# The registry import is deliberately lazy (inside each function):
# repro.backend depends on the hardware submodules this package
# initializes, so an import-time reference here would be circular.


def device_names() -> tuple:
    """Registered preset device names (replaces ``DEVICE_REGISTRY``)."""
    from repro.backend import registered_backends

    return registered_backends()


def device_topology(name: str) -> GridTopology:
    """Look up a preset device's topology by name.

    Raises:
        TopologyError: For unknown device names (a
            :class:`~repro.exceptions.BackendError`, with a
            did-you-mean hint).
    """
    from repro.backend import get_backend

    return get_backend(name).topology


def device_calibration(name: str, day: int = 0, seed: Optional[int] = None,
                       profile: Optional[NoiseProfile] = None
                       ) -> Calibration:
    """Synthetic calibration snapshot for a preset device.

    Args:
        name: Registered backend name.
        day: Calibration day.
        seed: Calibration-generator seed override (default: the
            backend's own, 2019 for the built-in presets).
        profile: Noise-profile override (default: the backend's own —
            note several presets carry non-default profiles, so only
            pass one deliberately).
    """
    from repro.backend import get_backend

    backend = get_backend(name)
    overrides = {}
    if seed is not None:
        overrides["calibration_seed"] = seed
    if profile is not None:
        overrides["profile"] = profile
    if overrides:
        backend = backend.with_(**overrides)
    return backend.calibration(day)
