"""Preset device models.

Grid approximations of the machines discussed in the paper and its
related work, plus the linear (ion-trap-style) topology §9 mentions as
an extension target. All are :class:`GridTopology` instances, so every
compiler variant works on them unchanged.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import TopologyError
from repro.hardware.calibration import Calibration
from repro.hardware.calibration_gen import CalibrationGenerator, NoiseProfile
from repro.hardware.topology import GridTopology, ibmq16_topology


def ibmq5_topology() -> GridTopology:
    """A 5-qubit IBM device approximated as a 1x5 line."""
    return GridTopology(mx=5, my=1, name="IBMQ5")


def ibmq20_topology() -> GridTopology:
    """The 20-qubit IBM device (Tokyo-class) as a 5x4 grid."""
    return GridTopology(mx=5, my=4, name="IBMQ20")


def linear_topology(n_qubits: int, name: str = "") -> GridTopology:
    """A 1-D chain — the nearest-neighbor ion-trap-style layout."""
    if n_qubits < 1:
        raise TopologyError("need at least one qubit")
    return GridTopology(mx=n_qubits, my=1,
                        name=name or f"linear{n_qubits}")


#: Name -> topology factory, for CLI and experiment parameterization.
DEVICE_REGISTRY = {
    "ibmq16": ibmq16_topology,
    "ibmq5": ibmq5_topology,
    "ibmq20": ibmq20_topology,
}


def device_topology(name: str) -> GridTopology:
    """Look up a preset device by name.

    Raises:
        TopologyError: For unknown device names.
    """
    try:
        return DEVICE_REGISTRY[name.lower()]()
    except KeyError:
        raise TopologyError(
            f"unknown device {name!r}; known: {sorted(DEVICE_REGISTRY)}"
        ) from None


def device_calibration(name: str, day: int = 0, seed: int = 2019,
                       profile: NoiseProfile = NoiseProfile()
                       ) -> Calibration:
    """Synthetic calibration snapshot for a preset device."""
    topo = device_topology(name)
    return CalibrationGenerator(topo, seed=seed, profile=profile) \
        .snapshot(day)
