"""Reliability and duration tables derived from calibration data.

Implements the precomputations of §4.4 and §5 of the paper:

* ``EC`` — for every hardware-qubit pair and one-bend junction, the
  reliability of executing a routed CNOT (swap path + the CNOT itself);
* ``Delta`` — the per-pair routed-CNOT duration matrix (Constraint 5);
* most-reliable paths between all pairs via Dijkstra with edge weights
  ``-log(swap reliability)`` — the "Best Path" policy of the heuristics.

Routing model (paper §2, §4.2): a CNOT between qubits at grid distance d
needs d-1 SWAPs to bring the states adjacent, each SWAP being 3 CNOTs;
the state is swapped back afterwards, so the *duration* counts
``2 (d-1) tau_swap + tau_cnot`` while the paper's *reliability* example
(footnote 3) charges the one-way swaps plus the CNOT. Both conventions
are implemented; the optimizer uses the paper's.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import TopologyError
from repro.hardware.calibration import Calibration
from repro.hardware.topology import Edge, GridTopology, edge_key


@dataclass(frozen=True)
class RoutedCnot:
    """Cost summary of performing a CNOT along a specific swap path.

    Attributes:
        path: Hardware qubits from control to target, inclusive.
        reliability: One-way-swap reliability times CNOT reliability
            (the paper's objective convention).
        round_trip_reliability: Reliability including the return swaps
            actually executed on hardware.
        duration: ``2 (d-1) tau_swap + tau_cnot`` in timeslots.
    """

    path: Tuple[int, ...]
    reliability: float
    round_trip_reliability: float
    duration: float

    @property
    def n_swaps(self) -> int:
        """One-way SWAP count along the path."""
        return max(0, len(self.path) - 2)


def route_cost(calibration: Calibration, path: List[int]) -> RoutedCnot:
    """Evaluate a routed CNOT along *path* (control first, target last).

    The control state is swapped along ``path[0:-1]``; the CNOT executes
    on the final edge; afterwards the state is swapped back.

    Raises:
        TopologyError: If the path is not a chain of coupled qubits.
    """
    if len(path) < 2:
        raise TopologyError("path must contain at least control and target")
    topo = calibration.topology
    for a, b in zip(path, path[1:]):
        if not topo.is_adjacent(a, b):
            raise TopologyError(f"path step {a}->{b} is not a coupling edge")
    swap_edges = list(zip(path[:-2], path[1:-1]))
    swap_rel = 1.0
    swap_dur = 0.0
    for a, b in swap_edges:
        swap_rel *= calibration.swap_reliability(a, b)
        swap_dur += calibration.swap_duration(a, b)
    cnot_rel = calibration.cnot_reliability(path[-2], path[-1])
    cnot_dur = calibration.cnot_duration(path[-2], path[-1])
    return RoutedCnot(
        path=tuple(path),
        reliability=swap_rel * cnot_rel,
        round_trip_reliability=swap_rel * swap_rel * cnot_rel,
        duration=2.0 * swap_dur + cnot_dur,
    )


class ReliabilityTables:
    """All-pairs routing tables for one calibration snapshot.

    Args:
        calibration: The snapshot to precompute from.
    """

    def __init__(self, calibration: Calibration) -> None:
        self.calibration = calibration
        self.topology: GridTopology = calibration.topology
        self._one_bend: Dict[Tuple[int, int, int], RoutedCnot] = {}
        self._best_paths: Dict[int, Dict[int, RoutedCnot]] = {}
        self._swap_weights: Optional[Dict[Edge, float]] = None

    # ------------------------------------------------------------------
    # One-bend (1BP) tables: the EC and Delta matrices of §4.4
    # ------------------------------------------------------------------
    def one_bend(self, control: int, target: int,
                 junction: int) -> RoutedCnot:
        """EC entry: routed-CNOT cost via the given junction (0 or 1)."""
        key = (control, target, junction)
        if key not in self._one_bend:
            path = self.topology.one_bend_path(control, target, junction)
            self._one_bend[key] = route_cost(self.calibration, path)
        return self._one_bend[key]

    def best_one_bend(self, control: int, target: int) -> RoutedCnot:
        """Most reliable of the (at most) two one-bend routes."""
        if control == target:
            raise TopologyError("control and target coincide")
        options = [self.one_bend(control, target, 0)]
        j0, j1 = self.topology.one_bend_junctions(control, target)
        if j0 != j1:
            options.append(self.one_bend(control, target, 1))
        return max(options, key=lambda r: r.reliability)

    def delta(self, control: int, target: int) -> float:
        """Delta matrix entry: minimum routed-CNOT duration (1BP)."""
        if control == target:
            raise TopologyError("control and target coincide")
        options = [self.one_bend(control, target, 0)]
        j0, j1 = self.topology.one_bend_junctions(control, target)
        if j0 != j1:
            options.append(self.one_bend(control, target, 1))
        return min(r.duration for r in options)

    def log_reliability(self, control: int, target: int) -> float:
        """log of the best 1BP reliability — an objective term of Eq. 12."""
        return math.log(max(self.best_one_bend(control, target).reliability,
                            1e-12))

    # ------------------------------------------------------------------
    # Most-reliable paths (heuristics' "Best Path" policy, §5)
    # ------------------------------------------------------------------
    def best_path(self, control: int, target: int) -> RoutedCnot:
        """Most reliable swap path between any pair (Dijkstra).

        Rows are computed lazily per source and memoized, so callers
        that only ever route from a few qubits never pay for the full
        all-pairs table.
        """
        row = self._best_paths.get(control)
        if row is None:
            row = self._best_paths[control] = self._dijkstra_from(control)
        return row[target]

    def _edge_weights(self) -> Dict[Edge, float]:
        """``-log(swap reliability)`` per coupling edge, computed once."""
        if self._swap_weights is None:
            self._swap_weights = {
                edge_key(a, b): -math.log(
                    max(self.calibration.swap_reliability(a, b), 1e-12))
                for a, b in self.topology.edges()}
        return self._swap_weights

    def _dijkstra_from(self, source: int) -> Dict[int, RoutedCnot]:
        """Max-reliability paths from *source* under the swap cost model.

        Edge weight between adjacent u, v when extending a path whose
        last hop becomes a swap: we search over paths using
        ``-log(swap reliability)`` per interior edge, then rescore the
        final hop as a plain CNOT (matching :func:`route_cost`).
        """
        topo = self.topology
        weights = self._edge_weights()
        dist = {source: 0.0}
        prev: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, math.inf):
                continue
            for v in topo.neighbors(u):
                nd = d + weights[edge_key(u, v)]
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        result: Dict[int, RoutedCnot] = {}
        for target in topo.iter_qubits():
            if target == source:
                continue
            path = [target]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            result[target] = route_cost(self.calibration, path)
        return result

    # ------------------------------------------------------------------
    # Noise-unaware counterparts (used by T-SMT)
    # ------------------------------------------------------------------
    def uniform_duration(self, control: int, target: int,
                         tau_cnot: float = 3.0) -> float:
        """Duration with identical gate times: 2 (d-1) tau_swap + tau_cnot."""
        d = self.topology.distance(control, target)
        if d == 0:
            raise TopologyError("control and target coincide")
        return 2.0 * (d - 1) * 3.0 * tau_cnot + tau_cnot
