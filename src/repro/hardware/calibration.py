"""Machine calibration snapshots.

Mirrors the daily data IBM publishes for its devices (paper §2): per-qubit
relaxation/coherence times (T1/T2), readout error and single-qubit gate
error, and per-coupling CNOT error rate and gate duration. Durations are
expressed in IBMQ16 timeslots of 80 ns, the unit the paper reports.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.exceptions import CalibrationError
from repro.hardware.topology import Edge, GridTopology, edge_key

#: One scheduling timeslot, in nanoseconds (paper §6).
TIMESLOT_NS = 80.0

#: Duration of a single-qubit gate, in timeslots.
SINGLE_QUBIT_SLOTS = 1

#: Duration of a readout operation, in timeslots.
READOUT_SLOTS = 4


@dataclass(frozen=True)
class QubitCalibration:
    """Calibration record for one hardware qubit.

    Attributes:
        t1_us: Relaxation time in microseconds.
        t2_us: Coherence time in microseconds.
        readout_error: Symmetric readout error probability (the figure
            IBM publishes; also the value the compiler optimizes).
        single_qubit_error: Error probability of one 1-qubit gate.
        readout_asymmetry: Optional skew in (-1, 1): real devices
            misread |1> as 0 more often than the reverse. The executor
            uses ``p(flip|1) = readout_error * (1 + a)`` and
            ``p(flip|0) = readout_error * (1 - a)``, preserving the
            published symmetric average.
    """

    t1_us: float
    t2_us: float
    readout_error: float
    single_qubit_error: float
    readout_asymmetry: float = 0.0

    def __post_init__(self) -> None:
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise CalibrationError("T1/T2 must be positive")
        for p in (self.readout_error, self.single_qubit_error):
            if not 0.0 <= p < 1.0:
                raise CalibrationError(f"error rate {p} outside [0, 1)")
        if not -1.0 < self.readout_asymmetry < 1.0:
            raise CalibrationError("readout asymmetry outside (-1, 1)")
        if self.readout_error * (1.0 + abs(self.readout_asymmetry)) >= 1.0:
            raise CalibrationError("asymmetric readout error exceeds 1")

    @property
    def coherence_slots(self) -> float:
        """T2 expressed in scheduling timeslots."""
        return self.t2_us * 1000.0 / TIMESLOT_NS

    def readout_flip_probability(self, bit: int) -> float:
        """Probability of misreporting a qubit measured in state *bit*."""
        skew = self.readout_asymmetry if bit else -self.readout_asymmetry
        return self.readout_error * (1.0 + skew)

    def confusion_matrix(self) -> Tuple[Tuple[float, float],
                                        Tuple[float, float]]:
        """Column-stochastic readout confusion matrix ``M[measured][true]``.

        Column *j* is the measured-bit distribution of a qubit truly in
        state *j*, honoring the readout asymmetry; readout-error
        mitigation (:mod:`repro.mitigation.readout`) inverts it.
        Returned as nested tuples so this module stays numpy-free.
        """
        p0 = self.readout_flip_probability(0)
        p1 = self.readout_flip_probability(1)
        return ((1.0 - p0, p1), (p0, 1.0 - p1))


@dataclass(frozen=True)
class EdgeCalibration:
    """Calibration record for one coupling (CNOT-capable) edge.

    Attributes:
        cnot_error: Error probability of one CNOT on this edge.
        cnot_duration_slots: CNOT duration in timeslots.
    """

    cnot_error: float
    cnot_duration_slots: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.cnot_error < 1.0:
            raise CalibrationError(f"CNOT error {self.cnot_error} invalid")
        if self.cnot_duration_slots <= 0:
            raise CalibrationError("CNOT duration must be positive")


@dataclass
class Calibration:
    """One calibration cycle of a machine: the data the compiler adapts to.

    Attributes:
        topology: The machine this calibration describes.
        qubits: Per-qubit records, indexed by hardware qubit id.
        edges: Per-edge records keyed by canonical (min, max) edge.
        label: Free-form tag, e.g. the calibration date.
    """

    topology: GridTopology
    qubits: Dict[int, QubitCalibration]
    edges: Dict[Edge, EdgeCalibration]
    label: str = ""

    def __post_init__(self) -> None:
        expected_qubits = set(range(self.topology.n_qubits))
        if set(self.qubits) != expected_qubits:
            raise CalibrationError("qubit records do not cover the machine")
        expected_edges = self.topology.edge_set()
        if set(self.edges) != expected_edges:
            raise CalibrationError("edge records do not cover the coupling map")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def qubit(self, q: int) -> QubitCalibration:
        try:
            return self.qubits[q]
        except KeyError:
            raise CalibrationError(f"no record for qubit {q}") from None

    def edge(self, a: int, b: int) -> EdgeCalibration:
        try:
            return self.edges[edge_key(a, b)]
        except KeyError:
            raise CalibrationError(f"no coupling between {a} and {b}") from None

    def cnot_error(self, a: int, b: int) -> float:
        return self.edge(a, b).cnot_error

    def cnot_reliability(self, a: int, b: int) -> float:
        return 1.0 - self.edge(a, b).cnot_error

    def cnot_duration(self, a: int, b: int) -> float:
        return self.edge(a, b).cnot_duration_slots

    def readout_error(self, q: int) -> float:
        return self.qubit(q).readout_error

    def readout_reliability(self, q: int) -> float:
        return 1.0 - self.qubit(q).readout_error

    def coherence_slots(self, q: int) -> float:
        return self.qubit(q).coherence_slots

    def swap_duration(self, a: int, b: int) -> float:
        """Duration of one SWAP (three CNOTs) on an edge."""
        return 3.0 * self.cnot_duration(a, b)

    def swap_reliability(self, a: int, b: int) -> float:
        """Reliability of one SWAP (three CNOTs) on an edge."""
        return self.cnot_reliability(a, b) ** 3

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def content_id(self) -> str:
        """Stable content hash of the serialized snapshot.

        Two calibrations serializing identically — records, topology
        and label — share an id regardless of object identity; the
        sweep runtime's caches key on this. The label is deliberately
        part of the digest: cached ``CompiledProgram`` artifacts carry
        ``calibration_label``, so treating same-records/different-label
        snapshots as distinct trades a few cache misses for never
        serving a result stamped with another snapshot's label. The
        digest is computed once and memoized — records are frozen
        dataclasses and snapshots are treated as immutable throughout
        the repo, so the cached value stays valid.
        """
        cached = getattr(self, "_content_id", None)
        if cached is None:
            payload = json.dumps(self.to_dict(), sort_keys=True)
            cached = self._content_id = \
                hashlib.sha256(payload.encode()).hexdigest()
        return cached

    # ------------------------------------------------------------------
    # Summary statistics (used by reports and the noise-unaware variants)
    # ------------------------------------------------------------------
    def mean_cnot_error(self) -> float:
        values = [e.cnot_error for e in self.edges.values()]
        return sum(values) / len(values)

    def mean_cnot_duration(self) -> float:
        values = [e.cnot_duration_slots for e in self.edges.values()]
        return sum(values) / len(values)

    def mean_readout_error(self) -> float:
        values = [q.readout_error for q in self.qubits.values()]
        return sum(values) / len(values)

    def worst_coherence_slots(self) -> float:
        return min(q.coherence_slots for q in self.qubits.values())

    def variation(self, attribute: str) -> float:
        """Max/min spread of a per-qubit or per-edge attribute."""
        if attribute in ("t1_us", "t2_us", "readout_error",
                         "single_qubit_error"):
            values = [getattr(q, attribute) for q in self.qubits.values()]
        elif attribute in ("cnot_error", "cnot_duration_slots"):
            values = [getattr(e, attribute) for e in self.edges.values()]
        else:
            raise CalibrationError(f"unknown attribute {attribute!r}")
        lo = min(values)
        if lo <= 0:
            return math.inf
        return max(values) / lo

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "label": self.label,
            "topology": {"mx": self.topology.mx, "my": self.topology.my,
                         "name": self.topology.name},
            "qubits": {
                str(q): {"t1_us": c.t1_us, "t2_us": c.t2_us,
                         "readout_error": c.readout_error,
                         "single_qubit_error": c.single_qubit_error,
                         "readout_asymmetry": c.readout_asymmetry}
                for q, c in sorted(self.qubits.items())
            },
            "edges": {
                f"{a}-{b}": {"cnot_error": e.cnot_error,
                             "cnot_duration_slots": e.cnot_duration_slots}
                for (a, b), e in sorted(self.edges.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Calibration":
        topo = GridTopology(mx=data["topology"]["mx"],
                            my=data["topology"]["my"],
                            name=data["topology"].get("name", "grid"))
        qubits = {int(q): QubitCalibration(**rec)
                  for q, rec in data["qubits"].items()}
        edges: Dict[Edge, EdgeCalibration] = {}
        for key, rec in data["edges"].items():
            a, b = key.split("-")
            edges[edge_key(int(a), int(b))] = EdgeCalibration(**rec)
        return cls(topology=topo, qubits=qubits, edges=edges,
                   label=data.get("label", ""))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Calibration":
        return cls.from_dict(json.loads(text))


def uniform_calibration(topology: GridTopology,
                        t1_us: float = 90.0,
                        t2_us: float = 70.0,
                        readout_error: float = 0.07,
                        single_qubit_error: float = 0.002,
                        cnot_error: float = 0.04,
                        cnot_duration_slots: float = 3.0,
                        label: str = "uniform") -> Calibration:
    """A calibration with identical records everywhere.

    This is the machine model the noise-unaware T-SMT variant assumes:
    long-term machine averages with no spatial structure.
    """
    qubit = QubitCalibration(t1_us=t1_us, t2_us=t2_us,
                             readout_error=readout_error,
                             single_qubit_error=single_qubit_error)
    edge = EdgeCalibration(cnot_error=cnot_error,
                           cnot_duration_slots=cnot_duration_slots)
    return Calibration(
        topology=topology,
        qubits={q: qubit for q in topology.iter_qubits()},
        edges={e: edge for e in topology.edges()},
        label=label,
    )
