"""Synthetic calibration-data generator.

Stands in for the daily calibration logs of IBMQ16 (see DESIGN.md). The
generator reproduces the distributional facts the paper reports in §2:

* mean T2 about 70 us, varying up to ~9.2x across qubits and days;
* mean CNOT error 0.04, varying up to ~9x;
* mean readout error 0.07, varying up to ~5.9x;
* mean single-qubit gate error 0.002;
* CNOT durations varying up to ~1.8x across edges.

Each qubit/edge gets a persistent "fabrication quality" factor (material
defects are static) plus day-to-day drift modeled as an AR(1) process in
log space, which yields the autocorrelated daily wander of Fig. 1.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.hardware.calibration import (
    Calibration,
    EdgeCalibration,
    QubitCalibration,
)
from repro.hardware.topology import Edge, GridTopology


@dataclass(frozen=True)
class NoiseProfile:
    """Distributional parameters for synthetic calibration data.

    ``*_sigma`` values are log-space standard deviations of the static
    (fabrication) spread; ``drift_sigma`` scales the daily AR(1) wander
    and ``drift_rho`` its day-to-day correlation.
    """

    mean_t1_us: float = 90.0
    mean_t2_us: float = 70.0
    t2_sigma: float = 0.34
    mean_cnot_error: float = 0.04
    cnot_sigma: float = 0.38
    mean_readout_error: float = 0.07
    readout_sigma: float = 0.32
    mean_single_qubit_error: float = 0.002
    single_qubit_sigma: float = 0.3
    mean_cnot_duration_slots: float = 3.0
    cnot_duration_sigma: float = 0.12
    drift_sigma: float = 0.18
    drift_rho: float = 0.7
    max_error_rate: float = 0.35
    min_t2_us: float = 15.0


class CalibrationGenerator:
    """Generates a reproducible stream of daily calibration snapshots.

    Args:
        topology: The machine to calibrate.
        seed: RNG seed; the full day sequence is a pure function of it.
        profile: Distribution parameters (defaults follow the paper).
    """

    def __init__(self, topology: GridTopology, seed: int = 0,
                 profile: NoiseProfile = NoiseProfile()) -> None:
        self.topology = topology
        self.profile = profile
        self.seed = seed
        rng = random.Random(seed)
        # Static fabrication quality, in log space: positive values mean
        # a worse-than-average element.
        self._qubit_quality = {
            q: {
                "t2": rng.gauss(0.0, profile.t2_sigma),
                "readout": rng.gauss(0.0, profile.readout_sigma),
                "single": rng.gauss(0.0, profile.single_qubit_sigma),
            }
            for q in topology.iter_qubits()
        }
        self._edge_quality = {
            e: {
                "cnot": rng.gauss(0.0, profile.cnot_sigma),
                "duration": rng.gauss(0.0, profile.cnot_duration_sigma),
            }
            for e in topology.edges()
        }

    # ------------------------------------------------------------------
    def snapshot(self, day: int = 0) -> Calibration:
        """The calibration posted on *day* (deterministic per seed)."""
        drift_q = self._drift_states(day, kind="qubit")
        drift_e = self._drift_states(day, kind="edge")
        p = self.profile

        qubits: Dict[int, QubitCalibration] = {}
        for q in self.topology.iter_qubits():
            quality = self._qubit_quality[q]
            d = drift_q[q]
            t2 = max(p.min_t2_us,
                     p.mean_t2_us * math.exp(-quality["t2"] - d["t2"]))
            t1 = max(t2 * 0.8,
                     p.mean_t1_us * math.exp(-quality["t2"] * 0.6 - d["t2"] * 0.5))
            readout = _clamp_error(
                p.mean_readout_error * math.exp(quality["readout"] + d["readout"]),
                p.max_error_rate)
            single = _clamp_error(
                p.mean_single_qubit_error
                * math.exp(quality["single"] + d["single"]),
                p.max_error_rate)
            qubits[q] = QubitCalibration(t1_us=t1, t2_us=t2,
                                         readout_error=readout,
                                         single_qubit_error=single)

        edges: Dict[Edge, EdgeCalibration] = {}
        for e in self.topology.edges():
            quality = self._edge_quality[e]
            d = drift_e[e]
            cnot = _clamp_error(
                p.mean_cnot_error * math.exp(quality["cnot"] + d["cnot"]),
                p.max_error_rate)
            duration = max(1.0, p.mean_cnot_duration_slots
                           * math.exp(quality["duration"] + d["duration"] * 0.3))
            edges[e] = EdgeCalibration(cnot_error=cnot,
                                       cnot_duration_slots=duration)

        return Calibration(topology=self.topology, qubits=qubits,
                           edges=edges, label=f"day{day}")

    def days(self, n_days: int, start: int = 0) -> Iterator[Calibration]:
        """Iterate calibration snapshots for *n_days* consecutive days."""
        for day in range(start, start + n_days):
            yield self.snapshot(day)

    # ------------------------------------------------------------------
    def _drift_states(self, day: int, kind: str) -> dict:
        """AR(1) log-space drift per element, replayed from day 0.

        Replaying keeps ``snapshot(d)`` a pure function of (seed, d)
        while giving consecutive days correlated values.
        """
        p = self.profile
        innovation_scale = p.drift_sigma * math.sqrt(1.0 - p.drift_rho ** 2)
        if kind == "qubit":
            elements: List = list(self.topology.iter_qubits())
            keys = ("t2", "readout", "single")
        else:
            elements = list(self.topology.edges())
            keys = ("cnot", "duration")
        states = {el: {k: 0.0 for k in keys} for el in elements}
        for d in range(day + 1):
            rng = random.Random(f"{self.seed}/{kind}/{d}")
            for el in elements:
                for k in keys:
                    shock = rng.gauss(0.0, 1.0)
                    if d == 0:
                        states[el][k] = p.drift_sigma * shock
                    else:
                        states[el][k] = (p.drift_rho * states[el][k]
                                         + innovation_scale * shock)
        return states


def _clamp_error(value: float, max_error: float) -> float:
    return min(max(value, 1e-5), max_error)


def default_ibmq16_calibration(day: int = 0, seed: int = 2019) -> Calibration:
    """Convenience: the repo-wide default synthetic IBMQ16 snapshot."""
    from repro.hardware.topology import ibmq16_topology

    return CalibrationGenerator(ibmq16_topology(), seed=seed).snapshot(day)
