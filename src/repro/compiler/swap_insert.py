"""SWAP insertion: lowering a scheduled logical circuit to hardware gates.

Every routed CNOT becomes: SWAPs moving the control state along the
route until it is adjacent to the target, the CNOT itself, and the
mirror SWAPs restoring the layout (the paper's static-mapping model,
whose duration is ``2 (d-1) tau_swap + tau_cnot``). Each SWAP expands
into three CNOTs on its edge. The result is a physical circuit whose
two-qubit gates all lie on coupling edges.

Physical gate *times* are assigned by an ASAP pass over the emitted
order using the calibrated per-edge durations — the timing the control
electronics would actually realize — independent of whatever duration
model the mapping variant assumed. The noisy simulator uses these times
for idle-decoherence windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.compiler.scheduling.list_scheduler import Schedule
from repro.exceptions import CompilationError
from repro.hardware.calibration import (
    READOUT_SLOTS,
    SINGLE_QUBIT_SLOTS,
    Calibration,
)
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate


@dataclass
class PhysicalProgram:
    """A hardware-level circuit with per-gate timing.

    Attributes:
        circuit: Circuit over hardware qubit indices; every ``cx`` acts
            on a coupling edge.
        times: Parallel list of (start, duration) per physical gate, in
            timeslots, ASAP under calibrated durations.
        swap_cnots: Number of CNOTs inserted purely for movement.
    """

    circuit: Circuit
    times: List[Tuple[float, float]] = field(default_factory=list)
    swap_cnots: int = 0

    def __post_init__(self) -> None:
        if len(self.times) != len(self.circuit.gates):
            raise CompilationError("times/gates length mismatch")

    @property
    def duration(self) -> float:
        """Finish time of the last physical gate."""
        return max((s + d for s, d in self.times), default=0.0)


def insert_swaps(logical: Circuit, schedule: Schedule,
                 placement: Dict[int, int],
                 calibration: Calibration) -> PhysicalProgram:
    """Lower *logical* (already scheduled) to a physical program.

    Gates are emitted in schedule order, which respects dependencies;
    concurrency across disjoint regions survives in the ASAP timing.

    Measurements are deferred to the end of the physical program (the
    devices the paper targets only support terminal readout). This is
    exact: routed CNOTs swap-restore every qubit they pass through, so a
    measured qubit's state at end-of-circuit equals its state at the
    logical measurement point.

    Raises:
        CompilationError: If the logical program operates on a qubit
            after measuring it (deferral would change semantics).
    """
    _check_terminal_measurements(logical)
    n_hw = calibration.topology.n_qubits
    physical = Circuit(n_hw, max(logical.n_cbits, 1),
                       name=f"{logical.name}@{calibration.topology.name}")
    swap_cnots = 0
    deferred_measures = []

    for item in schedule.gates:
        gate = logical.gates[item.index]
        if gate.name == "barrier":
            continue
        if gate.is_measure:
            deferred_measures.append(
                (placement[gate.qubits[0]], gate.cbit))
        elif gate.is_two_qubit:
            if item.route is None:
                raise CompilationError("scheduled CNOT lacks a route")
            swap_cnots += _emit_routed_cnot(physical, item.route.path,
                                            gate.name)
        else:
            hw = placement[gate.qubits[0]]
            physical.add(gate.name, hw, param=gate.param)

    for hw, cbit in deferred_measures:
        physical.measure(hw, cbit=cbit)

    times = _asap_times(physical, calibration)
    return PhysicalProgram(circuit=physical, times=times,
                           swap_cnots=swap_cnots)


def _check_terminal_measurements(logical: Circuit) -> None:
    measured = set()
    for gate in logical.gates:
        if gate.name == "barrier":
            continue
        for q in gate.qubits:
            if q in measured:
                raise CompilationError(
                    f"qubit {q} is used after its measurement; only "
                    f"terminal measurements are supported")
        if gate.is_measure:
            measured.add(gate.qubits[0])


def _emit_routed_cnot(physical: Circuit, path: Tuple[int, ...],
                      gate_name: str) -> int:
    """Emit swaps + the 2q gate + return swaps; returns movement count."""
    swap_edges = list(zip(path[:-2], path[1:-1]))
    inserted = 0

    def emit_swap(a: int, b: int) -> None:
        nonlocal inserted
        physical.cx(a, b)
        physical.cx(b, a)
        physical.cx(a, b)
        inserted += 3

    for a, b in swap_edges:
        emit_swap(a, b)
    if gate_name == "cx":
        physical.cx(path[-2], path[-1])
    else:
        physical.add(gate_name, path[-2], path[-1])
    for a, b in reversed(swap_edges):
        emit_swap(a, b)
    return inserted


def _asap_times(physical: Circuit,
                calibration: Calibration) -> List[Tuple[float, float]]:
    """As-soon-as-possible start times under calibrated durations."""
    free_at: Dict[int, float] = {}
    times: List[Tuple[float, float]] = []
    for gate in physical.gates:
        duration = _physical_duration(gate, calibration)
        start = max((free_at.get(q, 0.0) for q in gate.qubits), default=0.0)
        for q in gate.qubits:
            free_at[q] = start + duration
        times.append((start, duration))
    return times


def apply_peephole(program: PhysicalProgram,
                   calibration: Calibration) -> PhysicalProgram:
    """Cancel adjacent inverse pairs in a physical program.

    Typical wins come from a routed CNOT's swap-back cancelling against
    the next CNOT's identical swap-forward. Timing is re-derived with
    the same ASAP pass; the movement-CNOT count is reduced by the number
    of cancelled CNOTs (cancellations only ever remove movement or
    redundant logic, never the routed CNOT semantics).
    """
    from repro.compiler.peephole import cancel_adjacent_inverses

    optimized = cancel_adjacent_inverses(program.circuit)
    removed_cx = (program.circuit.cnot_count() - optimized.cnot_count())
    times = _asap_times(optimized, calibration)
    return PhysicalProgram(
        circuit=optimized,
        times=times,
        swap_cnots=max(0, program.swap_cnots - removed_cx),
    )


def _physical_duration(gate: Gate, calibration: Calibration) -> float:
    if gate.is_measure:
        return float(READOUT_SLOTS)
    if gate.is_two_qubit:
        duration = calibration.cnot_duration(*gate.qubits)
        if gate.name == "swap":
            return 3.0 * duration
        return duration
    return float(SINGLE_QUBIT_SLOTS)
