"""Top-level compilation entry point (Fig. 3 of the paper).

``compile_circuit`` is a thin wrapper over the pass-manager pipeline
(:mod:`repro.compiler.pipeline`): it builds the canonical pass list for
the options — mapping (per the selected variant) → scheduling and
routing → SWAP insertion → optional peephole → reliability estimation —
and returns a :class:`CompiledProgram` carrying the executable and its
predicted quality metrics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional, Tuple

from repro.compiler.mapping.base import Mapper, MappingResult
from repro.compiler.metrics import ReliabilityEstimate
from repro.compiler.options import CompilerOptions
from repro.compiler.scheduling.list_scheduler import Schedule
from repro.compiler.swap_insert import PhysicalProgram
from repro.hardware.calibration import Calibration
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit
from repro.ir.qasm import circuit_to_qasm


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock record of one pipeline stage.

    Attributes:
        name: The pass's registered name (e.g. ``mapping[r-smt*]``).
        seconds: Time spent inside the pass (0 when served from cache).
        cached: Whether the stage-prefix cache supplied the artifact.
    """

    name: str
    seconds: float
    cached: bool = False


@dataclass
class CompiledProgram:
    """The compiler's output artifact.

    Attributes:
        logical: The input circuit.
        physical: Hardware-level program (swaps expanded) with timing.
        placement: Program qubit -> hardware qubit.
        schedule: The logical-level schedule.
        reliability: Compile-time reliability estimate.
        options: The configuration used.
        mapping: Mapper diagnostics (objective, optimality, nodes).
        compile_time: End-to-end compilation seconds (near zero when
            the program was served from a compile cache).
        calibration_label: Which calibration snapshot was used.
        pass_timings: Per-pass wall-clock breakdown, pipeline order.
        cache_hit: Whether this value came from a compile cache rather
            than a fresh pipeline run.
        verification: Report of the verify pass, when it was in the
            pipeline.
    """

    logical: Circuit
    physical: PhysicalProgram
    placement: Dict[int, int]
    schedule: Schedule
    reliability: ReliabilityEstimate
    options: CompilerOptions
    mapping: MappingResult
    compile_time: float
    calibration_label: str = ""
    pass_timings: Tuple[PassTiming, ...] = ()
    cache_hit: bool = False
    verification: Optional["VerificationReport"] = None  # noqa: F821

    @property
    def duration(self) -> float:
        """Scheduled execution duration in timeslots."""
        return self.schedule.makespan

    @property
    def swap_count(self) -> int:
        """One-way SWAP operations inserted for communication."""
        return self.schedule.swap_count()

    @property
    def estimated_success(self) -> float:
        """Paper-convention reliability score of the mapping."""
        return self.reliability.score

    def qasm(self) -> str:
        """OpenQASM 2.0 text of the physical program."""
        return circuit_to_qasm(self.physical.circuit)

    @cached_property
    def _fingerprint(self) -> str:
        hasher = hashlib.sha256()
        hasher.update(self.physical.circuit.fingerprint().encode())
        for start, duration in self.physical.times:
            hasher.update(f"{start!r},{duration!r};".encode())
        for q, h in sorted(self.placement.items()):
            hasher.update(f"{q}->{h};".encode())
        hasher.update(self.calibration_label.encode())
        hasher.update(self.options.fingerprint().encode())
        return hasher.hexdigest()

    def fingerprint(self) -> str:
        """Stable content hash of the compiled artifact.

        Covers everything that determines noisy-execution behavior —
        the physical gate sequence, its timing, the placement, the
        calibration snapshot label and the options — but not wall-clock
        measurements like ``compile_time`` or provenance like
        ``cache_hit``. The trace cache keys on this, so two identical
        compilations (e.g. a compile-cache hit replayed in another
        process) share one lowered trace.
        """
        return self._fingerprint

    def timing_report(self) -> str:
        """Multi-line per-pass timing breakdown (``repro compile
        --timing``)."""
        if not self.pass_timings:
            return "no per-pass timings recorded"
        total = sum(t.seconds for t in self.pass_timings)
        width = max(len(t.name) for t in self.pass_timings)
        lines = []
        for t in self.pass_timings:
            share = t.seconds / total if total > 0 else 0.0
            note = "  (cached)" if t.cached else ""
            lines.append(f"{t.name:<{width}}  {t.seconds * 1000:8.2f} ms"
                         f"  {share:5.1%}{note}")
        lines.append(f"{'total':<{width}}  {total * 1000:8.2f} ms")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line human-readable description."""
        return (f"{self.logical.name}: variant={self.options.variant} "
                f"duration={self.duration:.0f} slots "
                f"swaps={self.swap_count} "
                f"est.reliability={self.estimated_success:.3f} "
                f"compile={self.compile_time * 1000:.1f} ms")


def make_mapper(options: CompilerOptions) -> Mapper:
    """Instantiate the mapping pass for a variant (registry lookup)."""
    from repro.compiler.pipeline import mapper_for

    return mapper_for(options)


def compile_circuit(circuit: Circuit, calibration: Calibration,
                    options: Optional[CompilerOptions] = None,
                    tables: Optional[ReliabilityTables] = None,
                    stage_cache=None) -> CompiledProgram:
    """Compile *circuit* for the machine described by *calibration*.

    Thin wrapper building the canonical pipeline
    (:func:`repro.compiler.pipeline.build_pipeline`) from the options
    and running it once.

    Args:
        circuit: Logical program (any qubit connectivity).
        calibration: Machine snapshot to adapt to.
        options: Variant selection; defaults to R-SMT* with omega 0.5.
        tables: Precomputed routing tables (reuse across compilations of
            the same snapshot to save time).
        stage_cache: Optional :class:`~repro.runtime.cache.StageCache`
            sharing per-pass artifacts (e.g. the SMT mapping) across
            compilations that agree on a pipeline prefix.

    Returns:
        The compiled artifact, ready for the noisy executor or QASM dump.
    """
    from repro.compiler.pipeline import build_pipeline

    options = options or CompilerOptions.r_smt_star()
    return build_pipeline(options).run(circuit, calibration, options,
                                       tables=tables,
                                       stage_cache=stage_cache)
