"""Top-level compilation pipeline (Fig. 3 of the paper).

``compile_circuit`` runs: mapping (per the selected variant) →
scheduling and routing (list scheduler + routing policy) → SWAP
insertion → OpenQASM code generation, returning a
:class:`CompiledProgram` carrying the executable and its predicted
quality metrics.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.mapping.base import Mapper, MappingResult
from repro.compiler.mapping.greedy import GreedyEdgeMapper, GreedyVertexMapper
from repro.compiler.mapping.smt import ReliabilitySmtMapper, TimeSmtMapper
from repro.compiler.mapping.trivial import TrivialMapper
from repro.compiler.metrics import ReliabilityEstimate, estimate_reliability
from repro.compiler.options import (
    VARIANT_GREEDY_E,
    VARIANT_GREEDY_V,
    VARIANT_QISKIT,
    VARIANT_R_SMT_STAR,
    VARIANT_T_SMT,
    VARIANT_T_SMT_STAR,
    CompilerOptions,
)
from repro.compiler.scheduling.list_scheduler import Schedule, schedule_circuit
from repro.compiler.swap_insert import (
    PhysicalProgram,
    apply_peephole,
    insert_swaps,
)
from repro.exceptions import CompilationError
from repro.hardware.calibration import Calibration
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit
from repro.ir.qasm import circuit_to_qasm


@dataclass
class CompiledProgram:
    """The compiler's output artifact.

    Attributes:
        logical: The input circuit.
        physical: Hardware-level program (swaps expanded) with timing.
        placement: Program qubit -> hardware qubit.
        schedule: The logical-level schedule.
        reliability: Compile-time reliability estimate.
        options: The configuration used.
        mapping: Mapper diagnostics (objective, optimality, nodes).
        compile_time: End-to-end compilation seconds.
        calibration_label: Which calibration snapshot was used.
    """

    logical: Circuit
    physical: PhysicalProgram
    placement: Dict[int, int]
    schedule: Schedule
    reliability: ReliabilityEstimate
    options: CompilerOptions
    mapping: MappingResult
    compile_time: float
    calibration_label: str = ""

    @property
    def duration(self) -> float:
        """Scheduled execution duration in timeslots."""
        return self.schedule.makespan

    @property
    def swap_count(self) -> int:
        """One-way SWAP operations inserted for communication."""
        return self.schedule.swap_count()

    @property
    def estimated_success(self) -> float:
        """Paper-convention reliability score of the mapping."""
        return self.reliability.score

    def qasm(self) -> str:
        """OpenQASM 2.0 text of the physical program."""
        return circuit_to_qasm(self.physical.circuit)

    def fingerprint(self) -> str:
        """Stable content hash of the compiled artifact.

        Covers everything that determines noisy-execution behavior —
        the physical gate sequence, its timing, the placement, the
        calibration snapshot label and the options — but not wall-clock
        measurements like ``compile_time``. The trace cache keys on
        this, so two identical compilations (e.g. a compile-cache hit
        replayed in another process) share one lowered trace.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            hasher = hashlib.sha256()
            hasher.update(self.physical.circuit.fingerprint().encode())
            for start, duration in self.physical.times:
                hasher.update(f"{start!r},{duration!r};".encode())
            for q, h in sorted(self.placement.items()):
                hasher.update(f"{q}->{h};".encode())
            hasher.update(self.calibration_label.encode())
            hasher.update(self.options.fingerprint().encode())
            cached = self._fingerprint = hasher.hexdigest()
        return cached

    def summary(self) -> str:
        """One-line human-readable description."""
        return (f"{self.logical.name}: variant={self.options.variant} "
                f"duration={self.duration:.0f} slots "
                f"swaps={self.swap_count} "
                f"est.reliability={self.estimated_success:.3f} "
                f"compile={self.compile_time * 1000:.1f} ms")


def make_mapper(options: CompilerOptions) -> Mapper:
    """Instantiate the mapping pass for a variant."""
    if options.variant == VARIANT_QISKIT:
        return TrivialMapper()
    if options.variant in (VARIANT_T_SMT, VARIANT_T_SMT_STAR):
        return TimeSmtMapper(options)
    if options.variant == VARIANT_R_SMT_STAR:
        return ReliabilitySmtMapper(options)
    if options.variant == VARIANT_GREEDY_V:
        return GreedyVertexMapper(options)
    if options.variant == VARIANT_GREEDY_E:
        return GreedyEdgeMapper(options)
    raise CompilationError(f"unknown variant {options.variant!r}")


def compile_circuit(circuit: Circuit, calibration: Calibration,
                    options: Optional[CompilerOptions] = None,
                    tables: Optional[ReliabilityTables] = None
                    ) -> CompiledProgram:
    """Compile *circuit* for the machine described by *calibration*.

    Args:
        circuit: Logical program (any qubit connectivity).
        calibration: Machine snapshot to adapt to.
        options: Variant selection; defaults to R-SMT* with omega 0.5.
        tables: Precomputed routing tables (reuse across compilations of
            the same snapshot to save time).

    Returns:
        The compiled artifact, ready for the noisy executor or QASM dump.
    """
    options = options or CompilerOptions.r_smt_star()
    start = time.perf_counter()
    if tables is None:
        tables = ReliabilityTables(calibration)
    mapper = make_mapper(options)
    mapping = mapper.run(circuit, calibration, tables)
    schedule = schedule_circuit(circuit, mapping.placement, calibration,
                                tables, options)
    physical = insert_swaps(circuit, schedule, mapping.placement,
                            calibration)
    if options.peephole:
        physical = apply_peephole(physical, calibration)
    reliability = estimate_reliability(circuit, schedule, mapping.placement,
                                       calibration)
    elapsed = time.perf_counter() - start
    return CompiledProgram(
        logical=circuit,
        physical=physical,
        placement=dict(mapping.placement),
        schedule=schedule,
        reliability=reliability,
        options=options,
        mapping=mapping,
        compile_time=elapsed,
        calibration_label=calibration.label,
    )
