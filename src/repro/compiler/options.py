"""Compiler configuration — Table 1 of the paper.

A :class:`CompilerOptions` value selects one row of Table 1 (variant,
routing policy, readout weight omega, solver limits). The named
constructors build the exact configurations the paper evaluates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.exceptions import CompilationError

#: Mapping algorithm names.
VARIANT_QISKIT = "qiskit"        # baseline: trivial layout, no noise data
VARIANT_T_SMT = "t-smt"          # minimize duration, uniform gate times
VARIANT_T_SMT_STAR = "t-smt*"    # minimize duration, calibrated times
VARIANT_R_SMT_STAR = "r-smt*"    # maximize reliability (noise-adaptive)
VARIANT_GREEDY_V = "greedyv*"    # heaviest-vertex-first heuristic
VARIANT_GREEDY_E = "greedye*"    # heaviest-edge-first heuristic

ALL_VARIANTS = (
    VARIANT_QISKIT, VARIANT_T_SMT, VARIANT_T_SMT_STAR,
    VARIANT_R_SMT_STAR, VARIANT_GREEDY_V, VARIANT_GREEDY_E,
)

#: Routing policy names (paper §4.3 / §5).
ROUTE_RECTANGLE = "rr"     # rectangle reservation
ROUTE_ONE_BEND = "1bp"     # one-bend paths
ROUTE_BEST_PATH = "best"   # Dijkstra most-reliable path (heuristics)
ROUTE_SHORTEST = "shortest"  # noise-unaware shortest path (baseline)

ALL_ROUTES = (ROUTE_RECTANGLE, ROUTE_ONE_BEND, ROUTE_BEST_PATH,
              ROUTE_SHORTEST)


@dataclass(frozen=True)
class CompilerOptions:
    """Options selecting and tuning a compiler variant.

    Attributes:
        variant: One of :data:`ALL_VARIANTS`.
        routing: One of :data:`ALL_ROUTES`.
        omega: Readout-vs-CNOT weight of Eq. 12 (R-SMT* only).
        solver_time_limit: Branch-and-bound budget in seconds.
        uniform_cnot_slots: CNOT duration assumed by the noise-unaware
            T-SMT variant, in timeslots.
        coherence_slots: Static coherence bound (Constraint 4) for the
            noise-unaware variant, in timeslots.
        enforce_coherence: Raise on coherence-deadline violations rather
            than only flagging them.
        peephole: Apply adjacent-inverse cancellation to the physical
            program (off by default — the paper's configurations,
            including the Qiskit 0.5.7 baseline, do no such cleanup).
        seed: Tie-breaking seed for heuristics.
        solver_workers: Processes for the portfolio branch-and-bound
            (R-SMT*). Values above 1 split the root branching across a
            process pool; the merged answer is bit-identical to the
            serial proof, so this knob — like the array backend — is
            deliberately *excluded* from :meth:`fingerprint` (same
            results, same cache keys).
    """

    variant: str = VARIANT_R_SMT_STAR
    routing: str = ROUTE_ONE_BEND
    omega: float = 0.5
    solver_time_limit: Optional[float] = 60.0
    uniform_cnot_slots: float = 3.0
    coherence_slots: float = 1000.0
    enforce_coherence: bool = False
    peephole: bool = False
    seed: int = 0
    solver_workers: int = 1

    #: Fields that cannot change compiled artifacts and therefore stay
    #: out of the fingerprint (cf. the array-backend precedent).
    _NON_SEMANTIC_FIELDS = ("solver_workers",)

    def __post_init__(self) -> None:
        if self.variant not in ALL_VARIANTS:
            raise CompilationError(f"unknown variant {self.variant!r}")
        if self.routing not in ALL_ROUTES:
            raise CompilationError(f"unknown routing {self.routing!r}")
        if not 0.0 <= self.omega <= 1.0:
            raise CompilationError("omega must lie in [0, 1]")
        if self.solver_workers < 1:
            raise CompilationError("solver_workers must be >= 1")

    @property
    def is_noise_aware(self) -> bool:
        """Whether the variant reads calibration data (the star variants)."""
        return self.variant not in (VARIANT_QISKIT, VARIANT_T_SMT)

    def with_(self, **changes) -> "CompilerOptions":
        """Functional update, e.g. ``opts.with_(omega=1.0)``."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable content hash over every semantic option field.

        Equal option values share a fingerprint across processes and
        sessions (unlike ``hash()``), which is what the sweep runtime's
        compile cache keys on. Fields that provably cannot change the
        compiled artifact (``solver_workers`` — the portfolio solver is
        bit-identical to serial) are excluded so turning them does not
        shed caches.
        """
        parts = ";".join(f"{f.name}={getattr(self, f.name)!r}"
                         for f in fields(self)
                         if f.name not in self._NON_SEMANTIC_FIELDS)
        return hashlib.sha256(parts.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Table-1 rows
    # ------------------------------------------------------------------
    @classmethod
    def qiskit(cls) -> "CompilerOptions":
        """IBM Qiskit 0.5.7-style baseline."""
        return cls(variant=VARIANT_QISKIT, routing=ROUTE_SHORTEST)

    @classmethod
    def t_smt(cls, routing: str = ROUTE_RECTANGLE) -> "CompilerOptions":
        """T-SMT: minimize duration, no calibration data (RR or 1BP)."""
        return cls(variant=VARIANT_T_SMT, routing=routing)

    @classmethod
    def t_smt_star(cls, routing: str = ROUTE_RECTANGLE) -> "CompilerOptions":
        """T-SMT*: minimize duration with calibrated gate times."""
        return cls(variant=VARIANT_T_SMT_STAR, routing=routing)

    @classmethod
    def r_smt_star(cls, omega: float = 0.5) -> "CompilerOptions":
        """R-SMT*: maximize reliability (1BP routing, per the paper)."""
        return cls(variant=VARIANT_R_SMT_STAR, routing=ROUTE_ONE_BEND,
                   omega=omega)

    @classmethod
    def greedy_v(cls) -> "CompilerOptions":
        """GreedyV*: heaviest-vertex-first, best-path routing."""
        return cls(variant=VARIANT_GREEDY_V, routing=ROUTE_BEST_PATH)

    @classmethod
    def greedy_e(cls) -> "CompilerOptions":
        """GreedyE*: heaviest-edge-first, best-path routing."""
        return cls(variant=VARIANT_GREEDY_E, routing=ROUTE_BEST_PATH)
