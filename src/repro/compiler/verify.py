"""Compiled-program verification.

Independent checks a downstream user can run on any
:class:`~repro.compiler.compile.CompiledProgram` before trusting it:

* **structural** — every two-qubit gate sits on a coupling edge, the
  placement is injective, measurements are terminal, timing is
  serialized per qubit;
* **semantic** — the physical program computes the same measured-outcome
  distribution as the logical program under the placement (exact
  statevector comparison, feasible for the NISQ-scale programs this
  library targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.compiler.compile import CompiledProgram
from repro.exceptions import CompilationError
from repro.hardware.calibration import Calibration
from repro.ir.circuit import Circuit
from repro.simulator.statevector import StateVector


@dataclass
class VerificationReport:
    """Outcome of verifying one compiled program.

    Attributes:
        ok: True when every check passed.
        errors: Human-readable failure descriptions.
        checks_run: Names of the checks performed.
    """

    ok: bool
    errors: List[str] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise CompilationError("verification failed: "
                                   + "; ".join(self.errors))


def verify_compiled(program: CompiledProgram, calibration: Calibration,
                    semantic: bool = True,
                    max_semantic_qubits: int = 14) -> VerificationReport:
    """Run all verification checks on *program*.

    Args:
        semantic: Include the statevector equivalence check.
        max_semantic_qubits: Skip the semantic check when the physical
            program touches more qubits than this (cost is 2^n).
    """
    errors: List[str] = []
    checks: List[str] = []

    checks.append("structural:coupling")
    errors.extend(_check_coupling(program, calibration))
    checks.append("structural:placement")
    errors.extend(_check_placement(program, calibration))
    checks.append("structural:terminal-measurement")
    errors.extend(_check_terminal_measurements(program.physical.circuit))
    checks.append("structural:timing")
    errors.extend(_check_timing(program))

    if semantic:
        used = len(program.physical.circuit.used_qubits())
        if used <= max_semantic_qubits:
            checks.append("semantic:distribution")
            errors.extend(_check_semantics(program))
        else:
            checks.append("semantic:skipped(too-large)")

    return VerificationReport(ok=not errors, errors=errors,
                              checks_run=checks)


# ----------------------------------------------------------------------
# Structural checks
# ----------------------------------------------------------------------
def _check_coupling(program: CompiledProgram,
                    calibration: Calibration) -> List[str]:
    errors = []
    topo = calibration.topology
    for i, gate in enumerate(program.physical.circuit.gates):
        if gate.is_two_qubit and not topo.is_adjacent(*gate.qubits):
            errors.append(f"physical gate {i} ({gate}) is not on a "
                          f"coupling edge")
    return errors


def _check_placement(program: CompiledProgram,
                     calibration: Calibration) -> List[str]:
    errors = []
    n_hw = calibration.topology.n_qubits
    values = list(program.placement.values())
    if len(set(values)) != len(values):
        errors.append("placement is not injective")
    if any(not 0 <= h < n_hw for h in values):
        errors.append("placement references qubits outside the machine")
    if set(program.placement) != set(range(program.logical.n_qubits)):
        errors.append("placement does not cover all program qubits")
    return errors


def _check_terminal_measurements(physical: Circuit) -> List[str]:
    errors = []
    measured = set()
    for i, gate in enumerate(physical.gates):
        for q in gate.qubits:
            if q in measured:
                errors.append(f"physical gate {i} ({gate}) follows the "
                              f"measurement of qubit {q}")
        if gate.is_measure:
            measured.add(gate.qubits[0])
    return errors


def _check_timing(program: CompiledProgram) -> List[str]:
    errors = []
    windows: Dict[int, List] = {}
    for gate, (start, duration) in zip(program.physical.circuit.gates,
                                       program.physical.times):
        if duration <= 0:
            errors.append(f"non-positive duration for {gate}")
        for q in gate.qubits:
            windows.setdefault(q, []).append((start, start + duration))
    for q, spans in windows.items():
        spans.sort()
        for (s1, f1), (s2, f2) in zip(spans, spans[1:]):
            if s2 < f1 - 1e-6:
                errors.append(f"overlapping windows on hardware qubit {q}")
                break
    return errors


# ----------------------------------------------------------------------
# Semantic check
# ----------------------------------------------------------------------
def _outcome_distribution(circuit: Circuit,
                          qubit_map: Dict[int, int],
                          n_sim: int) -> Dict[str, float]:
    """Measured-outcome distribution of a circuit, noiselessly.

    Args:
        qubit_map: circuit qubit -> dense simulation index.
        n_sim: number of simulated qubits.
    """
    state = StateVector(n_sim)
    measures = {}
    for gate in circuit.gates:
        if gate.is_measure:
            measures[qubit_map[gate.qubits[0]]] = gate.cbit
        elif gate.name != "barrier":
            state.apply_gate(gate.name,
                             tuple(qubit_map[q] for q in gate.qubits),
                             param=gate.param)
    probs = state.probabilities()
    out: Dict[str, float] = {}
    for index, p in enumerate(probs):
        if p < 1e-12:
            continue
        chars = ["0"] * circuit.n_cbits
        for q, cbit in measures.items():
            chars[cbit] = str((index >> (n_sim - 1 - q)) & 1)
        key = "".join(chars)
        out[key] = out.get(key, 0.0) + float(p)
    return out


def _check_semantics(program: CompiledProgram) -> List[str]:
    logical = program.logical
    physical = program.physical.circuit

    logical_dist = _outcome_distribution(
        logical, {q: q for q in range(logical.n_qubits)},
        logical.n_qubits)

    used = physical.used_qubits()
    dense = {h: i for i, h in enumerate(used)}
    physical_dist = _outcome_distribution(physical, dense, len(used))

    support = set(logical_dist) | set(physical_dist)
    worst = max((abs(logical_dist.get(o, 0.0) - physical_dist.get(o, 0.0))
                 for o in support), default=0.0)
    if worst > 1e-6:
        return [f"physical/logical outcome distributions differ "
                f"(max deviation {worst:.2e})"]
    return []
