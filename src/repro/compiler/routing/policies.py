"""Routing policies: choosing the swap path and reserved region per CNOT.

Implements the paper's three policies plus the baseline:

* **RR** (rectangle reservation, §4.3): the CNOT blocks its whole
  bounding rectangle for its duration; the executed path is the better
  one-bend path.
* **1BP** (one-bend paths, §4.3): the CNOT travels one of the two
  L-paths along its bounding rectangle and reserves exactly that path.
* **Best Path** (§5): the Dijkstra most-reliable path from calibration
  data (used by the greedy heuristics).
* **Shortest**: noise-unaware shortest grid path (Qiskit-like baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.compiler.options import (
    ROUTE_BEST_PATH,
    ROUTE_ONE_BEND,
    ROUTE_RECTANGLE,
    ROUTE_SHORTEST,
)
from repro.exceptions import CompilationError
from repro.hardware.reliability import ReliabilityTables, RoutedCnot


@dataclass(frozen=True)
class Route:
    """A routed CNOT: the path executed and the region reserved.

    Attributes:
        cost: Path cost summary (reliability, duration).
        reserved: Hardware qubits blocked while the CNOT executes.
    """

    cost: RoutedCnot
    reserved: Tuple[int, ...]

    @property
    def path(self) -> Tuple[int, ...]:
        return self.cost.path

    @property
    def duration(self) -> float:
        return self.cost.duration

    @property
    def reliability(self) -> float:
        return self.cost.reliability

    @property
    def n_swaps(self) -> int:
        return self.cost.n_swaps


class Router:
    """Chooses routes for hardware CNOTs under a fixed policy.

    Args:
        tables: Per-calibration routing cost tables.
        policy: One of the ``ROUTE_*`` names.
        prefer: ``"reliability"`` or ``"duration"`` — the tie-break and
            path-selection criterion (R variants prefer reliability,
            T variants duration).
    """

    def __init__(self, tables: ReliabilityTables, policy: str,
                 prefer: str = "reliability") -> None:
        if prefer not in ("reliability", "duration", "fixed"):
            raise CompilationError(f"unknown preference {prefer!r}")
        self.tables = tables
        self.topology = tables.topology
        self.policy = policy
        self.prefer = prefer

    def route(self, control: int, target: int) -> Route:
        """Route a hardware CNOT from *control* to *target*.

        Raises:
            CompilationError: If control and target coincide.
        """
        if control == target:
            raise CompilationError("CNOT control and target coincide")
        if self.policy == ROUTE_ONE_BEND:
            cost = self._pick_one_bend(control, target)
            return Route(cost=cost, reserved=cost.path)
        if self.policy == ROUTE_RECTANGLE:
            cost = self._pick_one_bend(control, target)
            region = tuple(self.topology.bounding_rectangle(control, target))
            return Route(cost=cost, reserved=region)
        if self.policy == ROUTE_BEST_PATH:
            cost = self.tables.best_path(control, target)
            return Route(cost=cost, reserved=cost.path)
        if self.policy == ROUTE_SHORTEST:
            cost = self._shortest(control, target)
            return Route(cost=cost, reserved=cost.path)
        raise CompilationError(f"unknown routing policy {self.policy!r}")

    # ------------------------------------------------------------------
    def _pick_one_bend(self, control: int, target: int) -> RoutedCnot:
        options = [self.tables.one_bend(control, target, 0)]
        if self.prefer == "fixed":
            # Noise-blind variants must not let calibration data sway
            # even the junction choice.
            return options[0]
        j0, j1 = self.topology.one_bend_junctions(control, target)
        if j0 != j1:
            options.append(self.tables.one_bend(control, target, 1))
        if self.prefer == "duration":
            return min(options, key=lambda r: (r.duration, r.path))
        return max(options, key=lambda r: (r.reliability, r.path))

    def _shortest(self, control: int, target: int) -> RoutedCnot:
        """Noise-unaware: x-first one-bend path, deterministic."""
        return self.tables.one_bend(control, target, 0)


def reserved_region(policy: str, tables: ReliabilityTables,
                    path: List[int]) -> Tuple[int, ...]:
    """The region a CNOT along *path* blocks under *policy*."""
    if policy == ROUTE_RECTANGLE:
        return tuple(tables.topology.bounding_rectangle(path[0], path[-1]))
    return tuple(path)
