"""Compiler routing passes."""
