"""Composable pass-manager compiler pipeline.

The paper's Fig. 3 toolflow (mapping → scheduling → SWAP insertion →
peephole → reliability estimation) is expressed here as an ordered list
of :class:`Pass` objects run by a :class:`PassManager` over a shared
:class:`PipelineContext`. Each pass declares

* a ``name`` identifying it in timing breakdowns and the stage cache,
* the :class:`~repro.compiler.options.CompilerOptions` fields it reads
  (its **fingerprint contribution** — two option values that agree on
  those fields drive the pass identically), and
* a pure ``run(ctx)`` producing one context artifact (``produces``).

Because every pass is a deterministic function of (circuit,
calibration, the passes before it, its declared option fields), the
manager can content-address each stage's output by a running *prefix
key*: ``key_i = H(key_{i-1} | fingerprint(pass_i))`` seeded with the
circuit fingerprint and calibration content id. A sweep that varies
only post-mapping knobs (routing policy, peephole, coherence handling)
therefore shares the expensive SMT/greedy mapping artifact across
cells through a :class:`~repro.runtime.cache.StageCache` — see
:meth:`PassManager.run`'s ``stage_cache`` hook.

:func:`build_pipeline` assembles the canonical Fig.-3 pipeline for a
:class:`CompilerOptions` value;
:func:`~repro.compiler.compile.compile_circuit` is a thin wrapper over
it. Mapper variants live in a registry (:func:`register_mapper`)
instead of an if-chain, and passes themselves are registered by name
(:func:`make_pass`, ``repro passes`` on the CLI) so ablations can edit
pipelines explicitly rather than through option flags.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler.compile import CompiledProgram, PassTiming
from repro.compiler.mapping.base import Mapper, MappingResult
from repro.compiler.mapping.greedy import GreedyEdgeMapper, GreedyVertexMapper
from repro.compiler.mapping.smt import ReliabilitySmtMapper, TimeSmtMapper
from repro.compiler.mapping.trivial import TrivialMapper
from repro.compiler.metrics import ReliabilityEstimate, estimate_reliability
from repro.compiler.options import (
    VARIANT_GREEDY_E,
    VARIANT_GREEDY_V,
    VARIANT_QISKIT,
    VARIANT_R_SMT_STAR,
    VARIANT_T_SMT,
    VARIANT_T_SMT_STAR,
    CompilerOptions,
)
from repro.compiler.scheduling.list_scheduler import Schedule, schedule_circuit
from repro.compiler.swap_insert import (
    PhysicalProgram,
    apply_peephole,
    insert_swaps,
)
from repro.compiler.verify import VerificationReport, verify_compiled
from repro.exceptions import CompilationError
from repro.hardware.calibration import Calibration
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit


@dataclass
class PipelineContext:
    """Shared state threaded through a pipeline run.

    The first four fields are the run's immutable inputs; the artifact
    fields start ``None`` and are filled by the pass that ``produces``
    them. Passes read earlier artifacts via :meth:`artifact` (which
    raises on misordered pipelines instead of surfacing ``None``).

    Attributes:
        circuit: The logical input program.
        calibration: Machine snapshot compiled against.
        tables: Routing/reliability tables for that snapshot.
        options: The configuration driving the run.
        mapping: Initial-placement artifact.
        schedule: List-scheduling artifact.
        physical: Hardware-level program (SWAPs expanded, timed).
        reliability: Compile-time reliability estimate.
        verification: Report of the optional verify pass.
        timings: Per-pass wall-clock log, in pass order.
    """

    circuit: Circuit
    calibration: Calibration
    tables: ReliabilityTables
    options: CompilerOptions
    mapping: Optional[MappingResult] = None
    schedule: Optional[Schedule] = None
    physical: Optional[PhysicalProgram] = None
    reliability: Optional[ReliabilityEstimate] = None
    verification: Optional[VerificationReport] = None
    timings: List[PassTiming] = field(default_factory=list)

    def artifact(self, name: str):
        """A previously produced artifact, or raise if absent."""
        value = getattr(self, name)
        if value is None:
            raise CompilationError(
                f"pipeline artifact {name!r} has not been produced yet "
                f"(pass ordering error)")
        return value


class Pass:
    """One pipeline stage.

    Subclasses set :attr:`name` (stable identifier), :attr:`produces`
    (the :class:`PipelineContext` artifact field they fill) and
    :attr:`option_fields` (the :class:`CompilerOptions` fields their
    behavior depends on), and implement :meth:`run` as a pure function
    of the context's inputs and earlier artifacts.
    """

    name: str = ""
    produces: str = ""
    option_fields: Tuple[str, ...] = ()

    def config(self) -> str:
        """Constructor state that shapes :meth:`run`, for fingerprints.

        Passes configured at construction time (rather than through
        ``CompilerOptions``) must surface that state here so that
        differently-configured instances never alias in the stage
        cache.
        """
        return ""

    def fingerprint(self, options: CompilerOptions) -> str:
        """Stable hash of this pass's identity, config and option inputs.

        Two pipeline runs whose passes share fingerprints stage-by-stage
        compute identical artifacts, which is what the stage-prefix
        cache keys on. (The chain over-approximates a pass's true
        inputs — e.g. the reliability estimate ignores the physical
        program yet is keyed after the peephole stage — trading some
        sharing for soundness-by-construction.)
        """
        parts = [self.name, self.config()]
        parts.extend(f"{name}={getattr(options, name)!r}"
                     for name in self.option_fields)
        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    def run(self, ctx: PipelineContext):
        """Compute and return this pass's artifact."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Mapper registry (variant -> factory), replacing the make_mapper chain
# ----------------------------------------------------------------------
MapperFactory = Callable[[CompilerOptions], Mapper]

_MAPPER_REGISTRY: Dict[str, MapperFactory] = {}

#: Option fields each variant's mapping decision depends on. Keeping
#: this tight is what lets post-mapping sweeps share the mapping stage:
#: e.g. routing and peephole are deliberately absent everywhere (no
#: mapper reads them), and omega only appears for R-SMT*.
_MAPPING_OPTION_FIELDS: Dict[str, Tuple[str, ...]] = {}


def register_mapper(variant: str, factory: MapperFactory,
                    option_fields: Sequence[str] = ()) -> None:
    """Register (or replace) the mapper behind a variant name.

    Args:
        variant: Variant string as it appears in ``CompilerOptions``.
        factory: Called with the options to build the mapper.
        option_fields: Option fields the mapper's *placement decision*
            reads — they become part of the mapping stage fingerprint.
            Over-declaring only costs cache sharing; under-declaring
            risks stale stage-cache artifacts.
    """
    _MAPPER_REGISTRY[variant] = factory
    _MAPPING_OPTION_FIELDS[variant] = tuple(option_fields)


register_mapper(VARIANT_QISKIT, lambda options: TrivialMapper())
register_mapper(VARIANT_T_SMT, TimeSmtMapper,
                ("variant", "uniform_cnot_slots", "solver_time_limit"))
register_mapper(VARIANT_T_SMT_STAR, TimeSmtMapper,
                ("variant", "uniform_cnot_slots", "solver_time_limit"))
register_mapper(VARIANT_R_SMT_STAR, ReliabilitySmtMapper,
                ("omega", "solver_time_limit"))
register_mapper(VARIANT_GREEDY_V, GreedyVertexMapper)
register_mapper(VARIANT_GREEDY_E, GreedyEdgeMapper)


def registered_variants() -> Tuple[str, ...]:
    """Variant names with a registered mapper, in registration order."""
    return tuple(_MAPPER_REGISTRY)


def mapper_for(options: CompilerOptions) -> Mapper:
    """Instantiate the mapping algorithm for ``options.variant``."""
    factory = _MAPPER_REGISTRY.get(options.variant)
    if factory is None:
        raise CompilationError(
            f"no mapper registered for variant {options.variant!r} "
            f"(known: {', '.join(registered_variants())})")
    return factory(options)


# ----------------------------------------------------------------------
# The Fig.-3 passes
# ----------------------------------------------------------------------
class MappingPass(Pass):
    """Initial placement via the variant's registered mapper."""

    produces = "mapping"

    def __init__(self, variant: str) -> None:
        if variant not in _MAPPER_REGISTRY:
            raise CompilationError(
                f"no mapper registered for variant {variant!r} "
                f"(known: {', '.join(registered_variants())})")
        self.variant = variant
        self.name = f"mapping[{variant}]"
        self.option_fields = _MAPPING_OPTION_FIELDS[variant]

    def run(self, ctx: PipelineContext) -> MappingResult:
        mapper = mapper_for(ctx.options.with_(variant=self.variant)
                            if ctx.options.variant != self.variant
                            else ctx.options)
        return mapper.run(ctx.circuit, ctx.calibration, ctx.tables)


class SchedulingPass(Pass):
    """List scheduling + routing under the options' policy."""

    name = "schedule"
    produces = "schedule"
    # variant selects the router preference and the duration model.
    option_fields = ("variant", "routing", "uniform_cnot_slots",
                     "coherence_slots", "enforce_coherence")

    def run(self, ctx: PipelineContext) -> Schedule:
        mapping = ctx.artifact("mapping")
        return schedule_circuit(ctx.circuit, mapping.placement,
                                ctx.calibration, ctx.tables, ctx.options)


class SwapInsertPass(Pass):
    """Lower the scheduled logical circuit to timed hardware gates."""

    name = "swap-insert"
    produces = "physical"

    def run(self, ctx: PipelineContext) -> PhysicalProgram:
        return insert_swaps(ctx.circuit, ctx.artifact("schedule"),
                            ctx.artifact("mapping").placement,
                            ctx.calibration)


class PeepholePass(Pass):
    """Adjacent-inverse cancellation on the physical program.

    Optional: its presence in the pipeline *is* the knob (the canonical
    pipeline includes it iff ``options.peephole``), so it reads no
    option fields itself.
    """

    name = "peephole"
    produces = "physical"

    def run(self, ctx: PipelineContext) -> PhysicalProgram:
        return apply_peephole(ctx.artifact("physical"), ctx.calibration)


class ReliabilityPass(Pass):
    """Compile-time reliability estimate of the scheduled mapping."""

    name = "reliability"
    produces = "reliability"

    def run(self, ctx: PipelineContext) -> ReliabilityEstimate:
        return estimate_reliability(ctx.circuit, ctx.artifact("schedule"),
                                    ctx.artifact("mapping").placement,
                                    ctx.calibration)


class VerifyPass(Pass):
    """Structural + semantic verification of the compiled artifact.

    Args:
        strict: Raise :class:`CompilationError` on any failed check
            (default) instead of only recording the report.
        semantic: Include the statevector equivalence check.
    """

    name = "verify"
    produces = "verification"

    def __init__(self, strict: bool = True, semantic: bool = True) -> None:
        self.strict = strict
        self.semantic = semantic

    def config(self) -> str:
        return f"strict={self.strict},semantic={self.semantic}"

    def run(self, ctx: PipelineContext) -> VerificationReport:
        provisional = _assemble(ctx, compile_time=0.0)
        report = verify_compiled(provisional, ctx.calibration,
                                 semantic=self.semantic)
        if self.strict:
            report.raise_if_failed()
        return report


# ----------------------------------------------------------------------
# Pass registry (name -> factory) for the CLI and explicit edits
# ----------------------------------------------------------------------
PassFactory = Callable[[CompilerOptions], Pass]

_PASS_REGISTRY: Dict[str, PassFactory] = {
    "mapping": lambda options: MappingPass(options.variant),
    "schedule": lambda options: SchedulingPass(),
    "swap-insert": lambda options: SwapInsertPass(),
    "peephole": lambda options: PeepholePass(),
    "reliability": lambda options: ReliabilityPass(),
    "verify": lambda options: VerifyPass(),
}


def register_pass(name: str, factory: PassFactory) -> None:
    """Register (or replace) a pass factory under *name*."""
    _PASS_REGISTRY[name] = factory


def registered_passes() -> Tuple[str, ...]:
    """Registered pass names, in canonical pipeline order."""
    return tuple(_PASS_REGISTRY)


def make_pass(name: str, options: CompilerOptions) -> Pass:
    """Instantiate a registered pass for *options*."""
    factory = _PASS_REGISTRY.get(name)
    if factory is None:
        raise CompilationError(
            f"no pass registered under {name!r} "
            f"(known: {', '.join(registered_passes())})")
    return factory(options)


def build_pipeline(options: CompilerOptions,
                   verify: bool = False) -> "PassManager":
    """The canonical Fig.-3 pipeline for one options value.

    mapping → schedule → swap-insert → [peephole] → reliability →
    [verify], with peephole included iff ``options.peephole`` and the
    verify pass on request.
    """
    passes: List[Pass] = [MappingPass(options.variant), SchedulingPass(),
                          SwapInsertPass()]
    if options.peephole:
        passes.append(PeepholePass())
    passes.append(ReliabilityPass())
    if verify:
        passes.append(VerifyPass())
    return PassManager(passes)


# ----------------------------------------------------------------------
# Stage-prefix keys
# ----------------------------------------------------------------------
def pipeline_seed_key(circuit: Circuit, calibration: Calibration) -> str:
    """Stage-key chain seed: the pipeline's raw inputs."""
    hasher = hashlib.sha256()
    hasher.update(circuit.fingerprint().encode())
    hasher.update(calibration.content_id().encode())
    return hasher.hexdigest()


def chain_key(prev_key: str, pass_fingerprint: str) -> str:
    """Extend a stage-prefix key by one pass."""
    return hashlib.sha256(
        f"{prev_key}|{pass_fingerprint}".encode()).hexdigest()


def mapping_stage_fingerprint(options: CompilerOptions) -> str:
    """Fingerprint of the canonical pipeline's mapping stage.

    Cells of a sweep that share (circuit, calibration, this value)
    share one mapping artifact through the stage cache; the sweep
    scheduler groups by it so the reuse also holds across a process
    pool (see :meth:`repro.runtime.SweepCell.prefix_key`).
    """
    return MappingPass(options.variant).fingerprint(options)


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class PassManager:
    """Runs an ordered pass list over a fresh context per compile.

    Args:
        passes: The stages, in execution order. Each must declare a
            non-empty ``name`` and ``produces``.
    """

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes: Tuple[Pass, ...] = tuple(passes)
        for p in self.passes:
            if not p.name or not p.produces:
                raise CompilationError(
                    f"pass {p!r} must declare a name and an artifact")

    def run(self, circuit: Circuit, calibration: Calibration,
            options: CompilerOptions,
            tables: Optional[ReliabilityTables] = None,
            stage_cache=None, profiler=None) -> CompiledProgram:
        """Execute the pipeline and assemble the compiled artifact.

        Args:
            circuit: Logical program (any qubit connectivity).
            calibration: Machine snapshot to adapt to.
            options: The configuration driving every pass. Required —
                a silent default could disagree with the variant this
                pipeline's passes were built for and produce a
                mixed-configuration compile (use
                :func:`repro.compiler.compile_circuit` for a defaulted
                entry point).
            tables: Precomputed routing tables (reuse across
                compilations of the same snapshot to save time).
            stage_cache: Optional
                :class:`~repro.runtime.cache.StageCache`-like object
                (``get(key)``/``put(key, artifact)``). Stage outputs
                are looked up by prefix key before running and stored
                after; cached artifacts are shared objects, so their
                wall-clock diagnostics (e.g. ``MappingResult.solve_time``)
                describe the original computation.
            profiler: Optional :class:`repro.profiling.Profiler`;
                each executed pass is measured under its name and
                stage-cache hits are counted. ``None`` (the default)
                keeps the hot path free of instrumentation.

        Returns:
            The compiled artifact; its ``pass_timings`` records each
            stage's seconds and whether it was served from the cache.
        """
        start = time.perf_counter()
        if tables is None:
            tables = ReliabilityTables(calibration)
        ctx = PipelineContext(circuit=circuit, calibration=calibration,
                              tables=tables, options=options)
        key = pipeline_seed_key(circuit, calibration)
        for p in self.passes:
            key = chain_key(key, p.fingerprint(options))
            artifact = stage_cache.get(key) if stage_cache is not None \
                else None
            if artifact is None:
                tick = time.perf_counter()
                if profiler is not None:
                    with profiler.measure(p.name):
                        artifact = p.run(ctx)
                else:
                    artifact = p.run(ctx)
                seconds = time.perf_counter() - tick
                if artifact is None:
                    raise CompilationError(
                        f"pass {p.name!r} produced no artifact")
                if stage_cache is not None:
                    stage_cache.put(key, artifact)
                cached = False
            else:
                seconds = 0.0
                cached = True
                if profiler is not None:
                    profiler.record_cache_hit(p.name)
            setattr(ctx, p.produces, artifact)
            ctx.timings.append(PassTiming(name=p.name, seconds=seconds,
                                          cached=cached))
        return _assemble(ctx, compile_time=time.perf_counter() - start)


def _assemble(ctx: PipelineContext, compile_time: float) -> CompiledProgram:
    """Build a :class:`CompiledProgram` from a completed context."""
    mapping = ctx.artifact("mapping")
    return CompiledProgram(
        logical=ctx.circuit,
        physical=ctx.artifact("physical"),
        placement=dict(mapping.placement),
        schedule=ctx.artifact("schedule"),
        reliability=ctx.artifact("reliability"),
        options=ctx.options,
        mapping=mapping,
        compile_time=compile_time,
        calibration_label=ctx.calibration.label,
        pass_timings=tuple(ctx.timings),
        verification=ctx.verification,
    )
