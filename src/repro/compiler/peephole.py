"""Peephole optimization: adjacent inverse-pair cancellation.

An optional post-pass (off by default, to keep the paper's baseline
comparisons faithful — Qiskit 0.5.7 performed no such cleanup either).
It repeatedly removes adjacent gate pairs that compose to the identity:

* self-inverse pairs — ``h h``, ``x x``, ``z z``, ``cx cx`` (same
  control/target), ``swap swap``;
* explicit inverse pairs — ``s sdg``, ``t tdg`` (either order);
* rotation pairs — ``rz(a) rz(-a)`` and exact-zero rotations.

"Adjacent" means no intervening operation touches any shared qubit, so
the pass is exact (it commutes only across disjoint gates). On physical
programs this cancels the swap-back of one routed CNOT against the
identical swap-forward of the next CNOT using the same route — a real
reduction in movement cost the paper's static swap-there-and-back model
leaves on the table.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.circuit import Circuit
from repro.ir.gates import PARAMETRIC_GATES, Gate

#: Gates that are their own inverse.
_SELF_INVERSE = frozenset({"id", "h", "x", "y", "z", "cx", "cz", "swap"})

#: Explicit inverse name pairs (checked in both orders).
_INVERSE_NAMES = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}


def _cancels(a: Gate, b: Gate) -> bool:
    """Whether gates *a* then *b* compose to the identity."""
    if a.qubits != b.qubits:
        return False
    if a.name in _SELF_INVERSE and a.name == b.name:
        return True
    if (a.name, b.name) in _INVERSE_NAMES:
        return True
    if (a.name == b.name and a.name in PARAMETRIC_GATES
            and a.param is not None and b.param is not None):
        return abs(a.param + b.param) < 1e-12
    return False


def _is_identity(gate: Gate) -> bool:
    """Whether a single gate is the identity."""
    if gate.name == "id":
        return True
    return (gate.name in PARAMETRIC_GATES and gate.param is not None
            and abs(gate.param) < 1e-12)


def cancel_adjacent_inverses(circuit: Circuit,
                             max_passes: int = 50) -> Circuit:
    """Return a circuit with adjacent inverse pairs removed.

    The pass looks past gates on disjoint qubits when pairing (disjoint
    gates commute), iterating to a fixed point or *max_passes*.
    """
    gates: List[Optional[Gate]] = [
        g for g in circuit.gates if not _is_identity(g)]
    for _ in range(max_passes):
        changed = False
        for i, gate in enumerate(gates):
            if gate is None or not gate.is_unitary or gate.name == "barrier":
                continue
            partner = _next_on_qubits(gates, i)
            if partner is None:
                continue
            other = gates[partner]
            if other is not None and _cancels(gate, other):
                gates[i] = None
                gates[partner] = None
                changed = True
        gates = [g for g in gates if g is not None]
        if not changed:
            break
    out = Circuit(circuit.n_qubits, circuit.n_cbits, name=circuit.name)
    out.extend(gates)
    return out


def _next_on_qubits(gates: List[Optional[Gate]], i: int) -> Optional[int]:
    """Index of the next gate sharing a qubit with ``gates[i]``, or None
    if a partial overlap (or non-unitary op) blocks cancellation."""
    qubits = set(gates[i].qubits)
    for j in range(i + 1, len(gates)):
        other = gates[j]
        if other is None:
            continue
        shared = qubits & set(other.qubits)
        if not shared:
            continue
        # A candidate partner must cover exactly the same qubits and be
        # unitary; anything else (partial overlap, barrier, measure)
        # blocks the cancellation window.
        if (other.is_unitary and other.name != "barrier"
                and set(other.qubits) == qubits):
            return j
        return None
    return None


def count_cancellations(before: Circuit, after: Circuit) -> int:
    """How many gates the pass removed."""
    return before.gate_count() - after.gate_count()
