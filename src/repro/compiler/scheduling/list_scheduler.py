"""List scheduling with spatial reservations.

Implements the paper's "earliest ready gate first" policy (§5, citing
[27]) under the routing policies' resource model: a routed CNOT blocks
its reserved region (the one-bend path, or the whole bounding rectangle
under RR) for its duration; CNOTs that overlap in space may not overlap
in time (Constraints 7-9). Data dependencies give each gate a release
time (Constraint 3); coherence deadlines (Constraints 4/6) are checked
on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.options import CompilerOptions
from repro.compiler.routing.policies import Route, Router
from repro.exceptions import SchedulingError
from repro.hardware.calibration import (
    READOUT_SLOTS,
    SINGLE_QUBIT_SLOTS,
    Calibration,
)
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG


@dataclass(frozen=True)
class ScheduledGate:
    """One scheduled program gate.

    Attributes:
        index: Gate index in the logical circuit.
        start: Start timeslot.
        duration: Duration in timeslots (includes swap time for CNOTs).
        hw_qubits: Hardware qubits reserved for the gate.
        route: Routing decision for CNOTs (``None`` otherwise).
    """

    index: int
    start: float
    duration: float
    hw_qubits: Tuple[int, ...]
    route: Optional[Route] = None

    @property
    def finish(self) -> float:
        return self.start + self.duration


@dataclass
class Schedule:
    """A complete schedule of the logical circuit on hardware.

    Attributes:
        gates: Scheduled gates in start-time order.
        makespan: Finish time of the last gate.
        coherence_violations: (gate index, hw qubit, finish, deadline)
            tuples where a gate finishes past a qubit's coherence time.
    """

    gates: List[ScheduledGate]
    makespan: float
    coherence_violations: List[Tuple[int, int, float, float]] = field(
        default_factory=list)

    @property
    def coherence_ok(self) -> bool:
        return not self.coherence_violations

    def swap_count(self) -> int:
        """Total one-way SWAPs across all routed CNOTs."""
        return sum(g.route.n_swaps for g in self.gates if g.route is not None)

    def by_index(self) -> Dict[int, ScheduledGate]:
        return {g.index: g for g in self.gates}


def gate_durations(circuit: Circuit, placement: Dict[int, int],
                   router: Router, calibration: Calibration,
                   uniform_cnot_slots: Optional[float] = None
                   ) -> List[Tuple[float, Tuple[int, ...], Optional[Route]]]:
    """Per-gate (duration, reserved hw qubits, route) under *placement*.

    Args:
        uniform_cnot_slots: When given, CNOT durations use the paper's
            noise-unaware formula ``2 (d-1) 3 tau + tau`` with this tau,
            instead of calibrated per-edge times.
    """
    out: List[Tuple[float, Tuple[int, ...], Optional[Route]]] = []
    for gate in circuit.gates:
        if gate.name == "barrier":
            hw = tuple(sorted(placement[q] for q in gate.qubits))
            out.append((0.0, hw, None))
        elif gate.is_measure:
            out.append((float(READOUT_SLOTS),
                        (placement[gate.qubits[0]],), None))
        elif gate.is_two_qubit:
            control, target = (placement[gate.qubits[0]],
                               placement[gate.qubits[1]])
            route = router.route(control, target)
            if uniform_cnot_slots is not None:
                duration = router.tables.uniform_duration(
                    control, target, tau_cnot=uniform_cnot_slots)
                cost = route.cost
                route = Route(cost=type(cost)(
                    path=cost.path, reliability=cost.reliability,
                    round_trip_reliability=cost.round_trip_reliability,
                    duration=duration), reserved=route.reserved)
            out.append((route.duration, route.reserved, route))
        else:
            out.append((float(SINGLE_QUBIT_SLOTS),
                        (placement[gate.qubits[0]],), None))
    return out


def schedule_circuit(circuit: Circuit, placement: Dict[int, int],
                     calibration: Calibration, tables: ReliabilityTables,
                     options: CompilerOptions,
                     dag: Optional[DependencyDAG] = None) -> Schedule:
    """Schedule *circuit* under *placement* with the options' policy.

    Earliest-ready-gate-first: gates become ready when all dependencies
    finish; among ready gates the one that can start earliest (given its
    reserved region) is committed first.

    Raises:
        SchedulingError: If ``options.enforce_coherence`` and a gate
            finishes after a participating qubit's coherence deadline.
    """
    if options.variant in ("t-smt", "qiskit"):
        prefer = "fixed"  # noise-blind variants
    elif options.variant == "t-smt*":
        prefer = "duration"
    else:
        prefer = "reliability"
    router = Router(tables, options.routing, prefer=prefer)
    uniform = (options.uniform_cnot_slots
               if options.variant == "t-smt" or options.variant == "qiskit"
               else None)
    per_gate = gate_durations(circuit, placement, router, calibration,
                              uniform_cnot_slots=uniform)
    if dag is None:
        dag = DependencyDAG.from_circuit(circuit)

    n = len(circuit.gates)
    free_at: Dict[int, float] = {h: 0.0 for h in
                                 calibration.topology.iter_qubits()}
    finish: List[float] = [0.0] * n
    unscheduled_preds = [len(p) for p in dag.preds]
    ready = [i for i in range(n) if unscheduled_preds[i] == 0]
    scheduled: List[ScheduledGate] = []
    done = [False] * n

    while ready:
        # Earliest feasible start among ready gates; FIFO tie-break on
        # program order keeps the schedule deterministic.
        def start_of(i: int) -> float:
            release = max((finish[p] for p in dag.preds[i]), default=0.0)
            region = per_gate[i][1]
            resource = max((free_at[h] for h in region), default=0.0)
            return max(release, resource)

        best = min(ready, key=lambda i: (start_of(i), i))
        ready.remove(best)
        duration, region, route = per_gate[best]
        start = start_of(best)
        finish[best] = start + duration
        for h in region:
            free_at[h] = finish[best]
        scheduled.append(ScheduledGate(index=best, start=start,
                                       duration=duration,
                                       hw_qubits=region, route=route))
        done[best] = True
        for succ in dag.succs[best]:
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] == 0:
                ready.append(succ)

    if not all(done):
        raise SchedulingError("dependency cycle detected")  # pragma: no cover

    makespan = max((g.finish for g in scheduled), default=0.0)
    violations = _coherence_violations(scheduled, calibration, options)
    if violations and options.enforce_coherence:
        i, h, fin, deadline = violations[0]
        raise SchedulingError(
            f"gate {i} finishes at {fin:.1f} past coherence deadline "
            f"{deadline:.1f} of hardware qubit {h}")
    scheduled.sort(key=lambda g: (g.start, g.index))
    return Schedule(gates=scheduled, makespan=makespan,
                    coherence_violations=violations)


def _coherence_violations(scheduled: List[ScheduledGate],
                          calibration: Calibration,
                          options: CompilerOptions):
    """Constraint 4 (static bound) or 6 (per-qubit calibrated bound)."""
    violations = []
    noise_aware = options.is_noise_aware or options.variant == "t-smt*"
    for g in scheduled:
        for h in g.hw_qubits:
            deadline = (calibration.coherence_slots(h) if noise_aware
                        else options.coherence_slots)
            if g.finish > deadline + 1e-9:
                violations.append((g.index, h, g.finish, deadline))
    return violations


def makespan_of(circuit: Circuit, placement: Dict[int, int],
                calibration: Calibration, tables: ReliabilityTables,
                options: CompilerOptions,
                dag: Optional[DependencyDAG] = None) -> float:
    """Makespan of the list schedule — the T-SMT leaf objective."""
    return schedule_circuit(circuit, placement, calibration, tables,
                            options, dag=dag).makespan
