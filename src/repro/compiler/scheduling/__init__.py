"""Compiler scheduling passes."""
