"""Compile-time quality estimates: reliability scores and durations.

The paper's reliability score (§3.1) is the product over program CNOTs
and readouts of their individual reliabilities; single-qubit gates are
deliberately ignored for IBMQ16. These estimators let callers compare
mappings without touching hardware (or the simulator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.compiler.scheduling.list_scheduler import Schedule
from repro.hardware.calibration import Calibration
from repro.ir.circuit import Circuit


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Predicted program reliability for one compiled mapping.

    Attributes:
        score: Paper-convention product (one-way swap charging).
        round_trip_score: Product charging the return swaps too — what
            the executed circuit actually incurs.
        cnot_score: CNOT-only factor.
        readout_score: Readout-only factor.
        swap_count: One-way SWAPs across all routed CNOTs.
    """

    score: float
    round_trip_score: float
    cnot_score: float
    readout_score: float
    swap_count: int

    @property
    def log_score(self) -> float:
        return math.log(max(self.score, 1e-300))


def estimate_reliability(logical: Circuit, schedule: Schedule,
                         placement: Dict[int, int],
                         calibration: Calibration) -> ReliabilityEstimate:
    """Evaluate the paper's reliability score for a scheduled mapping."""
    cnot_score = 1.0
    round_trip_cnots = 1.0
    readout_score = 1.0
    swaps = 0
    for item in schedule.gates:
        gate = logical.gates[item.index]
        if gate.is_measure:
            readout_score *= calibration.readout_reliability(
                placement[gate.qubits[0]])
        elif gate.is_two_qubit:
            assert item.route is not None
            cnot_score *= item.route.cost.reliability
            round_trip_cnots *= item.route.cost.round_trip_reliability
            swaps += item.route.n_swaps
    return ReliabilityEstimate(
        score=cnot_score * readout_score,
        round_trip_score=round_trip_cnots * readout_score,
        cnot_score=cnot_score,
        readout_score=readout_score,
        swap_count=swaps,
    )


def weighted_log_reliability(estimate: ReliabilityEstimate,
                             omega: float) -> float:
    """Eq.-12 value of an estimate: omega-weighted log reliabilities."""
    return (omega * math.log(max(estimate.readout_score, 1e-300))
            + (1.0 - omega) * math.log(max(estimate.cnot_score, 1e-300)))
