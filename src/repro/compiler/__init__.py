"""Noise-adaptive backend compiler: mapping, scheduling, routing, codegen."""

from repro.compiler.compile import (
    CompiledProgram,
    PassTiming,
    compile_circuit,
    make_mapper,
)
from repro.compiler.mapping.base import Mapper, MappingResult
from repro.compiler.mapping.greedy import GreedyEdgeMapper, GreedyVertexMapper
from repro.compiler.mapping.smt import ReliabilitySmtMapper, TimeSmtMapper
from repro.compiler.mapping.trivial import TrivialMapper
from repro.compiler.metrics import (
    ReliabilityEstimate,
    estimate_reliability,
    weighted_log_reliability,
)
from repro.compiler.options import (
    ALL_ROUTES,
    ALL_VARIANTS,
    ROUTE_BEST_PATH,
    ROUTE_ONE_BEND,
    ROUTE_RECTANGLE,
    ROUTE_SHORTEST,
    VARIANT_GREEDY_E,
    VARIANT_GREEDY_V,
    VARIANT_QISKIT,
    VARIANT_R_SMT_STAR,
    VARIANT_T_SMT,
    VARIANT_T_SMT_STAR,
    CompilerOptions,
)
from repro.compiler.peephole import cancel_adjacent_inverses, count_cancellations
from repro.compiler.pipeline import (
    MappingPass,
    Pass,
    PassManager,
    PeepholePass,
    PipelineContext,
    ReliabilityPass,
    SchedulingPass,
    SwapInsertPass,
    VerifyPass,
    build_pipeline,
    make_pass,
    mapper_for,
    mapping_stage_fingerprint,
    register_mapper,
    register_pass,
    registered_passes,
    registered_variants,
)
from repro.compiler.routing.policies import Route, Router
from repro.compiler.verify import VerificationReport, verify_compiled
from repro.compiler.scheduling.list_scheduler import (
    Schedule,
    ScheduledGate,
    schedule_circuit,
)
from repro.compiler.swap_insert import (
    PhysicalProgram,
    apply_peephole,
    insert_swaps,
)

__all__ = [
    "ALL_ROUTES",
    "ALL_VARIANTS",
    "CompiledProgram",
    "CompilerOptions",
    "GreedyEdgeMapper",
    "GreedyVertexMapper",
    "Mapper",
    "MappingPass",
    "MappingResult",
    "Pass",
    "PassManager",
    "PassTiming",
    "PeepholePass",
    "PhysicalProgram",
    "PipelineContext",
    "ROUTE_BEST_PATH",
    "ROUTE_ONE_BEND",
    "ROUTE_RECTANGLE",
    "ROUTE_SHORTEST",
    "ReliabilityEstimate",
    "ReliabilityPass",
    "ReliabilitySmtMapper",
    "Route",
    "Router",
    "Schedule",
    "ScheduledGate",
    "SchedulingPass",
    "SwapInsertPass",
    "TimeSmtMapper",
    "TrivialMapper",
    "VARIANT_GREEDY_E",
    "VARIANT_GREEDY_V",
    "VARIANT_QISKIT",
    "VARIANT_R_SMT_STAR",
    "VARIANT_T_SMT",
    "VARIANT_T_SMT_STAR",
    "VerificationReport",
    "VerifyPass",
    "apply_peephole",
    "build_pipeline",
    "cancel_adjacent_inverses",
    "compile_circuit",
    "count_cancellations",
    "estimate_reliability",
    "insert_swaps",
    "make_mapper",
    "make_pass",
    "mapper_for",
    "mapping_stage_fingerprint",
    "register_mapper",
    "register_pass",
    "registered_passes",
    "registered_variants",
    "schedule_circuit",
    "verify_compiled",
    "weighted_log_reliability",
]
