"""Greedy noise-aware mapping heuristics (paper §5).

Both heuristics work on the program graph (a node per qubit, an edge per
interacting CNOT pair, weighted by CNOT multiplicity) and on the
most-reliable-path table computed with Dijkstra over the calibration's
CNOT error rates ("Best Path").

* :class:`GreedyVertexMapper` (GreedyV*): qubits in descending degree
  order; seeds go to the best-readout high-degree location, then every
  qubit sharing a CNOT with a placed qubit goes to the free location
  maximizing total path reliability to its placed neighbors.
* :class:`GreedyEdgeMapper` (GreedyE*): edges in descending weight
  order; each program-graph component is seeded on the most reliable
  free hardware edge (CNOT x readout score), then edges with exactly one
  placed endpoint extend the placement greedily.

Program graphs can be disconnected (the HS benchmarks are perfect
matchings), so both heuristics re-seed per component.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.mapping.base import Mapper, MappingResult
from repro.compiler.options import CompilerOptions
from repro.exceptions import MappingError
from repro.hardware.calibration import Calibration
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit

_LOG_FLOOR = 1e-12


def _log(x: float) -> float:
    return math.log(max(x, _LOG_FLOOR))


def _program_adjacency(circuit: Circuit) -> Dict[int, Set[int]]:
    """Program-graph adjacency sets."""
    adjacency: Dict[int, Set[int]] = {}
    for (a, b) in circuit.interaction_graph():
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    return adjacency


def _attach_score(tables: ReliabilityTables, calibration: Calibration,
                  candidate: int, placed_neighbors: List[int]) -> float:
    """Sum of best-path log reliabilities to already-placed neighbors."""
    return sum(_log(tables.best_path(candidate, h).reliability)
               for h in placed_neighbors)


def _fill_isolated(circuit: Circuit, calibration: Calibration,
                   placement: Dict[int, int], used: Set[int]) -> None:
    """Give CNOT-free qubits the most reliable remaining readouts."""
    free = sorted((h for h in calibration.topology.iter_qubits()
                   if h not in used),
                  key=lambda h: (-calibration.readout_reliability(h), h))
    rest = [q for q in range(circuit.n_qubits) if q not in placement]
    for q, h in zip(rest, free):
        placement[q] = h
        used.add(h)
    if len(placement) < circuit.n_qubits:
        raise MappingError("machine too small for program")


class GreedyVertexMapper(Mapper):
    """GreedyV*: greatest-vertex-degree-first placement."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions.greedy_v()

    def run(self, circuit: Circuit, calibration: Calibration,
            tables: ReliabilityTables) -> MappingResult:
        self.check_fits(circuit, calibration)
        start = time.perf_counter()
        topology = calibration.topology
        degrees = circuit.qubit_degrees()
        adjacency = _program_adjacency(circuit)
        interacting = sorted(adjacency, key=lambda q: (-degrees[q], q))
        placement: Dict[int, int] = {}
        used: Set[int] = set()
        # Unplaced qubits adjacent to a placed one, maintained
        # incrementally as qubits are placed (the frontier never needs
        # an O(V^2) rescan per step).
        frontier: Set[int] = set()

        while len(placement) < len(interacting):
            if frontier:
                # Highest-degree frontier qubit next (ties: program order).
                q = min(frontier, key=lambda q: (-degrees[q], q))
                placed_neighbors = [placement[p] for p in adjacency[q]
                                    if p in placement]
                free = [h for h in topology.iter_qubits() if h not in used]
                choice = max(free, key=lambda h: (
                    _attach_score(tables, calibration, h, placed_neighbors),
                    calibration.readout_reliability(h), -h))
            else:
                # New component: seed its heaviest qubit on the best
                # readout among the highest-degree free locations.
                q = next(p for p in interacting if p not in placement)
                free = [h for h in topology.iter_qubits() if h not in used]
                max_deg = max(sum(nb not in used
                                  for nb in topology.neighbors(h))
                              for h in free)
                pool = [h for h in free
                        if sum(nb not in used
                               for nb in topology.neighbors(h)) == max_deg]
                choice = max(pool, key=lambda h: (
                    calibration.readout_reliability(h), -h))
            placement[q] = choice
            used.add(choice)
            frontier.discard(q)
            frontier.update(nb for nb in adjacency[q]
                            if nb not in placement)

        _fill_isolated(circuit, calibration, placement, used)
        result = MappingResult(placement=placement, optimal=False,
                               solve_time=time.perf_counter() - start)
        result.validate(circuit, calibration)
        return result


class GreedyEdgeMapper(Mapper):
    """GreedyE*: greatest-weighted-edge-first placement."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions.greedy_e()

    def run(self, circuit: Circuit, calibration: Calibration,
            tables: ReliabilityTables) -> MappingResult:
        self.check_fits(circuit, calibration)
        start = time.perf_counter()
        topology = calibration.topology
        weights = circuit.interaction_graph()
        edges = sorted(weights, key=lambda e: (-weights[e], e))
        adjacency = _program_adjacency(circuit)
        placement: Dict[int, int] = {}
        used: Set[int] = set()

        pending = list(edges)
        while pending:
            # Prefer the heaviest edge with exactly one placed endpoint.
            chosen = None
            for e in pending:
                placed = (e[0] in placement) + (e[1] in placement)
                if placed == 1:
                    chosen = e
                    break
            if chosen is None:
                # All pending edges have 0 or 2 placed endpoints; drop the
                # satisfied ones, then seed a fresh component.
                pending = [e for e in pending
                           if e[0] not in placement or e[1] not in placement]
                if not pending:
                    break
                chosen = pending[0]
                self._seed_edge(chosen, placement, used, calibration)
                pending.remove(chosen)
                continue
            qa, qb = chosen
            unmapped = qb if qa in placement else qa
            placed_neighbors = [placement[p] for p in adjacency[unmapped]
                                if p in placement]
            free = [h for h in topology.iter_qubits() if h not in used]
            if not free:
                raise MappingError("machine exhausted during placement")
            choice = max(free, key=lambda h: (
                _attach_score(tables, calibration, h, placed_neighbors),
                calibration.readout_reliability(h), -h))
            placement[unmapped] = choice
            used.add(choice)
            pending.remove(chosen)

        _fill_isolated(circuit, calibration, placement, used)
        result = MappingResult(placement=placement, optimal=False,
                               solve_time=time.perf_counter() - start)
        result.validate(circuit, calibration)
        return result

    @staticmethod
    def _seed_edge(edge: Tuple[int, int], placement: Dict[int, int],
                   used: Set[int], calibration: Calibration) -> None:
        """Place both endpoints of *edge* on the best free hardware edge.

        Score: CNOT reliability of the hardware edge times both endpoint
        readout reliabilities (the paper's "maximum CNOT and readout
        reliability" seeding), plus the best free *adjacent* edge from
        each endpoint — the expansion potential that keeps seeds off
        dead-end corners when the component has more qubits to attach.
        """
        topo = calibration.topology
        candidates = [(a, b) for a, b in topo.edges()
                      if a not in used and b not in used]
        if not candidates:
            raise MappingError("no free hardware edge left for seeding")

        def expansion(h: int, other: int) -> float:
            options = [calibration.cnot_reliability(h, nb)
                       for nb in topo.neighbors(h)
                       if nb not in used and nb != other]
            return _log(max(options)) if options else _log(_LOG_FLOOR)

        def score(hw_edge: Tuple[int, int]) -> float:
            a, b = hw_edge
            return (_log(calibration.cnot_reliability(a, b))
                    + _log(calibration.readout_reliability(a))
                    + _log(calibration.readout_reliability(b))
                    + 0.5 * (expansion(a, b) + expansion(b, a)))

        ha, hb = max(candidates, key=score)
        qa, qb = edge
        # Orient the better-readout end toward the more-measured qubit.
        if calibration.readout_reliability(hb) > \
                calibration.readout_reliability(ha):
            ha, hb = hb, ha
        placement[qa], placement[qb] = ha, hb
        used.update((ha, hb))
