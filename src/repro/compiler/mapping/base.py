"""Mapping-pass interface and result type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import MappingError
from repro.hardware.calibration import Calibration
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit


@dataclass
class MappingResult:
    """Outcome of an initial-placement pass.

    Attributes:
        placement: Program qubit -> hardware qubit.
        objective: The mapper's internal objective value, if any.
        optimal: Whether the placement is provably optimal for that
            objective (SMT variants) or heuristic (greedy variants).
        solve_time: Seconds spent inside the mapper.
        nodes: Search nodes expanded (0 for heuristics).
        stats: Solver search counters (engine, prunes, incumbents,
            workers, ...) for the SMT variants; ``None`` for heuristics.
    """

    placement: Dict[int, int]
    objective: Optional[float] = None
    optimal: bool = False
    solve_time: float = 0.0
    nodes: int = 0
    stats: Optional[Dict[str, object]] = None

    def validate(self, circuit: Circuit, calibration: Calibration) -> None:
        """Sanity-check the placement: total, injective, in range.

        Raises:
            MappingError: On any violation.
        """
        n_hw = calibration.topology.n_qubits
        missing = [q for q in range(circuit.n_qubits)
                   if q not in self.placement]
        if missing:
            raise MappingError(f"unplaced program qubits {missing}")
        values = list(self.placement.values())
        if len(set(values)) != len(values):
            raise MappingError("placement is not injective")
        bad = [h for h in values if not 0 <= h < n_hw]
        if bad:
            raise MappingError(f"placement uses unknown hardware qubits {bad}")


class Mapper:
    """Base class for initial-placement passes."""

    def run(self, circuit: Circuit, calibration: Calibration,
            tables: ReliabilityTables) -> MappingResult:
        """Compute a placement for *circuit* on the calibrated machine."""
        raise NotImplementedError

    @staticmethod
    def check_fits(circuit: Circuit, calibration: Calibration) -> None:
        """Raise when the program does not fit the machine."""
        n_hw = calibration.topology.n_qubits
        if circuit.n_qubits > n_hw:
            raise MappingError(
                f"program has {circuit.n_qubits} qubits but machine only "
                f"{n_hw}")
