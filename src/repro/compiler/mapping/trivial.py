"""Trivial (lexicographic) placement — the Qiskit 0.5.7 baseline layout.

The paper observes (Fig. 8a) that Qiskit "places qubits in a
lexicographic order without considering CNOT and readout errors".
"""

from __future__ import annotations

import time

from repro.compiler.mapping.base import Mapper, MappingResult
from repro.hardware.calibration import Calibration
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit


class TrivialMapper(Mapper):
    """Program qubit *i* goes to hardware qubit *i*."""

    def run(self, circuit: Circuit, calibration: Calibration,
            tables: ReliabilityTables) -> MappingResult:
        self.check_fits(circuit, calibration)
        start = time.perf_counter()
        placement = {q: q for q in range(circuit.n_qubits)}
        result = MappingResult(
            placement=placement,
            optimal=False,
            solve_time=time.perf_counter() - start,
        )
        result.validate(circuit, calibration)
        return result
