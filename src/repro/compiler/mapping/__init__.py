"""Compiler mapping passes."""
