"""Optimization-based mapping (the paper's §4, "Optimal Compilation").

Builds a constraint model per the paper's formulation and hands it to
the branch-and-bound engine (the Z3 substitute, see DESIGN.md):

* Constraint 1 — every program qubit maps inside the grid: encoded in
  the variable domains (all hardware qubit ids).
* Constraint 2 — distinct locations: :class:`AllDifferent`.
* Constraints 3-9 — scheduling/routing: enforced by the deterministic
  list scheduler; the T-SMT objective evaluates it at search leaves,
  bounded below by the dependency-DAG critical path.
* Constraints 10-11 — reliability tracking: EC/readout lookups become
  the additive log terms of the Eq.-12 objective for R-SMT*.
"""

from __future__ import annotations

import dataclasses
import math
import time
from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler.mapping.base import Mapper, MappingResult
from repro.compiler.mapping.greedy import GreedyEdgeMapper
from repro.compiler.options import CompilerOptions
from repro.compiler.scheduling.list_scheduler import makespan_of
from repro.exceptions import MappingError
from repro.hardware.calibration import (
    READOUT_SLOTS,
    SINGLE_QUBIT_SLOTS,
    Calibration,
)
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG
from repro.solver import (
    AllDifferent,
    BranchAndBoundSolver,
    CallableObjective,
    Model,
    PairTerm,
    SumObjective,
    UnaryTerm,
    Variable,
)
from repro.solver.bnb import SolveResult
from repro.solver.portfolio import PortfolioSolver

_LOG_FLOOR = 1e-12


def _var(q: int) -> str:
    return f"loc_q{q}"


def _interacting_qubits(circuit: Circuit) -> List[int]:
    """Program qubits participating in at least one two-qubit gate,
    most-interacting first (the branching order).

    Non-interacting qubits never influence routing or makespan, so the
    search can omit them and place them afterwards without losing
    optimality (readout-only terms are assigned by a greedy matching,
    optimal by the rearrangement inequality). Branching on the busiest
    qubit first pins the one-endpoint-placed duration bounds early.
    """
    degree = Counter(q for g in circuit.gates if g.is_two_qubit
                     for q in g.qubits)
    qubits = sorted(degree, key=lambda q: (-degree[q], q))
    return qubits or [0]


def _base_model(search_qubits: List[int],
                calibration: Calibration) -> Model:
    """Variables (Constraint 1 via domains) + all-different (Constraint 2)."""
    model = Model()
    hw = list(calibration.topology.iter_qubits())
    for q in search_qubits:
        model.add_variable(_var(q), hw)
    model.add_constraint(AllDifferent([_var(q) for q in search_qubits]))
    return model


def _identity_warm_start(search_qubits: List[int]) -> Dict[str, int]:
    """Program qubit q -> hardware qubit q, the mappers' fallback warm start.

    The solver validates the warm start itself and starts cold if it is
    infeasible under the model (e.g. a symmetry-broken domain excludes
    the identity placement).
    """
    return {_var(q): q for q in search_qubits}


def _greedy_warm_start(circuit: Circuit, calibration: Calibration,
                       tables: ReliabilityTables,
                       search_qubits: List[int]) -> Dict[str, int]:
    """Seed the exact search with GreedyE*'s placement.

    The greedy mapper lands near the optimum on most calibrations, so
    its value prunes the vast majority of the tree from node one. Any
    greedy failure — or a placement the model later rejects — degrades
    to the identity warm start / a cold search: warm starts are an
    accelerator, never a correctness dependency.
    """
    try:
        greedy = GreedyEdgeMapper().run(circuit, calibration, tables)
        return {_var(q): int(greedy.placement[q]) for q in search_qubits}
    except Exception:
        return _identity_warm_start(search_qubits)


def _complete_placement(circuit: Circuit, calibration: Calibration,
                        partial: Dict[int, int]) -> Dict[int, int]:
    """Place the remaining (non-interacting) qubits.

    Measured qubits take the most reliable remaining readout locations,
    heaviest-measured first; unmeasured qubits fill lowest free ids.
    """
    placement = dict(partial)
    used = set(placement.values())
    free = [h for h in calibration.topology.iter_qubits() if h not in used]
    measure_counts = Counter(g.qubits[0] for g in circuit.measurements)
    rest = [q for q in range(circuit.n_qubits) if q not in placement]
    rest.sort(key=lambda q: (-measure_counts.get(q, 0), q))
    free.sort(key=lambda h: (-calibration.readout_reliability(h), h))
    for q, h in zip(rest, free):
        placement[q] = h
    return placement


def _stats_dict(result: SolveResult) -> Optional[Dict[str, object]]:
    """Solver counters as a plain dict for MappingResult metadata."""
    if result.stats is None:
        return None
    return dataclasses.asdict(result.stats)


def reliability_model(circuit: Circuit, calibration: Calibration,
                      tables: ReliabilityTables,
                      omega: float) -> Tuple[Model, List[int]]:
    """Build the R-SMT* assignment model (Eq. 12) for *circuit*.

    Exposed as a module-level helper so the solver benchmarks and
    tests can drive the exact production model through alternative
    engines (``engine="generic"`` reference runs, portfolio identity
    checks) without going through a full compile.

    Returns:
        (model with its objective set, the interacting search qubits).
    """
    search_qubits = _interacting_qubits(circuit)
    model = _base_model(search_qubits, calibration)

    # Dense score tables, computed once per run and shared by every
    # term: the vector engine compiles them straight into its cost
    # matrices instead of probing Python closures H^2 times per pair.
    hw = list(calibration.topology.iter_qubits())
    hw_set = set(hw)
    n_hw = max(hw) + 1
    readout_logrel = np.array(
        [math.log(max(calibration.readout_reliability(h), _LOG_FLOOR))
         if h in hw_set else math.log(_LOG_FLOOR)
         for h in range(n_hw)])
    cnot_logrel = np.full((n_hw, n_hw), math.log(_LOG_FLOOR))
    for hc in hw:
        for ht in hw:
            if hc != ht:
                cnot_logrel[hc, ht] = math.log(
                    max(tables.best_one_bend(hc, ht).reliability,
                        _LOG_FLOOR))

    terms: List = []
    # Readout terms: one per measurement (Constraint 10). Readouts on
    # non-interacting qubits are optimized by the greedy completion.
    readout_counts = Counter(g.qubits[0] for g in circuit.measurements)
    for q, count in sorted(readout_counts.items()):
        if q not in search_qubits:
            continue

        def score(h: int, _count: int = count) -> float:
            rel = max(calibration.readout_reliability(h), _LOG_FLOOR)
            return omega * _count * math.log(rel)
        terms.append(UnaryTerm(_var(q), score,
                               vector=omega * count * readout_logrel))
    # CNOT terms: one per ordered interacting pair, weighted by the
    # number of CNOTs between the pair (Constraint 11 via EC lookups).
    cnot_counts = Counter((g.control, g.target) for g in circuit.cnots)
    for (qc, qt), count in sorted(cnot_counts.items()):
        def score(hc: int, ht: int, _count: int = count) -> float:
            if hc == ht:
                return _count * math.log(_LOG_FLOOR)
            rel = max(tables.best_one_bend(hc, ht).reliability,
                      _LOG_FLOOR)
            return (1.0 - omega) * _count * math.log(rel)
        matrix = (1.0 - omega) * count * cnot_logrel
        np.fill_diagonal(matrix, count * math.log(_LOG_FLOOR))
        terms.append(PairTerm(_var(qc), _var(qt), score, matrix=matrix))

    model.objective = SumObjective(terms)
    return model, search_qubits


class ReliabilitySmtMapper(Mapper):
    """R-SMT*: maximize the Eq.-12 weighted log-reliability objective.

    Args:
        options: Supplies omega and the solver time limit.
    """

    def __init__(self, options: CompilerOptions) -> None:
        self.options = options

    def run(self, circuit: Circuit, calibration: Calibration,
            tables: ReliabilityTables) -> MappingResult:
        self.check_fits(circuit, calibration)
        model, search_qubits = reliability_model(
            circuit, calibration, tables, self.options.omega)
        if self.options.solver_workers > 1:
            solver = PortfolioSolver(
                workers=self.options.solver_workers,
                time_limit=self.options.solver_time_limit)
        else:
            solver = BranchAndBoundSolver(
                time_limit=self.options.solver_time_limit)
        start = time.perf_counter()
        result = solver.solve(
            model,
            initial=_greedy_warm_start(circuit, calibration, tables,
                                       search_qubits),
            symmetries=calibration.topology.automorphisms())
        elapsed = time.perf_counter() - start
        if result.assignment is None:
            raise MappingError("R-SMT* found no feasible placement")
        partial = {q: result.assignment[_var(q)] for q in search_qubits}
        placement = _complete_placement(circuit, calibration, partial)
        out = MappingResult(placement=placement,
                            objective=result.objective,
                            optimal=result.optimal,
                            solve_time=elapsed, nodes=result.nodes,
                            stats=_stats_dict(result))
        out.validate(circuit, calibration)
        return out


class TimeSmtMapper(Mapper):
    """T-SMT / T-SMT*: minimize schedule makespan.

    The noise-unaware flavor (``t-smt``) assumes uniform CNOT durations
    and the static coherence bound MT (Constraint 4); the calibrated
    flavor (``t-smt*``) uses the Delta duration matrix and per-qubit
    coherence deadlines (Constraints 5-6).
    """

    def __init__(self, options: CompilerOptions) -> None:
        if options.variant not in ("t-smt", "t-smt*"):
            raise MappingError(
                f"TimeSmtMapper cannot run variant {options.variant!r}")
        self.options = options

    def run(self, circuit: Circuit, calibration: Calibration,
            tables: ReliabilityTables) -> MappingResult:
        self.check_fits(circuit, calibration)
        search_qubits = _interacting_qubits(circuit)
        model = _base_model(search_qubits, calibration)
        dag = DependencyDAG.from_circuit(circuit)
        uniform = self.options.variant == "t-smt"
        min_cnot_slots = (self.options.uniform_cnot_slots if uniform
                          else min(e.cnot_duration_slots
                                   for e in calibration.edges.values()))
        if uniform:
            self._break_symmetry(model, search_qubits, calibration)

        # Per-location best-case routed-CNOT duration: tightens the
        # critical-path bound for CNOTs with one placed endpoint.
        if uniform:
            min_from = {h: self.options.uniform_cnot_slots
                        for h in calibration.topology.iter_qubits()}
        else:
            min_from = {
                h: min(tables.delta(h, h2)
                       for h2 in calibration.topology.iter_qubits()
                       if h2 != h)
                for h in calibration.topology.iter_qubits()
            }

        all_hw = list(calibration.topology.iter_qubits())
        rest_qubits = [q for q in range(circuit.n_qubits)
                       if q not in search_qubits]

        def value_fn(assignment: Dict[str, int]) -> float:
            # Non-interacting qubits do not affect the makespan; fill
            # them with any free locations (cheap, called per leaf).
            placement = {q: assignment[_var(q)] for q in search_qubits}
            used = set(placement.values())
            free = (h for h in all_hw if h not in used)
            for q in rest_qubits:
                placement[q] = next(free)
            return -makespan_of(circuit, placement, calibration, tables,
                                self.options, dag=dag)

        def bound_fn(assignment: Dict[str, int], domains) -> float:
            weights = self._optimistic_durations(
                circuit, assignment, calibration, tables, min_cnot_slots,
                min_from)
            return -dag.longest_path_length(weights)

        model.objective = CallableObjective(value_fn, bound_fn)
        solver = BranchAndBoundSolver(
            time_limit=self.options.solver_time_limit)
        # The noise-unaware flavor must stay calibration-independent, so
        # it cannot take the greedy (calibration-driven) warm start; it
        # keeps the identity seed, reflected into the symmetry-broken
        # quadrant so it survives the restricted domain.
        if uniform:
            initial = self._reflect_into_quadrant(
                _identity_warm_start(search_qubits), search_qubits,
                calibration)
        else:
            initial = _greedy_warm_start(circuit, calibration, tables,
                                         search_qubits)
        start = time.perf_counter()
        result = solver.solve(model, initial=initial)
        elapsed = time.perf_counter() - start
        if result.assignment is None:
            raise MappingError("T-SMT found no feasible placement")
        partial = {q: result.assignment[_var(q)] for q in search_qubits}
        placement = _complete_placement(circuit, calibration, partial)
        out = MappingResult(placement=placement,
                            objective=result.objective,
                            optimal=result.optimal,
                            solve_time=elapsed, nodes=result.nodes,
                            stats=_stats_dict(result))
        out.validate(circuit, calibration)
        return out

    @staticmethod
    def _break_symmetry(model: Model, search_qubits: List[int],
                        calibration: Calibration) -> None:
        """Restrict the first variable to one grid quadrant.

        With uniform gate times the machine model is invariant under the
        grid's reflections, so every solution has a representative with
        the first searched qubit in the canonical quadrant.
        """
        topo = calibration.topology
        canonical = [h for h in topo.iter_qubits()
                     if topo.coords(h)[0] <= (topo.mx - 1) / 2
                     and topo.coords(h)[1] <= (topo.my - 1) / 2]
        first = model.variable(_var(search_qubits[0]))
        model.variables[model.variables.index(first)] = Variable(
            name=first.name, domain=tuple(canonical))

    @staticmethod
    def _reflect_into_quadrant(initial: Dict[str, int],
                               search_qubits: List[int],
                               calibration: Calibration) -> Dict[str, int]:
        """Map a warm start into the symmetry-broken quadrant.

        The uniform variant restricts the first searched qubit's domain
        to one grid quadrant (:meth:`_break_symmetry`); a greedy warm
        start may land outside it and would be rejected by validation.
        Grid automorphisms preserve the uniform makespan objective, so
        reflecting the whole placement through one that brings the
        first qubit inside keeps the warm start's value intact.
        """
        topo = calibration.topology
        canonical = {h for h in topo.iter_qubits()
                     if topo.coords(h)[0] <= (topo.mx - 1) / 2
                     and topo.coords(h)[1] <= (topo.my - 1) / 2}
        first = _var(search_qubits[0])
        if initial.get(first) in canonical:
            return initial
        for perm in topo.automorphisms():
            mapped = {name: perm[h] for name, h in initial.items()}
            if mapped[first] in canonical:
                return mapped
        return initial

    def _optimistic_durations(self, circuit: Circuit,
                              assignment: Dict[str, int],
                              calibration: Calibration,
                              tables: ReliabilityTables,
                              min_cnot_slots: float,
                              min_from: Dict[int, float]) -> List[float]:
        """Admissible per-gate durations for the critical-path bound.

        CNOTs with both endpoints placed get their true routed duration;
        one placed endpoint gets that location's best-case routed time;
        none gets the global best-case adjacent-CNOT time.
        """
        uniform = self.options.variant == "t-smt"
        weights: List[float] = []
        for gate in circuit.gates:
            if gate.name == "barrier":
                weights.append(0.0)
            elif gate.is_measure:
                weights.append(float(READOUT_SLOTS))
            elif gate.is_two_qubit:
                hc = assignment.get(_var(gate.qubits[0]))
                ht = assignment.get(_var(gate.qubits[1]))
                if hc is None and ht is None:
                    weights.append(min_cnot_slots)
                elif hc is None or ht is None or hc == ht:
                    placed = ht if hc is None else hc
                    weights.append(min_from[placed])
                elif uniform:
                    weights.append(tables.uniform_duration(
                        hc, ht, tau_cnot=self.options.uniform_cnot_slots))
                else:
                    weights.append(tables.delta(hc, ht))
            else:
                weights.append(float(SINGLE_QUBIT_SLOTS))
        return weights
