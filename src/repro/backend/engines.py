"""Execution-engine protocol and registry.

The simulator used to hard-wire its engines as an ``engine ==
"batched" | "trial"`` if-chain inside :func:`repro.simulator.execute`.
This module replaces that chain with a registry: an
:class:`ExecutionEngine` is a stateless strategy object that turns a
(compiled program, calibration, noise model) triple into an
:class:`~repro.simulator.ExecutionResult`, registered under a stable
name with :func:`register_engine`. ``execute(engine=...)`` looks the
name up here, so adding an engine — a GPU statevector, a
tensor-network contractor, a closed-form estimator — means registering
a class, not editing ``executor.py``. The built-in proof of that
contract is the ``"analytic"`` engine, which lives in
:mod:`repro.simulator.analytic` and registers itself from there.

Built-ins:

* ``"batched"`` — vectorized Monte-Carlo over a lowered
  :class:`~repro.simulator.trace.ProgramTrace` (the default);
* ``"trial"`` — the legacy per-trial loop, kept for cross-validation
  and for exotic noise models that override the sampling hooks;
* ``"analytic"`` — deterministic closed-form success estimate (no
  sampling; exact-check runs);
* ``"gpu"`` — the batched engine's law on the best available
  accelerated array backend (cupy, then torch; see
  :class:`GpuEngine`), with device-memory-aware chunking. Registered
  here so it exists even before the simulator loads — counts are
  bit-identical to ``"batched"``, only throughput differs;
* ``"stabilizer"`` — polynomial-time CHP tableau sampler for
  Clifford-only programs (hundreds of qubits; see
  :mod:`repro.simulator.stabilizer`);
* ``"auto"`` — per-circuit router: Clifford programs go to
  ``"stabilizer"``, everything else to the dense default.

This module deliberately imports nothing from the simulator at load
time (the simulator imports *it* to register the built-ins); lookups
lazily import :mod:`repro.simulator` so the built-ins are always
registered before the first :func:`get_engine` call resolves.
"""

from __future__ import annotations

import difflib
from typing import Dict, Optional, Tuple, Type, Union

from repro.exceptions import SimulationError

#: The repo-wide default engine name (cells without a backend, and
#: backends that don't say otherwise, resolve to it).
DEFAULT_ENGINE = "batched"


def unknown_name_message(kind: str, name: str, known) -> str:
    """A did-you-mean lookup error, shared by the engine and backend
    registries (mirrors ``device_topology``'s error style)."""
    matches = difflib.get_close_matches(str(name).lower(), sorted(known),
                                        n=3, cutoff=0.5)
    hint = ""
    if matches:
        hint = "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return (f"unknown {kind} {name!r}{hint} "
            f"(known: {', '.join(sorted(known))})")


class ExecutionEngine:
    """One way of executing a compiled program under a noise model.

    Subclasses set :attr:`name` (the string accepted by
    ``execute(engine=...)`` and ``SweepCell.engine``), implement
    :meth:`run`, and optionally declare:

    * :attr:`uses_probability_accessors` — the engine derives its error
      law from the :class:`~repro.simulator.NoiseModel` probability
      accessors only (never the per-trial ``sample_*`` hooks). For a
      noise model that *overrides* those hooks, :func:`execute`
      reroutes such an engine to its :attr:`fallback` so the custom
      sampling is honored.
    * :attr:`fallback` — registered engine name to fall back to in that
      case (``None`` = no fallback; the engine runs as-is).
    * :attr:`accepts_array_backend` — the engine runs its statevector
      contraction on a pluggable
      :class:`~repro.simulator.xp.ArrayBackend` and its :meth:`run`
      takes an ``array_backend=`` keyword; :func:`execute` forwards
      the caller's selection only to such engines (and warns once when
      a selection is made against an engine without one).
    * :attr:`family` — capability class shown by ``repro engines``:
      ``"dense"`` (statevector, exponential in qubits), ``"stabilizer"``
      (tableau, polynomial but Clifford-only), ``"router"`` (dispatches
      to other engines), or ``"estimate"`` (closed form, no sampling).

    Engines must be stateless: one shared instance serves every call,
    including concurrent pool workers (determinism comes from the seed
    each call receives).
    """

    name: str = ""
    uses_probability_accessors: bool = False
    fallback: Optional[str] = None
    accepts_array_backend: bool = False
    family: str = "dense"

    def capacity_note(self) -> str:
        """Practical qubit ceiling, for the ``repro engines`` listing."""
        if self.family == "dense":
            from repro.simulator.xp import resolve_array_backend

            budget = resolve_array_backend("numpy").amplitude_budget()
            return (f"<= {max(1, budget).bit_length() - 1} qubits "
                    f"(amplitude budget)")
        return "unbounded"

    def run(self, compiled, calibration, noise, *, trials: int, seed: int,
            expected: Optional[str] = None, trace_cache=None):
        """Execute *compiled* and return an ``ExecutionResult``.

        Args:
            compiled: A :class:`~repro.compiler.CompiledProgram`.
            calibration: Snapshot to execute under.
            noise: The (already resolved) noise model.
            trials: Shot count (>= 1, validated by ``execute``).
            seed: Master RNG seed; results must be a pure function of
                the arguments (deterministic engines may ignore it).
            expected: The benchmark's known answer string.
            trace_cache: Optional lowered-trace cache
                (``get``/``put`` signature of
                :class:`repro.runtime.cache.TraceCache`).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_ENGINES: Dict[str, ExecutionEngine] = {}


def register_engine(engine: Union[Type[ExecutionEngine], ExecutionEngine]):
    """Register an engine class (or instance) under its ``name``.

    Usable as a class decorator::

        @register_engine
        class MyEngine(ExecutionEngine):
            name = "mine"
            def run(self, compiled, calibration, noise, **kwargs): ...

    Re-registering a name replaces the previous engine (last wins),
    matching the other repo registries.
    """
    instance = engine() if isinstance(engine, type) else engine
    if not instance.name:
        raise SimulationError(
            f"engine {instance!r} must declare a non-empty name")
    # Lookup is case-insensitive, matching the backend registry.
    _ENGINES[instance.name.lower()] = instance
    return engine


#: Whether the "no accelerated backend" degradation has been announced
#: (once per process, like the executor's fallback warnings).
_WARNED_NO_ACCELERATOR = False


def _warn_no_accelerator() -> None:
    global _WARNED_NO_ACCELERATOR
    if _WARNED_NO_ACCELERATOR:
        return
    _WARNED_NO_ACCELERATOR = True
    import warnings

    warnings.warn(
        "engine='gpu' found no accelerated array backend (cupy/torch "
        "not importable); running the batched contraction on numpy. "
        "Counts are bit-identical — install torch or cupy for the "
        "speedup.", RuntimeWarning, stacklevel=4)


@register_engine
class GpuEngine(ExecutionEngine):
    """The batched trajectory engine on an accelerated array backend.

    Picks the best available non-numpy
    :class:`~repro.simulator.xp.ArrayBackend` (cupy first, then torch
    — torch still buys multi-threaded CPU contraction without a GPU)
    unless the caller selects one explicitly, and delegates to the
    registered ``"batched"`` engine: same trace lowering, same host-RNG
    sampling law, so counts are **bit-identical** to
    ``engine="batched"`` for every seed. Chunking follows the chosen
    backend's device-memory-aware
    :meth:`~repro.simulator.xp.ArrayBackend.amplitude_budget` instead
    of the host constant. With neither cupy nor torch installed it
    warns once and degrades to numpy — a correctness no-op.

    Lives here (not in the simulator) as the registry's second
    in-tree proof that engines plug in without touching
    ``executor.py``; all simulator imports happen inside :meth:`run`.
    """

    name = "gpu"
    uses_probability_accessors = True
    fallback = "trial"
    accepts_array_backend = True

    def capacity_note(self) -> str:
        return "dense ceiling from free device memory"

    def run(self, compiled, calibration, noise, *, trials: int, seed: int,
            expected: Optional[str] = None, trace_cache=None,
            array_backend=None):
        # Lazy imports keep this module free of simulator dependencies
        # at load time (it is imported *by* the simulator).
        from repro.simulator.xp import (
            best_accelerated_backend,
            resolve_array_backend,
        )

        if array_backend is None:
            backend = best_accelerated_backend()
            if backend is None:
                _warn_no_accelerator()
                backend = resolve_array_backend("numpy")
        else:
            backend = resolve_array_backend(array_backend)
        return get_engine("batched").run(
            compiled, calibration, noise, trials=trials, seed=seed,
            expected=expected, trace_cache=trace_cache,
            array_backend=backend)


def _ensure_builtin_engines() -> None:
    """Make sure the simulator's built-ins have registered themselves.

    Imported lazily (not at module load) so the simulator can import
    this module without a cycle.
    """
    import repro.simulator  # noqa: F401 — import side effect registers


def registered_engines() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    _ensure_builtin_engines()
    return tuple(_ENGINES)


def get_engine(name: str) -> ExecutionEngine:
    """The registered engine behind *name*.

    Raises:
        SimulationError: For unknown names, with a did-you-mean hint
            and the full registered list.
    """
    _ensure_builtin_engines()
    engine = _ENGINES.get(str(name).lower())
    if engine is None:
        raise SimulationError(
            unknown_name_message("execution engine", name, _ENGINES))
    return engine
