"""The :class:`Backend` target abstraction and its registry.

The paper's central claim is that a good mapping is a function of *the
machine on the day*: topology, calibration stream, and noise behavior
together. The repo used to carry those as three loosely-coupled pieces
(a topology factory, a hand-threaded ``Calibration``, an ``engine``
string); a :class:`Backend` binds them into one value with a stable
:meth:`~Backend.content_id`, so "which machine" can be swept, cached
against, and reported like any other axis.

A backend is *not* a calibration: it is the generator of the machine's
calibration stream (topology + noise profile + generator seed), plus
the default execution engine for simulating it. Day-*d* snapshots come
from :meth:`Backend.calibration` and are memoized process-wide, so a
thousand sweep cells on ``(falcon27, day 3)`` share one
:class:`~repro.hardware.calibration.Calibration` object.

Presets register through :func:`register_backend`
(:mod:`repro.backend.presets` holds the built-ins); third-party code
registers new machines the same way, without touching this module or
``hardware/devices.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple, Union

from repro.backend.engines import DEFAULT_ENGINE, unknown_name_message
from repro.exceptions import BackendError
from repro.hardware.calibration import Calibration
from repro.hardware.calibration_gen import CalibrationGenerator, NoiseProfile
from repro.hardware.topology import GridTopology

#: Process-wide memos keyed by backend content id, so equal backends
#: (including pickled copies in pool workers) share generators and
#: snapshots regardless of object identity. The snapshot memo is
#: FIFO-bounded so a long-lived process sweeping many days/backends
#: cannot grow it without limit (generators are one per distinct
#: backend and stay small).
_GENERATORS: Dict[str, CalibrationGenerator] = {}
_SNAPSHOTS: Dict[Tuple[str, int], Calibration] = {}
_MAX_SNAPSHOTS = 512


@dataclass(frozen=True)
class Backend:
    """One target machine: topology + calibration stream + noise + engine.

    Attributes:
        name: Registry name (also the CLI's ``--device`` value).
        topology: The machine's coupling graph.
        profile: Distributional parameters of the synthetic calibration
            stream (per-machine: an ion trap and a Falcon drift
            differently).
        calibration_seed: Seed of the calibration generator; the full
            day sequence is a pure function of (topology, profile,
            seed).
        default_engine: Execution engine cells on this backend resolve
            to when they don't pick one explicitly.
        description: One-line human description for listings.
    """

    name: str
    topology: GridTopology
    profile: NoiseProfile = NoiseProfile()
    calibration_seed: int = 2019
    default_engine: str = DEFAULT_ENGINE
    description: str = ""

    @property
    def n_qubits(self) -> int:
        return self.topology.n_qubits

    def with_(self, **changes) -> "Backend":
        """A copy with the given fields replaced (like
        ``CompilerOptions.with_``)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def content_id(self) -> str:
        """Stable content hash of everything that defines this target's
        *machine* — name, topology, noise profile, calibration seed.

        Two backends serializing identically share an id regardless of
        object identity (or pickling round-trips); the sweep runtime
        scopes its compile/stage/trace cache keys by this value so
        cross-device sweeps can never alias. ``default_engine`` is
        deliberately excluded: it selects execution dispatch, not any
        cached artifact, so an engine-comparison sweep over
        ``backend.with_(default_engine=...)`` variants keeps sharing
        compilations and lowered traces. Memoized — backends are
        frozen and treated as immutable.
        """
        cached = getattr(self, "_content_id", None)
        if cached is None:
            payload = json.dumps({
                "name": self.name,
                "topology": {"mx": self.topology.mx, "my": self.topology.my,
                             "name": self.topology.name},
                "profile": dataclasses.asdict(self.profile),
                "calibration_seed": self.calibration_seed,
            }, sort_keys=True)
            cached = hashlib.sha256(payload.encode()).hexdigest()
            object.__setattr__(self, "_content_id", cached)
        return cached

    # ------------------------------------------------------------------
    # Calibration stream
    # ------------------------------------------------------------------
    def generator(self) -> CalibrationGenerator:
        """The (memoized) calibration generator for this machine."""
        gen = _GENERATORS.get(self.content_id())
        if gen is None:
            gen = _GENERATORS[self.content_id()] = CalibrationGenerator(
                self.topology, seed=self.calibration_seed,
                profile=self.profile)
        return gen

    def calibration(self, day: int = 0) -> Calibration:
        """The day-*day* snapshot (memoized process-wide)."""
        key = (self.content_id(), day)
        snapshot = _SNAPSHOTS.get(key)
        if snapshot is None:
            while len(_SNAPSHOTS) >= _MAX_SNAPSHOTS:
                _SNAPSHOTS.pop(next(iter(_SNAPSHOTS)))
            snapshot = _SNAPSHOTS[key] = self.generator().snapshot(day)
        return snapshot

    def days(self, n_days: int, start: int = 0) -> Iterator[Calibration]:
        """Iterate snapshots for *n_days* consecutive days."""
        for day in range(start, start + n_days):
            yield self.calibration(day)

    def __repr__(self) -> str:
        return (f"Backend({self.name!r}, {self.topology.mx}x"
                f"{self.topology.my}, engine={self.default_engine!r})")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
BackendFactory = Callable[[], Backend]

_BACKENDS: Dict[str, BackendFactory] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str):
    """Decorator registering a zero-argument :class:`Backend` factory.

    ::

        @register_backend("mylab9")
        def mylab9() -> Backend:
            return Backend(name="mylab9", topology=GridTopology(3, 3))

    Names are case-insensitive on lookup. Re-registering a name
    replaces the previous factory (last wins), matching the pass and
    mapper registries.
    """
    key = name.lower()

    def decorate(factory: BackendFactory) -> BackendFactory:
        _BACKENDS[key] = factory
        _INSTANCES.pop(key, None)
        return factory

    return decorate


def registered_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


def get_backend(backend: Union[str, Backend]) -> Backend:
    """Resolve a backend name (or pass a :class:`Backend` through).

    Instances are memoized per name — backends are immutable values,
    so every caller shares one object (and its snapshot memos).

    Raises:
        BackendError: For unknown names, with a did-you-mean hint and
            the registered list (a :class:`TopologyError` subclass, so
            legacy device-lookup callers keep working).
    """
    if isinstance(backend, Backend):
        return backend
    key = str(backend).lower()
    instance = _INSTANCES.get(key)
    if instance is None:
        factory = _BACKENDS.get(key)
        if factory is None:
            raise BackendError(
                unknown_name_message("backend", backend, _BACKENDS))
        instance = _INSTANCES[key] = factory()
    return instance
