"""Built-in backend presets.

Grid approximations of the machines discussed in the paper and its
related work, plus targets that widen scenario diversity beyond the
2 x 8 Rueschlikon the evaluation centers on. All topologies are
:class:`~repro.hardware.topology.GridTopology` instances, so every
compiler variant works on them unchanged; what distinguishes the
presets is shape *and* noise character — each carries its own
:class:`~repro.hardware.calibration_gen.NoiseProfile`, because the
whole point of noise-adaptive mapping is that machines drift
differently.

These are ordinary :func:`~repro.backend.base.register_backend`
registrations: adding a machine here (or anywhere else) never touches
``hardware/devices.py`` or the executor.
"""

from __future__ import annotations

from repro.backend.base import Backend, register_backend
from repro.hardware.calibration_gen import NoiseProfile
from repro.hardware.topology import (
    GridTopology,
    ibmq5_topology,
    ibmq16_topology,
    ibmq20_topology,
    linear_topology,
)


@register_backend("ibmq16")
def ibmq16() -> Backend:
    """The paper's primary machine (defaults follow its §2 statistics)."""
    return Backend(
        name="ibmq16", topology=ibmq16_topology(),
        description="IBMQ16 Rueschlikon, 2x8 grid — the paper's machine")


@register_backend("ibmq5")
def ibmq5() -> Backend:
    return Backend(
        name="ibmq5", topology=ibmq5_topology(),
        description="5-qubit IBM device as a 1x5 line")


@register_backend("ibmq20")
def ibmq20() -> Backend:
    return Backend(
        name="ibmq20", topology=ibmq20_topology(),
        description="20-qubit Tokyo-class IBM device as a 5x4 grid")


@register_backend("iontrap8")
def iontrap8() -> Backend:
    """The §9 extension target: a linear ion-trap-style chain.

    Traps hold coherence far longer than superconducting qubits but
    pay slower two-qubit gates — the profile stretches T2 and the CNOT
    duration while thinning gate error, so schedule-aware variants see
    a genuinely different tradeoff surface.
    """
    return Backend(
        name="iontrap8", topology=linear_topology(8, name="IonTrap8"),
        profile=NoiseProfile(mean_t1_us=400.0, mean_t2_us=300.0,
                             mean_cnot_error=0.02,
                             mean_cnot_duration_slots=8.0,
                             mean_readout_error=0.03),
        description="linear 8-ion chain: long T2, slow 2q gates")


@register_backend("falcon27")
def falcon27() -> Backend:
    """A 27-qubit heavy-hex-class device, grid-approximated as 9x3.

    Modeled on the Falcon generation: roughly 3x lower CNOT and
    readout error than Rueschlikon, with milder day-to-day drift.
    """
    return Backend(
        name="falcon27", topology=GridTopology(mx=9, my=3, name="Falcon27"),
        profile=NoiseProfile(mean_t2_us=100.0, mean_cnot_error=0.012,
                             mean_readout_error=0.025,
                             mean_single_qubit_error=0.0005,
                             drift_sigma=0.12),
        description="27-qubit heavy-hex-class target as a 9x3 grid")


@register_backend("grid144")
def grid144() -> Backend:
    """A 144-qubit 12x12 lattice for the large-n Clifford tier.

    Far beyond any dense amplitude budget — the point of this preset
    is the stabilizer engine, so its default engine is ``"auto"``:
    Clifford programs (the GHZ/BV64/repetition-code benchmarks) route
    to the polynomial tableau path, anything else falls back to dense
    and hits the capacity guard with a clear error instead of an OOM.
    Better-than-Rueschlikon noise keeps 100-qubit circuits from fully
    depolarizing.
    """
    return Backend(
        name="grid144", topology=GridTopology(mx=12, my=12,
                                              name="Grid144"),
        profile=NoiseProfile(mean_t1_us=180.0, mean_t2_us=120.0,
                             mean_cnot_error=0.008,
                             mean_single_qubit_error=0.0004,
                             mean_readout_error=0.015),
        default_engine="auto",
        description="144-qubit 12x12 grid for stabilizer-tier scenarios")


@register_backend("aspen16")
def aspen16() -> Backend:
    """A 16-qubit 4x4 lattice with a readout-dominated error budget.

    The inverse stress case to ``falcon27``: strong readout error and
    wide per-element spread, where the omega-weighted R-SMT* objective
    has the most room to matter.
    """
    return Backend(
        name="aspen16", topology=GridTopology(mx=4, my=4, name="Aspen16"),
        profile=NoiseProfile(mean_readout_error=0.12, readout_sigma=0.45,
                             mean_cnot_error=0.05, cnot_sigma=0.45),
        description="16-qubit 4x4 lattice, readout-dominated errors")
