"""Unified machine-target abstraction: backends and execution engines.

Two registries make "which machine" and "which executor" pluggable:

* :class:`Backend` (:func:`register_backend` / :func:`get_backend`) —
  topology + calibration stream + noise profile + default engine under
  one stable :meth:`~Backend.content_id`, with presets in
  :mod:`repro.backend.presets` (``repro backends`` on the CLI);
* :class:`ExecutionEngine` (:func:`register_engine` /
  :func:`get_engine`) — the strategy behind
  ``execute(engine=...)``; the built-ins (``batched``, ``trial``,
  ``analytic``) register themselves from the simulator package.

The sweep runtime treats a cell's backend as a first-class axis: cache
keys are scoped by backend content id and ``run_sweep`` groups cells
per device, so cross-device sweeps never alias and per-device routing
tables are shared.
"""

from repro.backend.base import (
    Backend,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.backend.engines import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    get_engine,
    register_engine,
    registered_engines,
)
# Importing the presets registers the built-in machines.
from repro.backend import presets  # noqa: F401  (import side effect)

__all__ = [
    "Backend",
    "DEFAULT_ENGINE",
    "ExecutionEngine",
    "get_backend",
    "get_engine",
    "register_backend",
    "register_engine",
    "registered_backends",
    "registered_engines",
]
