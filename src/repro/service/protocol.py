"""Wire protocol of the compile service.

Every message is one **frame**: a 4-byte big-endian payload length
followed by a UTF-8 JSON object (the envelope). Framing is the whole
transport contract — a reader either receives a complete, parseable
envelope or raises :class:`~repro.exceptions.ProtocolError`; there is
no state to resynchronize after a torn frame, the connection is simply
abandoned and the request resubmitted (idempotent by cell
fingerprint).

Envelopes are small and human-debuggable; the two heavyweight bodies —
the submitted :class:`~repro.runtime.SweepCell` and the returned
:class:`~repro.runtime.CellResult` — travel as base64-encoded pickle
fields inside them. Pickle is already the repo's serialization for
exactly these objects (the process pool pipes them, the disk store
persists them); the JSON envelope adds the routing/flow-control fields
(type, tenant, fingerprint, retry hints) that admission control reads
without unpickling anything. Two integrity rails guard the pickle
bodies:

* the envelope's ``fingerprint`` must equal
  :func:`~repro.runtime.cell_fingerprint` recomputed from the decoded
  cell — a mismatch (bit rot, version skew between client and server)
  rejects the request instead of computing a mislabeled result;
* frames are capped at :data:`MAX_MESSAGE_BYTES`, so a corrupt length
  prefix cannot make the reader allocate gigabytes.

Trust boundary: pickle executes arbitrary code on load, so the service
must only listen on trusted interfaces (the default is loopback). This
matches the repo's existing posture — the disk cache and worker pipes
make the same assumption.

Client → server envelopes: ``{"type": "submit", "tenant", "fingerprint",
"cell"}`` and ``{"type": "health"}``. Server → client: ``"result"``,
``"shed"`` (structured, retryable, with ``retry_after``/``reason``),
``"error"`` (non-retryable), and ``"health"``.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Optional

from repro.exceptions import ProtocolError

#: Frame size cap. Compiled programs and traces are a few KiB to a few
#: MiB pickled; anything beyond this is a corrupt length prefix or
#: abuse, not a legitimate request.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one envelope as a length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"outgoing message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame cap")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def send_truncated(sock: socket.socket, message: dict) -> None:
    """Send a deliberately torn frame: the length prefix plus only half
    the payload. Fault-injection only (``conn-trunc``) — the peer's
    :func:`recv_message` must reject it as a :class:`ProtocolError`."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload)) + payload[:len(payload) // 2])


def _recv_exact(sock: socket.socket, n: int,
                at_frame_start: bool) -> Optional[bytes]:
    """Read exactly *n* bytes.

    Returns ``None`` on a clean EOF at a frame boundary (the peer hung
    up between messages — normal connection teardown); raises
    :class:`ProtocolError` on EOF *inside* a frame (torn message).
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_frame_start and remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes "
                f"received)")
        chunks.append(chunk)
        remaining -= len(chunk)
        at_frame_start = False
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Receive one envelope; ``None`` on clean EOF between frames.

    Raises:
        ProtocolError: Torn frame, oversized frame, non-JSON payload,
            or a payload that is not an object.
    """
    header = _recv_exact(sock, _HEADER.size, at_frame_start=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"incoming frame claims {length} bytes (cap "
            f"{MAX_MESSAGE_BYTES}); corrupt length prefix?")
    payload = _recv_exact(sock, length, at_frame_start=False)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame payload is not a typed envelope")
    return message


def _encode_body(obj: object) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def _decode_body(text: str, what: str) -> object:
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise ProtocolError(f"undecodable {what} body: {exc}") from exc


def encode_cell(cell) -> dict:
    """The ``submit`` envelope fields for one cell (body + fingerprint)."""
    from repro.runtime.sweep import cell_fingerprint

    return {"fingerprint": cell_fingerprint(cell),
            "cell": _encode_body(cell)}


def decode_cell(envelope: dict):
    """Decode and verify a submitted cell.

    The envelope's fingerprint is recomputed from the decoded cell;
    a mismatch means the client and server disagree about what the
    bytes *mean* (corruption or code-version skew) and the request is
    rejected rather than mislabeled in the journal.
    """
    from repro.runtime.sweep import cell_fingerprint

    claimed = envelope.get("fingerprint")
    if not claimed:
        raise ProtocolError("submit envelope lacks a cell fingerprint")
    cell = _decode_body(envelope.get("cell", ""), "cell")
    actual = cell_fingerprint(cell)
    if actual != claimed:
        raise ProtocolError(
            f"cell fingerprint mismatch: envelope claims "
            f"{claimed.split('|')[0]}…, decoded cell is "
            f"{actual.split('|')[0]}… (client/server version skew?)")
    return cell


def encode_result(result) -> str:
    """The ``result`` envelope body for one completed cell."""
    return _encode_body(result)


def decode_result(envelope: dict):
    """Decode a ``result`` envelope's cell-result body."""
    return _decode_body(envelope.get("result", ""), "result")
