"""The ``repro serve`` daemon.

A long-lived socket service that turns :func:`~repro.runtime.run_sweep`
into compilation-as-a-service: clients submit individual
:class:`~repro.runtime.SweepCell` requests; the server batches admitted
cells through the fault-tolerant sweep runtime (supervised pool,
retry/quarantine, checkpoint journal) and streams each result back to
every client waiting on its fingerprint.

Thread model — deliberately boring, because boring survives chaos:

* one **accept** thread hands each connection to a dedicated handler
  thread (clients block on their own submits; slow clients slow only
  themselves);
* one **executor** thread drains the admission queue in batches
  (``batch_window`` of latency buys burst coalescing into one
  ``run_sweep`` call) — all compile/trace caches are touched by this
  thread only, so the cache layer needs no locking;
* the **admission controller** is the only cross-thread state, and it
  is fully lock-guarded.

Robustness contract:

* a request, once admitted, is always answered — executor exceptions
  are converted to per-cell :class:`~repro.runtime.CellFailure`
  results, never silent drops;
* ``SIGTERM``/``SIGINT`` drain gracefully: new submits are shed with a
  ``"draining"`` notice, admitted cells finish and are journaled, and
  the process exits 0 with no zombie workers;
* with a ``cache_dir``, every completed cell is checkpoint-journaled
  *before* its response is sent, so a server killed mid-flight resumes
  from the journal and a resubmitting client converges on the exact
  result the uninterrupted run would have produced;
* persistent-store degradation (disk full) is surfaced to clients as a
  ``degraded`` response flag and re-probed between batches
  (:meth:`~repro.runtime.CompileCache.redeem`), so a transient outage
  doesn't pin a long-lived server in memory-only mode.

Connection-level fault injection (``REPRO_FAULTS`` +
``conn-drop``/``conn-trunc``/``conn-delay``/``kill-server`` tokens)
fires in the response path, addressed by global submit arrival order —
every client recovery path is deterministically drillable.
"""

from __future__ import annotations

import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ProtocolError
from repro.runtime.diskcache import make_compile_cache
from repro.runtime.sweep import (
    CellFailure,
    CellResult,
    SweepCell,
    run_sweep,
)
from repro.service.admission import AdmissionController, Request
from repro.service.protocol import (
    decode_cell,
    encode_result,
    recv_message,
    send_message,
    send_truncated,
)


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`ReproServer`.

    Attributes:
        host: Interface to bind. Loopback by default — the wire
            protocol carries pickle bodies, so only trusted interfaces
            may listen (see :mod:`repro.service.protocol`).
        port: TCP port; ``0`` lets the OS pick (tests) — the bound
            port is reported by :meth:`ReproServer.start`.
        cache_dir: Optional persistent compile/stage/journal store.
            Strongly recommended for production: it is what makes the
            server restartable (resume from journal) and cross-process
            cache-warm.
        workers: Sweep pool width per batch (``0`` = in-process; the
            supervised pool's worker-death recovery applies when
            ``>= 2``).
        queue_capacity: Bound on *distinct* queued cells; beyond it
            submits are shed with ``Retry-After``.
        tenant_cap: Per-tenant outstanding-request cap.
        batch_window: Seconds the executor waits to batch a burst of
            submits into one ``run_sweep`` call.
        batch_max: Max distinct cells per executor batch.
        max_retries: Worker-death retries per cell (pool path).
        batch_timeout: Watchdog seconds-without-progress per worker
            (pool path; ``None`` disables).
        drain_grace: Seconds shutdown waits for handler threads to
            flush their final responses.
    """

    host: str = "127.0.0.1"
    port: int = 0
    cache_dir: Optional[object] = None
    workers: int = 0
    queue_capacity: int = 64
    tenant_cap: int = 16
    batch_window: float = 0.05
    batch_max: int = 32
    max_retries: int = 2
    batch_timeout: Optional[float] = None
    drain_grace: float = 10.0


class ReproServer:
    """One compile-service instance (see module docstring).

    Args:
        config: The server's knobs.
        faults: Optional :class:`~repro.runtime.faults.FaultPlan`.
            Cell-level faults ride into every ``run_sweep`` batch;
            connection-level faults fire in the response path. Inert
            unless ``REPRO_FAULTS`` is set.
    """

    def __init__(self, config: ServerConfig = ServerConfig(),
                 faults=None) -> None:
        self.config = config
        self._faults = faults
        self._admission = AdmissionController(
            capacity=config.queue_capacity, tenant_cap=config.tenant_cap)
        self._cache = make_compile_cache(config.cache_dir)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._executor_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._handlers_lock = threading.Lock()
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._seq_lock = threading.Lock()
        self._submit_seq = 0
        self._started_at = 0.0
        # Executor-thread-only counters, read (racily but monotonically)
        # by the health report.
        self._served = 0
        self._resumed = 0
        self._quarantined = 0
        self._failed = 0
        self._batches = 0
        self._degraded = False

    # ---------------------------------------------------------- lifecycle

    def start(self) -> Tuple[str, int]:
        """Bind, spawn the accept and executor threads, and return the
        bound ``(host, port)`` (the OS-picked port when ``port=0``)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        # A restarted server must rebind the port its predecessor's
        # dying sockets still hold in TIME_WAIT — the restart drill
        # depends on this.
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        self._started_at = time.monotonic()
        self._executor_thread = threading.Thread(
            target=self._executor_loop, name="repro-serve-executor",
            daemon=True)
        self._executor_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept",
            daemon=True)
        self._accept_thread.start()
        return listener.getsockname()[:2]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        return self._listener.getsockname()[:2]

    def request_drain(self) -> None:
        """Begin graceful shutdown: shed new submits with a
        ``"draining"`` notice, finish and journal admitted cells, then
        let :meth:`serve_forever`/:meth:`stop` complete. Idempotent and
        signal-handler-safe."""
        self._admission.drain()

    def serve_forever(self) -> None:
        """Run until drained (CLI entry point; call from the main
        thread). Installs ``SIGTERM``/``SIGINT`` handlers that trigger
        the graceful drain, then blocks; returns once every admitted
        cell has been answered and the process is safe to exit 0."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.request_drain())
        self._drained.wait()
        self._shutdown()

    def stop(self) -> None:
        """Drain and shut down (programmatic/test entry point)."""
        self.request_drain()
        self._drained.wait(timeout=self.config.drain_grace
                           + (self.config.batch_timeout or 0.0))
        self._shutdown()

    def _shutdown(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover — already closed
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._executor_thread is not None:
            self._executor_thread.join(timeout=self.config.drain_grace)
        deadline = time.monotonic() + self.config.drain_grace
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=max(0.0, deadline - time.monotonic()))

    # ------------------------------------------------------------ health

    def health(self) -> dict:
        """The health report: admission bounds and depths, lifetime
        counters, degradation, and drain state."""
        report = dict(self._admission.snapshot())
        disk = self._cache.disk_stats()
        report.update({
            "status": "draining" if self._admission.draining else "ok",
            "uptime": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.workers,
            "batches": self._batches,
            "served": self._served,
            "resumed": self._resumed,
            "failed": self._failed,
            "quarantined": self._quarantined,
            "degraded": self._degraded,
            "redeemed": max((stats.redeemed for stats in disk.values()),
                            default=0),
            "journal": self._cache.journal is not None,
        })
        return report

    # ------------------------------------------------------------ intake

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:  # listener closed — shutting down
                return
            handler = threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="repro-serve-conn", daemon=True)
            with self._handlers_lock:
                self._handlers = [t for t in self._handlers
                                  if t.is_alive()]
                self._handlers.append(handler)
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                while True:
                    try:
                        envelope = recv_message(conn)
                    except ProtocolError:
                        # Torn/corrupt inbound frame: there is no way
                        # to answer a request we can't delimit — drop
                        # the connection; the client resubmits.
                        return
                    if envelope is None:
                        return
                    if not self._dispatch(conn, envelope):
                        return
        except OSError:
            return  # peer vanished mid-response; nothing left to say

    def _dispatch(self, conn: socket.socket, envelope: dict) -> bool:
        """Handle one envelope; False ends the connection."""
        kind = envelope.get("type")
        if kind == "health":
            send_message(conn, {"type": "health", **self.health()})
            return True
        if kind != "submit":
            send_message(conn, {
                "type": "error", "error_type": "ProtocolError",
                "message": f"unknown request type {kind!r}"})
            return True
        with self._seq_lock:
            seq = self._submit_seq
            self._submit_seq += 1
        try:
            cell = decode_cell(envelope)
            if not isinstance(cell, SweepCell):
                raise ProtocolError(
                    f"submit body is a {type(cell).__name__}, "
                    f"not a SweepCell")
        except ProtocolError as exc:
            send_message(conn, {
                "type": "error", "error_type": "ProtocolError",
                "message": str(exc)})
            return True
        tenant = str(envelope.get("tenant", "default"))
        decision = self._admission.offer(envelope["fingerprint"], cell,
                                         tenant)
        if decision.kind == "shed":
            send_message(conn, {
                "type": "shed", "reason": decision.reason,
                "retry_after": decision.retry_after,
                "fingerprint": envelope["fingerprint"]})
            return True
        request = decision.request
        while not request.done.wait(timeout=0.2):
            if self._stopping.is_set():  # pragma: no cover — safety net
                send_message(conn, {
                    "type": "shed", "reason": "draining",
                    "retry_after": 0.1,
                    "fingerprint": request.fingerprint})
                return True
        # The result exists and — with a cache_dir — is already
        # journaled, which is exactly why the injected crash sits
        # here: a restarted server serves the resubmission from the
        # journal, proving the client-visible exactly-once story.
        if self._faults is not None:
            self._faults.maybe_kill_server(seq)
            action = self._faults.on_response(seq)
            if action == "drop":
                return False
            if action == "trunc":
                send_truncated(conn, self._result_envelope(
                    request, decision))
                return False
        send_message(conn, self._result_envelope(request, decision))
        return True

    def _result_envelope(self, request: Request, decision) -> dict:
        result: CellResult = request.result
        return {
            "type": "result",
            "fingerprint": request.fingerprint,
            "result": encode_result(result),
            "ok": result.failure is None,
            "coalesced": decision.kind == "coalesce",
            "journal_hit": bool(result.resumed),
            "degraded": self._degraded,
        }

    # ---------------------------------------------------------- executor

    def _executor_loop(self) -> None:
        while True:
            batch = self._admission.take_batch(
                self.config.batch_max, timeout=self.config.batch_window)
            if not batch:
                if self._admission.draining and \
                        self._admission.pending() == 0:
                    break
                if self._stopping.is_set():
                    break
                continue
            self._execute_batch(batch)
        self._drained.set()

    def _execute_batch(self, batch: List[Request]) -> None:
        cells = [request.cell for request in batch]
        try:
            sweep = run_sweep(
                cells, workers=self.config.workers,
                compile_cache=self._cache,
                cache_dir=self.config.cache_dir,
                resume=self._cache.journal is not None,
                max_retries=self.config.max_retries,
                batch_timeout=self.config.batch_timeout,
                faults=self._faults)
            results = list(sweep.results)
            self._resumed += sweep.resumed
        except Exception as exc:
            # An executor crash must never strand waiters: answer every
            # request in the batch with a structured failure.
            results = [CellResult(
                key=cell.key,
                failure=CellFailure.from_exception(index, cell.key, exc))
                for index, cell in enumerate(cells)]
        self._batches += 1
        self._served += len(batch)
        for result in results:
            if result.failure is not None:
                self._failed += 1
                if result.failure.stage in ("worker", "timeout"):
                    self._quarantined += 1
        self._degraded = any(stats.degraded for stats
                             in self._cache.disk_stats().values())
        if self._degraded and self._cache.redeem():
            self._degraded = False
        for request, result in zip(batch, results):
            self._admission.complete(request, result)


def serve(config: ServerConfig, faults=None,
          announce=None) -> int:
    """Run a server until drained (the CLI's blocking entry point).

    Returns the process exit code (0 on a clean drain).
    """
    server = ReproServer(config, faults=faults)
    host, port = server.start()
    if announce is not None:
        announce(host, port)
    server.serve_forever()
    return 0
