"""Admission control for the compile service.

The server's front door decides, under a lock, what happens to each
submitted cell before any work is scheduled:

* **Coalesce** — a request whose cell fingerprint is already queued or
  in flight attaches to the existing entry as an extra waiter. The
  content-addressed caches make duplicate work free, so N clients
  submitting the same grid cost one execution plus N responses; a
  coalesced request consumes *no* queue capacity.
* **Admit** — a new fingerprint enters the bounded queue.
* **Shed** — the queue is full, the tenant is over its in-flight cap,
  or the server is draining. Shedding is a structured, immediate
  answer carrying a ``Retry-After`` hint — never a hang: backpressure
  is pushed to the client's backoff loop, where it belongs, instead of
  accumulating as unbounded memory in the server.

Entries are keyed by :func:`~repro.runtime.cell_fingerprint`, the same
content identity the checkpoint journal uses, which is what makes
client resubmission idempotent: a retried request either coalesces
onto the original (still running) or re-admits a fingerprint whose
result the journal already holds (served as a cache hit by the
executor's resume path).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Request:
    """One admitted submit request (possibly with coalesced waiters).

    The first arrival owns the entry; later arrivals with the same
    fingerprint append their tenant to ``waiters`` and share the
    ``done`` event and ``result`` slot.
    """

    fingerprint: str
    cell: object
    tenant: str
    seq: int
    waiters: List[str] = field(default_factory=list)
    done: threading.Event = field(default_factory=threading.Event)
    result: object = None

    def tenants(self) -> List[str]:
        return [self.tenant] + self.waiters


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one submit.

    ``kind`` is ``"admit"`` (new entry queued), ``"coalesce"``
    (attached to an existing entry), or ``"shed"`` (rejected;
    ``reason`` names which bound fired and ``retry_after`` hints when
    to come back). Admit/coalesce decisions carry the live
    :class:`Request` whose ``done`` event the connection handler
    waits on.
    """

    kind: str
    request: Optional[Request] = None
    reason: str = ""
    retry_after: float = 0.0


@dataclass
class AdmissionStats:
    """Monotonic front-door counters (surfaced by the health report)."""

    admitted: int = 0
    coalesced: int = 0
    shed_queue_full: int = 0
    shed_tenant_cap: int = 0
    shed_draining: int = 0

    @property
    def shed(self) -> int:
        return (self.shed_queue_full + self.shed_tenant_cap
                + self.shed_draining)


class AdmissionController:
    """Bounded, coalescing, tenant-fair request intake.

    Args:
        capacity: Maximum *distinct* cells queued (in-flight cells have
            left the queue). The K+1st distinct submit is shed.
        tenant_cap: Maximum requests one tenant may have outstanding
            (queued or in flight, coalesced ones included — a tenant
            flooding duplicates still occupies response slots).
        retry_after: Base ``Retry-After`` hint (seconds); the
            queue-full hint scales with how oversubscribed the queue
            is, so a deeper backlog pushes clients further away.
    """

    def __init__(self, capacity: int = 64, tenant_cap: int = 16,
                 retry_after: float = 0.05) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if tenant_cap < 1:
            raise ValueError(f"tenant cap must be >= 1, got {tenant_cap}")
        self.capacity = capacity
        self.tenant_cap = tenant_cap
        self.retry_after = retry_after
        self.stats = AdmissionStats()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._queue: List[Request] = []
        self._entries: Dict[str, Request] = {}  # queued + in-flight
        self._tenant_outstanding: Dict[str, int] = {}
        self._draining = False
        self._seq = 0

    # ------------------------------------------------------------ intake

    def offer(self, fingerprint: str, cell: object,
              tenant: str) -> AdmissionDecision:
        """Decide one submit. Never blocks; sheds instead."""
        with self._lock:
            if self._draining:
                self.stats.shed_draining += 1
                return AdmissionDecision(
                    kind="shed", reason="draining",
                    retry_after=self.retry_after)
            if self._tenant_outstanding.get(tenant, 0) >= self.tenant_cap:
                self.stats.shed_tenant_cap += 1
                return AdmissionDecision(
                    kind="shed", reason="tenant-cap",
                    retry_after=self.retry_after)
            existing = self._entries.get(fingerprint)
            if existing is not None and not existing.done.is_set():
                existing.waiters.append(tenant)
                self._tenant_outstanding[tenant] = \
                    self._tenant_outstanding.get(tenant, 0) + 1
                self.stats.coalesced += 1
                return AdmissionDecision(kind="coalesce", request=existing)
            if len(self._queue) >= self.capacity:
                self.stats.shed_queue_full += 1
                backlog = len(self._queue) / self.capacity
                return AdmissionDecision(
                    kind="shed", reason="queue-full",
                    retry_after=self.retry_after * (1.0 + backlog))
            request = Request(fingerprint=fingerprint, cell=cell,
                              tenant=tenant, seq=self._seq)
            self._seq += 1
            self._queue.append(request)
            self._entries[fingerprint] = request
            self._tenant_outstanding[tenant] = \
                self._tenant_outstanding.get(tenant, 0) + 1
            self.stats.admitted += 1
            self._available.notify()
            return AdmissionDecision(kind="admit", request=request)

    # ---------------------------------------------------------- executor

    def take_batch(self, max_batch: int,
                   timeout: Optional[float] = None) -> List[Request]:
        """Dequeue up to *max_batch* distinct requests for execution.

        Blocks up to *timeout* seconds for the first request, then
        keeps gathering until the batch is full or another *timeout*
        window passes — a burst of concurrent submits (N clients, one
        grid) lands in one ``run_sweep`` call instead of N serial
        single-cell batches, which is what buys the pool path and the
        coalescing throughput. Taken requests stay in ``entries`` (they
        are in flight: late duplicates must still coalesce) until
        :meth:`complete`.
        """
        with self._lock:
            if not self._queue:
                self._available.wait(timeout)
                if not self._queue:
                    return []
            if timeout:
                gather_until = time.monotonic() + timeout
                while len(self._queue) < max_batch:
                    remaining = gather_until - time.monotonic()
                    if remaining <= 0 or self._draining:
                        break
                    self._available.wait(remaining)
            batch = self._queue[:max_batch]
            del self._queue[:len(batch)]
            return batch

    def complete(self, request: Request, result: object) -> None:
        """Publish a result: release tenant slots, wake all waiters."""
        with self._lock:
            request.result = result
            for tenant in request.tenants():
                remaining = self._tenant_outstanding.get(tenant, 0) - 1
                if remaining > 0:
                    self._tenant_outstanding[tenant] = remaining
                else:
                    self._tenant_outstanding.pop(tenant, None)
            if self._entries.get(request.fingerprint) is request:
                del self._entries[request.fingerprint]
            request.done.set()

    # ------------------------------------------------------------- state

    def drain(self) -> None:
        """Refuse new work; already-admitted requests still complete."""
        with self._lock:
            self._draining = True
            self._available.notify_all()

    @property
    def draining(self) -> bool:
        return self._draining

    def pending(self) -> int:
        """Distinct requests admitted but not yet completed."""
        with self._lock:
            return len(self._entries)

    def depth(self) -> int:
        """Distinct requests queued (not yet taken by the executor)."""
        with self._lock:
            return len(self._queue)

    def snapshot(self) -> dict:
        """Health-report view: bounds, depths, and counters."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "tenant_cap": self.tenant_cap,
                "queue_depth": len(self._queue),
                "in_flight": len(self._entries) - len(self._queue),
                "tenants": dict(self._tenant_outstanding),
                "draining": self._draining,
                "admitted": self.stats.admitted,
                "coalesced": self.stats.coalesced,
                "shed": self.stats.shed,
                "shed_queue_full": self.stats.shed_queue_full,
                "shed_tenant_cap": self.stats.shed_tenant_cap,
                "shed_draining": self.stats.shed_draining,
            }
