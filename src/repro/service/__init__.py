"""Compilation-as-a-service: the ``repro serve`` daemon and client.

The sweep runtime made compilation fault-tolerant (supervised workers,
retry/quarantine, checkpoint/resume); this package makes it
*long-lived*: a socket daemon that accepts submitted
:class:`~repro.runtime.SweepCell` requests over a length-prefixed JSON
protocol and executes them through :func:`~repro.runtime.run_sweep`
against the shared compile/stage/trace caches and checkpoint journal.

Layers, bottom up:

* :mod:`repro.service.protocol` — wire format: 4-byte length-prefixed
  JSON envelopes, with cells/results carried as base64 pickle bodies
  fingerprint-checked on decode.
* :mod:`repro.service.admission` — the front door: bounded request
  queue, per-tenant in-flight caps, load shedding with ``Retry-After``
  hints, and coalescing of identical compile keys across clients.
* :mod:`repro.service.server` — the daemon: accept loop, per-connection
  handler threads, a batching executor over ``run_sweep``, graceful
  drain on SIGTERM, health reporting, and connection-level fault
  injection hooks.
* :mod:`repro.service.client` — the caller side: per-request deadlines,
  exponential backoff with deterministic jitter, idempotent
  resubmission keyed by cell fingerprint, and a circuit breaker.

The robustness contract the test suite pins: a served sweep — under
injected worker death, dropped/truncated connections, and server
restarts — returns results bit-identical to an in-process
``run_sweep`` of the same cells.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.service.client import RetryPolicy, ServiceClient, submit_sweep
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    decode_cell,
    decode_result,
    encode_cell,
    encode_result,
    recv_message,
    send_message,
)
from repro.service.server import ReproServer, ServerConfig

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "MAX_MESSAGE_BYTES",
    "ReproServer",
    "RetryPolicy",
    "ServerConfig",
    "ServiceClient",
    "decode_cell",
    "decode_result",
    "encode_cell",
    "encode_result",
    "recv_message",
    "send_message",
    "submit_sweep",
]
