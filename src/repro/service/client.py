"""Client side of the compile service.

:class:`ServiceClient` wraps one connection to a ``repro serve``
daemon with the retry discipline a flaky network (or a chaos drill)
demands:

* **Per-request deadlines** — a wall-clock budget covering every
  attempt, connect included; exceeding it raises
  :class:`~repro.exceptions.DeadlineExceeded`, never a silent hang.
* **Exponential backoff with deterministic jitter** — transport
  failures and sheds back off geometrically; jitter is drawn from a
  seeded RNG so tests (and incident replays) are reproducible while
  production fleets still decorrelate.
* **Idempotent resubmission** — the submit envelope's cell fingerprint
  is the request's content identity: a resubmission after a dropped or
  torn response either coalesces onto the still-running original or is
  served from the server's checkpoint journal. Retrying is therefore
  always safe, which is what makes aggressive retry *correct*.
* **Circuit breaker** — consecutive transport failures past a
  threshold fail fast (:class:`~repro.exceptions.CircuitOpen`) for a
  cooldown instead of hammering a dead server; one successful
  round-trip closes the breaker.

Shed responses (queue full, tenant cap, draining) are structured and
retryable: the client honors the server's ``Retry-After`` hint, and
only after the attempt budget or deadline is exhausted does
:class:`~repro.exceptions.ServiceUnavailable` escape to the caller.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import (
    CircuitOpen,
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.protocol import (
    decode_result,
    encode_cell,
    recv_message,
    send_message,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and circuit-breaker knobs of one client.

    Attributes:
        max_attempts: Total tries per request (first attempt included).
        base_delay: First backoff sleep (seconds).
        multiplier: Geometric backoff factor.
        max_delay: Backoff ceiling.
        jitter: Fractional jitter: each sleep is scaled by a uniform
            draw from ``[1 - jitter, 1 + jitter]``.
        breaker_threshold: Consecutive transport failures that trip
            the circuit breaker.
        breaker_cooldown: Seconds the open breaker fails fast before
            allowing a probe attempt.
    """

    max_attempts: int = 8
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The jittered backoff before retry *attempt* (1-based)."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (attempt - 1))
        return raw * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))


class ServiceClient:
    """One tenant's connection to a compile service.

    Connections are reused across submits and transparently reopened
    after transport failures. Not thread-safe — give each thread its
    own client (the coalescing server makes that cheap).

    Args:
        host: Server host.
        port: Server port.
        tenant: Admission-control identity sent with every submit.
        deadline: Default per-request wall-clock budget in seconds
            (``None`` = wait indefinitely, modulo the retry budget).
        retry: Backoff/breaker policy.
        jitter_seed: Seed of the jitter RNG — fixed per client so
            chaos drills replay identically.
    """

    def __init__(self, host: str, port: int, tenant: str = "default",
                 deadline: Optional[float] = None,
                 retry: RetryPolicy = RetryPolicy(),
                 jitter_seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.deadline = deadline
        self.retry = retry
        self._rng = random.Random(jitter_seed)
        self._sock: Optional[socket.socket] = None
        self._consecutive_failures = 0
        self._breaker_open_until = 0.0
        #: Lifetime counters, exposed for tests and reporting.
        self.stats = {"submitted": 0, "retries": 0, "sheds": 0,
                      "transport_failures": 0, "coalesced": 0,
                      "journal_hits": 0, "degraded_responses": 0}

    # --------------------------------------------------------- transport

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover — already dead
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _connection(self, timeout: Optional[float]) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        self._sock.settimeout(timeout)
        return self._sock

    def _roundtrip(self, message: dict,
                   deadline_at: Optional[float]) -> dict:
        """One request/response exchange with deadline accounting."""
        timeout = None
        if deadline_at is not None:
            timeout = deadline_at - time.monotonic()
            if timeout <= 0:
                raise DeadlineExceeded(
                    f"deadline exhausted before sending "
                    f"{message.get('type')} request")
        try:
            sock = self._connection(timeout)
            send_message(sock, message)
            response = recv_message(sock)
        except socket.timeout as exc:
            self.close()
            raise DeadlineExceeded(
                f"no response within the {message.get('type')} "
                f"request's deadline") from exc
        if response is None:
            # Clean EOF instead of a response: the server dropped the
            # connection (injected or real). A transport failure like
            # any other.
            self.close()
            raise ProtocolError("connection closed before a response")
        return response

    # ------------------------------------------------------------ breaker

    def _check_breaker(self) -> None:
        if self._consecutive_failures < self.retry.breaker_threshold:
            return
        remaining = self._breaker_open_until - time.monotonic()
        if remaining > 0:
            raise CircuitOpen(
                f"circuit breaker open after "
                f"{self._consecutive_failures} consecutive transport "
                f"failures; retry in {remaining:.2f}s")
        # Cooldown elapsed: half-open — let one probe attempt through.

    def _record_transport_failure(self) -> None:
        self.stats["transport_failures"] += 1
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.retry.breaker_threshold:
            self._breaker_open_until = (time.monotonic()
                                        + self.retry.breaker_cooldown)
        self.close()

    @property
    def breaker_open(self) -> bool:
        return (self._consecutive_failures >= self.retry.breaker_threshold
                and time.monotonic() < self._breaker_open_until)

    # ------------------------------------------------------------- calls

    def submit(self, cell, deadline: Optional[float] = None):
        """Submit one cell; return its :class:`~repro.runtime.CellResult`.

        Retries transport failures and sheds under the client's
        :class:`RetryPolicy`; the cell's fingerprint makes every
        resubmission idempotent server-side.

        Raises:
            DeadlineExceeded: The per-request budget ran out.
            CircuitOpen: The breaker is open (failing fast).
            ServiceUnavailable: Shed on every attempt (the last shed's
                reason and ``Retry-After`` are carried).
            ServiceError: The server rejected the request outright
                (protocol error — not retryable).
        """
        budget = deadline if deadline is not None else self.deadline
        deadline_at = (time.monotonic() + budget
                       if budget is not None else None)
        envelope = {"type": "submit", "tenant": self.tenant,
                    **encode_cell(cell)}
        self.stats["submitted"] += 1
        last_error: Optional[Exception] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            self._check_breaker()
            hint = 0.0
            try:
                response = self._roundtrip(envelope, deadline_at)
            except (ProtocolError, ConnectionError, OSError) as exc:
                self._record_transport_failure()
                last_error = exc
            else:
                self._consecutive_failures = 0
                kind = response.get("type")
                if kind == "result":
                    return self._accept_result(response)
                if kind == "shed":
                    self.stats["sheds"] += 1
                    hint = float(response.get("retry_after", 0.0))
                    last_error = ServiceUnavailable(
                        f"request shed ({response.get('reason')}); "
                        f"retry after {hint:.3f}s",
                        retry_after=hint,
                        reason=str(response.get("reason", "")))
                else:
                    raise ServiceError(
                        f"server rejected request: "
                        f"{response.get('error_type', kind)}: "
                        f"{response.get('message', '')}")
            if attempt >= self.retry.max_attempts:
                break
            delay = max(self.retry.delay(attempt, self._rng), hint)
            if deadline_at is not None and \
                    time.monotonic() + delay >= deadline_at:
                raise DeadlineExceeded(
                    f"deadline would expire during backoff "
                    f"(attempt {attempt}/{self.retry.max_attempts}) "
                    f"after: {last_error}") from last_error
            self.stats["retries"] += 1
            time.sleep(delay)
        if isinstance(last_error, ServiceUnavailable):
            raise last_error
        raise ServiceError(
            f"request failed after {self.retry.max_attempts} attempts: "
            f"{last_error}") from last_error

    def _accept_result(self, response: dict):
        if response.get("coalesced"):
            self.stats["coalesced"] += 1
        if response.get("journal_hit"):
            self.stats["journal_hits"] += 1
        if response.get("degraded"):
            self.stats["degraded_responses"] += 1
        return decode_result(response)

    def submit_many(self, cells: Sequence,
                    deadline: Optional[float] = None) -> List:
        """Submit cells sequentially, returning results in order."""
        return [self.submit(cell, deadline=deadline) for cell in cells]

    def health(self, deadline: Optional[float] = 5.0) -> dict:
        """The server's health report (one attempt, no retries)."""
        deadline_at = (time.monotonic() + deadline
                       if deadline is not None else None)
        try:
            response = self._roundtrip({"type": "health"}, deadline_at)
        except (ConnectionError, OSError, ProtocolError) as exc:
            self.close()
            raise ServiceError(
                f"health probe of {self.host}:{self.port} failed: "
                f"{exc}") from exc
        if response.get("type") != "health":
            raise ServiceError(
                f"unexpected health response type "
                f"{response.get('type')!r}")
        return response


def submit_sweep(cells: Sequence, host: str, port: int,
                 tenant: str = "default",
                 deadline: Optional[float] = None,
                 retry: RetryPolicy = RetryPolicy(),
                 jitter_seed: int = 0) -> List:
    """Submit a whole grid through one client; results in grid order.

    The served counterpart of :func:`~repro.runtime.run_sweep`: by the
    service's robustness contract the returned
    :class:`~repro.runtime.CellResult` list is bit-identical to an
    in-process ``run_sweep`` of the same cells — the property
    ``tests/test_service.py`` pins under chaos.
    """
    with ServiceClient(host, port, tenant=tenant, deadline=deadline,
                       retry=retry, jitter_seed=jitter_seed) as client:
        return client.submit_many(cells)
