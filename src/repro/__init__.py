"""repro — noise-adaptive compiler mappings for NISQ computers.

A from-scratch reproduction of Murali et al., "Noise-Adaptive Compiler
Mappings for Noisy Intermediate-Scale Quantum Computers" (ASPLOS 2019):
a quantum IR, benchmark programs, a calibrated machine model, a
branch-and-bound constraint optimizer, the paper's optimal and heuristic
mapping variants, a noisy Monte-Carlo executor, and harnesses for every
figure and table in the evaluation.

Quickstart::

    from repro import (CompilerOptions, compile_circuit,
                       default_ibmq16_calibration, execute)
    from repro.programs import build_benchmark, expected_output

    cal = default_ibmq16_calibration()
    program = compile_circuit(build_benchmark("BV4"), cal,
                              CompilerOptions.r_smt_star())
    result = execute(program, cal, trials=1024,
                     expected=expected_output("BV4"))
    print(program.summary(), "->", result.success_rate)
"""

from repro.backend import (
    Backend,
    get_backend,
    register_backend,
    register_engine,
    registered_backends,
    registered_engines,
)
from repro.compiler import CompiledProgram, CompilerOptions, compile_circuit
from repro.exceptions import ReproError
from repro.hardware import (
    Calibration,
    CalibrationGenerator,
    GridTopology,
    default_ibmq16_calibration,
    ibmq16_topology,
)
from repro.ir import Circuit, Gate, circuit_to_qasm, parse_scaffir
from repro.simulator import ExecutionResult, execute

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "Calibration",
    "CalibrationGenerator",
    "Circuit",
    "CompiledProgram",
    "CompilerOptions",
    "ExecutionResult",
    "Gate",
    "GridTopology",
    "ReproError",
    "__version__",
    "circuit_to_qasm",
    "compile_circuit",
    "default_ibmq16_calibration",
    "execute",
    "get_backend",
    "ibmq16_topology",
    "parse_scaffir",
    "register_backend",
    "register_engine",
    "registered_backends",
    "registered_engines",
]
