"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Invalid circuit construction or manipulation."""


class QasmError(ReproError):
    """Malformed OpenQASM input or unsupported construct."""


class ScaffIRError(ReproError):
    """Malformed ScaffIR program text."""


class TopologyError(ReproError):
    """Invalid hardware topology or qubit reference."""


class BackendError(TopologyError):
    """Unknown or misconfigured backend target.

    Subclasses :class:`TopologyError` because the backend registry
    subsumes the old device registry: callers that caught
    ``TopologyError`` on an unknown device name keep working.
    """


class CalibrationError(ReproError):
    """Missing or inconsistent calibration data."""


class SolverError(ReproError):
    """Constraint-model construction or solving failure."""


class InfeasibleError(SolverError):
    """The constraint model admits no solution."""


class CompilationError(ReproError):
    """The compiler could not produce a valid executable."""


class MappingError(CompilationError):
    """No legal qubit mapping exists (e.g. program larger than machine)."""


class SchedulingError(CompilationError):
    """Gate scheduling failed (e.g. coherence deadline violated)."""


class SweepError(ReproError):
    """Sweep-runtime execution failure."""


class CellExecutionError(SweepError):
    """One or more sweep cells failed under ``strict=True``.

    Raised by :func:`repro.runtime.run_sweep` when strict mode is on
    and the parallel path collected cell failures; the message carries
    the sweep's failure report (per-cell exception type, message, and
    captured traceback).
    """


class ServiceError(ReproError):
    """Compile-service (``repro serve``) failure."""


class ProtocolError(ServiceError):
    """Malformed or truncated wire message (:mod:`repro.service.protocol`).

    Raised on oversized frames, invalid JSON payloads, and connections
    closed mid-message. The client treats it as a transport failure:
    the request is resubmitted (idempotent by cell fingerprint), never
    half-trusted.
    """


class ServiceUnavailable(ServiceError):
    """The service shed the request (structured, retryable).

    Carries the server's ``Retry-After`` hint and shed reason
    (``"queue-full"``, ``"tenant-cap"``, ``"draining"``). The client's
    backoff loop honors the hint; this type only escapes to callers
    once the retry budget or deadline is exhausted.
    """

    def __init__(self, message: str, retry_after: float = 0.0,
                 reason: str = "") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


class DeadlineExceeded(ServiceError):
    """A client request ran past its per-request deadline."""


class CircuitOpen(ServiceError):
    """The client's circuit breaker is open.

    Tripped after consecutive transport failures; submissions fail
    fast (no connection attempt) until the cooldown elapses.
    """


class FaultInjected(ReproError):
    """An injected fault fired (:mod:`repro.runtime.faults`).

    Only ever raised when the fault-injection harness is armed via the
    ``REPRO_FAULTS`` environment variable — production sweeps never see
    this type.
    """


class SimulationError(ReproError):
    """Noisy-executor failure."""


class SimulationCapacityError(SimulationError):
    """The program exceeds the engine's practical capacity.

    Raised by the dense-statevector engines when ``2**n_qubits``
    amplitudes would exceed the array backend's
    :meth:`~repro.simulator.xp.ArrayBackend.amplitude_budget` —
    a clear refusal instead of an out-of-memory allocation. The
    message suggests ``--engine stabilizer`` for Clifford circuits.
    """


class MitigationError(ReproError):
    """Invalid error-mitigation configuration or input."""
