"""The :class:`Circuit` container — the IR every compiler pass consumes.

A circuit is an ordered list of :class:`~repro.ir.gates.Gate` objects over
``n_qubits`` program qubits and ``n_cbits`` classical bits. Program order
defines data dependencies (two operations sharing a qubit are ordered);
the dependency DAG itself lives in :mod:`repro.ir.dag`.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import CircuitError
from repro.ir.gates import Gate, inverse_gate


class Circuit:
    """An ordered quantum program over a fixed register of qubits.

    Args:
        n_qubits: Number of program qubits.
        n_cbits: Number of classical bits; defaults to ``n_qubits``.
        name: Optional human-readable benchmark name.
    """

    def __init__(self, n_qubits: int, n_cbits: Optional[int] = None,
                 name: str = "circuit") -> None:
        if n_qubits <= 0:
            raise CircuitError("circuit needs at least one qubit")
        self.n_qubits = n_qubits
        self.n_cbits = n_qubits if n_cbits is None else n_cbits
        if self.n_cbits < 0:
            raise CircuitError("negative classical register size")
        self.name = name
        self._gates: List[Gate] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gates in program order (read-only view)."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, idx: int) -> Gate:
        return self._gates[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (self.n_qubits == other.n_qubits
                and self.n_cbits == other.n_cbits
                and self._gates == other._gates)

    def __repr__(self) -> str:
        return (f"Circuit(name={self.name!r}, n_qubits={self.n_qubits}, "
                f"gates={len(self._gates)})")

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a gate, validating its qubit/cbit indices."""
        for q in gate.qubits:
            if q >= self.n_qubits:
                raise CircuitError(
                    f"gate {gate} references qubit {q} but circuit has "
                    f"{self.n_qubits} qubits")
        if gate.cbit is not None and gate.cbit >= self.n_cbits:
            raise CircuitError(
                f"gate {gate} references cbit {gate.cbit} but circuit has "
                f"{self.n_cbits} cbits")
        self._gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, param: Optional[float] = None,
            cbit: Optional[int] = None) -> "Circuit":
        """Append an operation by name; returns ``self`` for chaining."""
        return self.append(Gate(name, tuple(qubits), param=param, cbit=cbit))

    def h(self, q: int) -> "Circuit":
        return self.add("h", q)

    def x(self, q: int) -> "Circuit":
        return self.add("x", q)

    def y(self, q: int) -> "Circuit":
        return self.add("y", q)

    def z(self, q: int) -> "Circuit":
        return self.add("z", q)

    def s(self, q: int) -> "Circuit":
        return self.add("s", q)

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", q)

    def t(self, q: int) -> "Circuit":
        return self.add("t", q)

    def tdg(self, q: int) -> "Circuit":
        return self.add("tdg", q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", q, param=theta)

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", q, param=theta)

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", q, param=theta)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", control, target)

    def cz(self, a: int, b: int) -> "Circuit":
        return self.add("cz", a, b)

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", a, b)

    def measure(self, q: int, cbit: Optional[int] = None) -> "Circuit":
        return self.add("measure", q, cbit=q if cbit is None else cbit)

    def measure_all(self) -> "Circuit":
        """Measure every qubit into the classical bit of the same index."""
        if self.n_cbits < self.n_qubits:
            raise CircuitError("classical register too small for measure_all")
        for q in range(self.n_qubits):
            self.measure(q)
        return self

    def barrier(self, *qubits: int) -> "Circuit":
        """Append a barrier over *qubits* (all qubits when omitted)."""
        qs = qubits if qubits else tuple(range(self.n_qubits))
        return self.add("barrier", *qs)

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for gate in gates:
            self.append(gate)
        return self

    # ------------------------------------------------------------------
    # Derived views and statistics
    # ------------------------------------------------------------------
    @property
    def cnots(self) -> List[Gate]:
        """All CNOT gates in program order."""
        return [g for g in self._gates if g.is_cnot]

    @property
    def measurements(self) -> List[Gate]:
        """All measurement operations in program order."""
        return [g for g in self._gates if g.is_measure]

    def count_ops(self) -> Dict[str, int]:
        """Histogram of operation names."""
        return dict(Counter(g.name for g in self._gates))

    def gate_count(self, include_barriers: bool = False) -> int:
        """Total operation count (barriers excluded by default)."""
        if include_barriers:
            return len(self._gates)
        return sum(1 for g in self._gates if g.name != "barrier")

    def cnot_count(self) -> int:
        """Number of CNOT gates."""
        return sum(1 for g in self._gates if g.is_cnot)

    def used_qubits(self) -> List[int]:
        """Sorted list of qubit indices touched by any operation."""
        used = set()
        for g in self._gates:
            used.update(g.qubits)
        return sorted(used)

    def interaction_graph(self) -> Dict[Tuple[int, int], int]:
        """CNOT interaction multigraph as {(min_q, max_q): multiplicity}.

        This is the "program graph" of the paper's §5: one node per qubit,
        one weighted edge per interacting pair.
        """
        weights: Counter = Counter()
        for g in self._gates:
            if g.is_cnot:
                a, b = g.qubits
                weights[(min(a, b), max(a, b))] += 1
        return dict(weights)

    def fingerprint(self) -> str:
        """Stable content hash of the program.

        Two circuits with the same register sizes and the same gate
        sequence (names, qubits, parameters, cbits) share a
        fingerprint regardless of ``name`` or object identity; the
        sweep runtime's compile cache keys on this.
        """
        hasher = hashlib.sha256()
        hasher.update(f"{self.n_qubits},{self.n_cbits};".encode())
        for g in self._gates:
            param = "" if g.param is None else repr(g.param)
            cbit = "" if g.cbit is None else str(g.cbit)
            hasher.update(
                f"{g.name}:{','.join(map(str, g.qubits))}"
                f":{param}:{cbit};".encode())
        return hasher.hexdigest()

    def qubit_degrees(self) -> Dict[int, int]:
        """Number of CNOTs each qubit participates in (GreedyV* ordering)."""
        degree: Counter = Counter({q: 0 for q in range(self.n_qubits)})
        for g in self._gates:
            if g.is_cnot:
                for q in g.qubits:
                    degree[q] += 1
        return dict(degree)

    def depth(self) -> int:
        """Circuit depth counting each non-barrier op as one layer slot."""
        level: Dict[int, int] = {}
        depth = 0
        for g in self._gates:
            if g.name == "barrier":
                if g.qubits:
                    top = max(level.get(q, 0) for q in g.qubits)
                    for q in g.qubits:
                        level[q] = top
                continue
            start = max((level.get(q, 0) for q in g.qubits), default=0)
            for q in g.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep-enough copy (gates are immutable)."""
        out = Circuit(self.n_qubits, self.n_cbits,
                      name=self.name if name is None else name)
        out._gates = list(self._gates)
        return out

    def inverse(self) -> "Circuit":
        """Reversed circuit with each unitary gate inverted.

        Measurements and barriers are not invertible and must be absent.
        """
        out = Circuit(self.n_qubits, self.n_cbits, name=f"{self.name}_inv")
        for gate in reversed(self._gates):
            if gate.name == "barrier":
                continue
            out.append(inverse_gate(gate))
        return out

    def without_measurements(self) -> "Circuit":
        """Copy of the circuit with measurements and barriers removed."""
        out = Circuit(self.n_qubits, self.n_cbits, name=self.name)
        out._gates = [g for g in self._gates
                      if not g.is_measure and g.name != "barrier"]
        return out

    def remap_qubits(self, mapping: Dict[int, int],
                     n_qubits: Optional[int] = None) -> "Circuit":
        """Rename qubits through *mapping* (program → new index).

        Args:
            mapping: Total map over every used qubit.
            n_qubits: Size of the new register; defaults to
                ``max(mapping.values()) + 1``.
        """
        if n_qubits is None:
            n_qubits = max(mapping.values()) + 1
        out = Circuit(n_qubits, max(self.n_cbits, 1), name=self.name)
        for gate in self._gates:
            out.append(gate.remap(mapping))
        return out
