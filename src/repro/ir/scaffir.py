"""ScaffIR — a small textual IR standing in for ScaffCC's LLVM IR.

The paper's toolflow starts from the LLVM IR that ScaffCC produces for a
Scaffold program: a flat list of decomposed gates over named qubit
registers, with data dependencies implied by program order. ScaffIR is a
minimal, human-writable format carrying the same information:

    // Bernstein-Vazirani on 4 qubits
    qubits 4
    cbits 4
    h q0
    h q3
    x q3
    cx q0, q3
    measure q0 -> c0

Lines are ``<op> [ (param) ] q<i>[, q<j>]`` plus ``measure qi -> cj``,
``qubits N``, ``cbits N``, ``barrier``, and ``//`` comments.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.exceptions import ScaffIRError
from repro.ir.circuit import Circuit
from repro.ir.gates import PARAMETRIC_GATES, Gate
from repro.ir.qasm import _eval_param

_QUBITS_RE = re.compile(r"^qubits\s+(\d+)$")
_CBITS_RE = re.compile(r"^cbits\s+(\d+)$")
_MEASURE_RE = re.compile(r"^measure\s+q(\d+)\s*->\s*c(\d+)$")
_GATE_RE = re.compile(r"^(\w+)\s*(?:\(([^)]*)\))?\s*(.*)$")
_QUBIT_RE = re.compile(r"^q(\d+)$")


def parse_scaffir(text: str, name: str = "scaffir") -> Circuit:
    """Parse ScaffIR text into a :class:`Circuit`.

    Raises:
        ScaffIRError: On malformed input.
    """
    n_qubits: Optional[int] = None
    n_cbits: Optional[int] = None
    gates: List[Gate] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = re.sub(r"//.*$", "", raw).strip()
        if not line:
            continue
        m = _QUBITS_RE.match(line)
        if m:
            if n_qubits is not None:
                raise ScaffIRError(f"line {lineno}: duplicate qubits decl")
            n_qubits = int(m.group(1))
            continue
        m = _CBITS_RE.match(line)
        if m:
            n_cbits = int(m.group(1))
            continue
        if n_qubits is None:
            raise ScaffIRError(f"line {lineno}: gate before 'qubits N'")
        m = _MEASURE_RE.match(line)
        if m:
            gates.append(Gate("measure", (int(m.group(1)),),
                              cbit=int(m.group(2))))
            continue
        gates.append(_parse_gate_line(line, lineno))

    if n_qubits is None:
        raise ScaffIRError("missing 'qubits N' declaration")
    circuit = Circuit(n_qubits, n_cbits, name=name)
    try:
        for gate in gates:
            circuit.append(gate)
    except Exception as exc:
        raise ScaffIRError(str(exc)) from exc
    return circuit


def _parse_gate_line(line: str, lineno: int) -> Gate:
    m = _GATE_RE.match(line)
    if not m:
        raise ScaffIRError(f"line {lineno}: cannot parse {line!r}")
    op, param_text, args_text = m.group(1).lower(), m.group(2), m.group(3)
    qubits = []
    if args_text.strip():
        for token in args_text.split(","):
            qm = _QUBIT_RE.match(token.strip())
            if not qm:
                raise ScaffIRError(
                    f"line {lineno}: bad qubit token {token.strip()!r}")
            qubits.append(int(qm.group(1)))
    param = None
    if param_text is not None:
        if op not in PARAMETRIC_GATES:
            raise ScaffIRError(f"line {lineno}: {op} takes no parameter")
        try:
            param = _eval_param(param_text)
        except Exception as exc:
            raise ScaffIRError(f"line {lineno}: {exc}") from exc
    try:
        return Gate(op, tuple(qubits), param=param)
    except Exception as exc:
        raise ScaffIRError(f"line {lineno}: {exc}") from exc


def emit_scaffir(circuit: Circuit) -> str:
    """Serialize a circuit back to ScaffIR text (round-trips with parse)."""
    lines = [f"// {circuit.name}",
             f"qubits {circuit.n_qubits}",
             f"cbits {circuit.n_cbits}"]
    for gate in circuit.gates:
        if gate.is_measure:
            lines.append(f"measure q{gate.qubits[0]} -> c{gate.cbit}")
        elif gate.param is not None:
            args = ", ".join(f"q{q}" for q in gate.qubits)
            lines.append(f"{gate.name}({gate.param!r}) {args}")
        else:
            args = ", ".join(f"q{q}" for q in gate.qubits)
            lines.append(f"{gate.name} {args}".rstrip())
    return "\n".join(lines) + "\n"
