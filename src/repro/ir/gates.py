"""Gate definitions for the quantum IR.

The gate set mirrors what ScaffCC emits after decomposition for the IBMQ
targets used in the paper: the single-qubit Clifford+T set plus arbitrary
Z-rotations, the two-qubit CNOT, SWAP (a macro expanded by the compiler
into three CNOTs), measurement, and barriers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Tuple

from repro.exceptions import CircuitError

#: Names of single-qubit unitary gates understood by the IR.
SINGLE_QUBIT_GATES = frozenset(
    {"id", "h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz"}
)

#: Names of two-qubit gates understood by the IR.
TWO_QUBIT_GATES = frozenset({"cx", "swap", "cz"})

#: Gates that take one real rotation parameter.
PARAMETRIC_GATES = frozenset({"rx", "ry", "rz"})

#: Non-unitary / pseudo operations.
NON_UNITARY_OPS = frozenset({"measure", "barrier", "reset"})

#: All operation names the IR accepts.
ALL_OPERATIONS = SINGLE_QUBIT_GATES | TWO_QUBIT_GATES | NON_UNITARY_OPS

#: The universal set sampled by the paper's synthetic benchmark generator.
RANDOM_BENCHMARK_GATE_SET = ("h", "x", "y", "z", "s", "t", "cx")


@dataclass(frozen=True)
class Gate:
    """One operation in a quantum program.

    Attributes:
        name: Lower-case operation name (see :data:`ALL_OPERATIONS`).
        qubits: Program-qubit indices the operation acts on. For ``cx``
            the order is ``(control, target)``.
        param: Rotation angle in radians for parametric gates.
        cbit: Classical bit index receiving the result of a ``measure``.
    """

    name: str
    qubits: Tuple[int, ...]
    param: Optional[float] = None
    cbit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.name not in ALL_OPERATIONS:
            raise CircuitError(f"unknown operation {self.name!r}")
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubit in {self.name}{self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"negative qubit index in {self.name}{self.qubits}")
        if self.name in SINGLE_QUBIT_GATES and len(self.qubits) != 1:
            raise CircuitError(f"{self.name} takes 1 qubit, got {self.qubits}")
        if self.name in TWO_QUBIT_GATES and len(self.qubits) != 2:
            raise CircuitError(f"{self.name} takes 2 qubits, got {self.qubits}")
        if self.name in PARAMETRIC_GATES and self.param is None:
            raise CircuitError(f"{self.name} requires a rotation parameter")
        if self.name not in PARAMETRIC_GATES and self.param is not None:
            raise CircuitError(f"{self.name} takes no parameter")
        if self.name == "measure":
            if len(self.qubits) != 1:
                raise CircuitError("measure takes exactly 1 qubit")
            if self.cbit is None or self.cbit < 0:
                raise CircuitError("measure requires a non-negative cbit")
        elif self.cbit is not None:
            raise CircuitError(f"{self.name} takes no classical bit")
        if self.name == "reset" and len(self.qubits) != 1:
            raise CircuitError("reset takes exactly 1 qubit")

    @property
    def is_unitary(self) -> bool:
        """Whether the operation is a unitary gate."""
        return self.name not in NON_UNITARY_OPS

    @property
    def is_two_qubit(self) -> bool:
        """Whether the operation acts on two qubits."""
        return self.name in TWO_QUBIT_GATES

    @property
    def is_cnot(self) -> bool:
        """Whether the operation is a CNOT."""
        return self.name == "cx"

    @property
    def is_measure(self) -> bool:
        """Whether the operation is a measurement."""
        return self.name == "measure"

    @property
    def control(self) -> int:
        """Control qubit of a CNOT."""
        if self.name != "cx":
            raise CircuitError(f"{self.name} has no control qubit")
        return self.qubits[0]

    @property
    def target(self) -> int:
        """Target qubit of a CNOT."""
        if self.name != "cx":
            raise CircuitError(f"{self.name} has no target qubit")
        return self.qubits[1]

    def remap(self, mapping) -> "Gate":
        """Return a copy of the gate with qubits renamed through *mapping*.

        Args:
            mapping: A dict-like or callable from old index to new index.
        """
        if callable(mapping):
            new_qubits = tuple(mapping(q) for q in self.qubits)
        else:
            new_qubits = tuple(mapping[q] for q in self.qubits)
        return Gate(self.name, new_qubits, param=self.param, cbit=self.cbit)

    def __str__(self) -> str:
        args = ", ".join(f"q{q}" for q in self.qubits)
        if self.param is not None:
            return f"{self.name}({self.param:g}) {args}"
        if self.cbit is not None:
            return f"{self.name} {args} -> c{self.cbit}"
        return f"{self.name} {args}"


def inverse_gate(gate: Gate) -> Gate:
    """Return the inverse of a unitary gate.

    Used by the QFT round-trip benchmark and by circuit inversion.

    Raises:
        CircuitError: If the gate is not unitary.
    """
    if not gate.is_unitary:
        raise CircuitError(f"cannot invert non-unitary op {gate.name}")
    inverses = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
    if gate.name in inverses:
        return Gate(inverses[gate.name], gate.qubits)
    if gate.name in PARAMETRIC_GATES:
        assert gate.param is not None
        return Gate(gate.name, gate.qubits, param=-gate.param)
    # h, x, y, z, id, cx, cz, swap are self-inverse.
    return gate


@lru_cache(maxsize=4096)
def gate_matrix(name: str, param: Optional[float] = None):
    """Return the unitary matrix of a 1- or 2-qubit gate as nested tuples.

    The simulator converts these to numpy arrays; keeping this module free
    of numpy keeps the IR importable anywhere. Results are cached per
    ``(name, param)`` and returned as (immutable) tuples so the shared
    cache entries cannot be corrupted by callers.
    """
    return tuple(tuple(row) for row in _gate_matrix_rows(name, param))


def _gate_matrix_rows(name: str, param: Optional[float]):
    i = 1j
    inv_sqrt2 = 1.0 / math.sqrt(2.0)
    if name == "id":
        return [[1, 0], [0, 1]]
    if name == "h":
        return [[inv_sqrt2, inv_sqrt2], [inv_sqrt2, -inv_sqrt2]]
    if name == "x":
        return [[0, 1], [1, 0]]
    if name == "y":
        return [[0, -i], [i, 0]]
    if name == "z":
        return [[1, 0], [0, -1]]
    if name == "s":
        return [[1, 0], [0, i]]
    if name == "sdg":
        return [[1, 0], [0, -i]]
    if name == "t":
        return [[1, 0], [0, (1 + i) * inv_sqrt2]]
    if name == "tdg":
        return [[1, 0], [0, (1 - i) * inv_sqrt2]]
    if name in PARAMETRIC_GATES:
        if param is None:
            raise CircuitError(f"{name} requires a parameter")
        c, s = math.cos(param / 2.0), math.sin(param / 2.0)
        if name == "rx":
            return [[c, -i * s], [-i * s, c]]
        if name == "ry":
            return [[c, -s], [s, c]]
        if name == "rz":
            ph = math.e ** (-i * param / 2.0)
            return [[ph, 0], [0, ph.conjugate()]]
    if name == "cx":
        return [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
        ]
    if name == "cz":
        return [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 1, 0],
            [0, 0, 0, -1],
        ]
    if name == "swap":
        return [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ]
    raise CircuitError(f"no matrix for operation {name!r}")
