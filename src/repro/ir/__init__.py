"""Quantum intermediate representation: gates, circuits, DAGs, formats."""

from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG
from repro.ir.gates import (
    ALL_OPERATIONS,
    PARAMETRIC_GATES,
    RANDOM_BENCHMARK_GATE_SET,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Gate,
    gate_matrix,
    inverse_gate,
)
from repro.ir.qasm import circuit_to_qasm, qasm_to_circuit
from repro.ir.scaffir import emit_scaffir, parse_scaffir

__all__ = [
    "ALL_OPERATIONS",
    "Circuit",
    "DependencyDAG",
    "Gate",
    "PARAMETRIC_GATES",
    "RANDOM_BENCHMARK_GATE_SET",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "circuit_to_qasm",
    "emit_scaffir",
    "gate_matrix",
    "inverse_gate",
    "parse_scaffir",
    "qasm_to_circuit",
]
