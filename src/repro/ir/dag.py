"""Data-dependency DAG over the gates of a circuit.

The paper's scheduling constraint (Constraint 3) is expressed over the
dependency relation ``g2 > g1``: *g2* depends on *g1* when both touch a
common qubit and *g1* comes first in program order, with no intervening
gate on that qubit. This module materializes that relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate


@dataclass
class DependencyDAG:
    """Immediate data dependencies between gate indices of a circuit.

    Attributes:
        circuit: The source circuit.
        preds: ``preds[i]`` — indices of gates that gate *i* directly
            depends on.
        succs: ``succs[i]`` — indices of gates directly depending on *i*.
    """

    circuit: Circuit
    preds: List[Set[int]] = field(default_factory=list)
    succs: List[Set[int]] = field(default_factory=list)

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "DependencyDAG":
        """Build the DAG by chaining the last writer of each qubit."""
        n = len(circuit.gates)
        preds: List[Set[int]] = [set() for _ in range(n)]
        succs: List[Set[int]] = [set() for _ in range(n)]
        last_on_qubit: Dict[int, int] = {}
        for i, gate in enumerate(circuit.gates):
            for q in gate.qubits:
                j = last_on_qubit.get(q)
                if j is not None:
                    preds[i].add(j)
                    succs[j].add(i)
                last_on_qubit[q] = i
        return cls(circuit=circuit, preds=preds, succs=succs)

    def __len__(self) -> int:
        return len(self.preds)

    def gate(self, i: int) -> Gate:
        """The gate at DAG node *i*."""
        return self.circuit.gates[i]

    def roots(self) -> List[int]:
        """Gate indices with no dependencies."""
        return [i for i, p in enumerate(self.preds) if not p]

    def topological_order(self) -> List[int]:
        """A topological order of gate indices (program order works)."""
        return list(range(len(self.preds)))

    def is_topological(self, order: Sequence[int]) -> bool:
        """Check that *order* respects every dependency edge."""
        pos = {g: i for i, g in enumerate(order)}
        if len(pos) != len(self.preds):
            return False
        return all(pos[p] < pos[i]
                   for i, ps in enumerate(self.preds) for p in ps)

    def longest_path_length(self, weights: Sequence[float]) -> float:
        """Weighted critical-path length through the DAG.

        Args:
            weights: Per-gate duration (same indexing as the circuit).

        Returns:
            The maximum, over all dependency chains, of the sum of
            weights — a lower bound on any legal schedule's makespan.
        """
        if len(weights) != len(self.preds):
            raise CircuitError("weights length must equal gate count")
        finish = [0.0] * len(self.preds)
        for i in range(len(self.preds)):
            start = max((finish[p] for p in self.preds[i]), default=0.0)
            finish[i] = start + weights[i]
        return max(finish, default=0.0)

    def dependency_pairs(self) -> List[Tuple[int, int]]:
        """All immediate (pred, succ) edges."""
        return [(p, i) for i, ps in enumerate(self.preds) for p in sorted(ps)]

    def asap_levels(self) -> List[int]:
        """Unit-weight ASAP level of each gate (0-based)."""
        level = [0] * len(self.preds)
        for i in range(len(self.preds)):
            level[i] = max((level[p] + 1 for p in self.preds[i]), default=0)
        return level
