"""OpenQASM 2.0 emission and parsing.

The compiler's final deliverable, as in the paper, is OpenQASM 2.0 text
targeting the IBM machines. Only the subset the IR can represent is
supported (one quantum and one classical register, the IR gate set).
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

from repro.exceptions import QasmError
from repro.ir.circuit import Circuit
from repro.ir.gates import PARAMETRIC_GATES, Gate

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";'

_QREG_RE = re.compile(r"^qreg\s+(\w+)\s*\[\s*(\d+)\s*\]$")
_CREG_RE = re.compile(r"^creg\s+(\w+)\s*\[\s*(\d+)\s*\]$")
_ARG_RE = re.compile(r"^(\w+)\s*\[\s*(\d+)\s*\]$")
_GATE_RE = re.compile(r"^(\w+)\s*(?:\(([^)]*)\))?\s+(.+)$")
_MEASURE_RE = re.compile(r"^measure\s+(.+?)\s*->\s*(.+)$")


def circuit_to_qasm(circuit: Circuit, qreg: str = "q",
                    creg: str = "c") -> str:
    """Serialize *circuit* to OpenQASM 2.0 text.

    SWAP gates are emitted via the standard ``swap`` from qelib1.
    """
    lines: List[str] = [_HEADER,
                        f"qreg {qreg}[{circuit.n_qubits}];"]
    if circuit.n_cbits > 0:
        lines.append(f"creg {creg}[{circuit.n_cbits}];")
    for gate in circuit.gates:
        lines.append(_gate_to_qasm(gate, qreg, creg))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate, qreg: str, creg: str) -> str:
    args = ", ".join(f"{qreg}[{q}]" for q in gate.qubits)
    if gate.is_measure:
        return f"measure {qreg}[{gate.qubits[0]}] -> {creg}[{gate.cbit}];"
    if gate.name == "barrier":
        return f"barrier {args};"
    if gate.param is not None:
        return f"{gate.name}({gate.param!r}) {args};"
    return f"{gate.name} {args};"


def qasm_to_circuit(text: str, name: str = "qasm") -> Circuit:
    """Parse an OpenQASM 2.0 program (supported subset) into a circuit.

    Raises:
        QasmError: On malformed input or unsupported constructs.
    """
    statements = _split_statements(text)
    n_qubits: Optional[int] = None
    n_cbits = 0
    qreg_name = creg_name = None
    gates: List[Gate] = []

    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        m = _QREG_RE.match(stmt)
        if m:
            if qreg_name is not None:
                raise QasmError("multiple quantum registers not supported")
            qreg_name, n_qubits = m.group(1), int(m.group(2))
            continue
        m = _CREG_RE.match(stmt)
        if m:
            if creg_name is not None:
                raise QasmError("multiple classical registers not supported")
            creg_name, n_cbits = m.group(1), int(m.group(2))
            continue
        if n_qubits is None:
            raise QasmError(f"gate before qreg declaration: {stmt!r}")
        m = _MEASURE_RE.match(stmt)
        if m:
            q = _parse_arg(m.group(1), qreg_name, "quantum")
            c = _parse_arg(m.group(2), creg_name, "classical")
            gates.append(Gate("measure", (q,), cbit=c))
            continue
        gates.append(_parse_gate(stmt, qreg_name))

    if n_qubits is None:
        raise QasmError("no qreg declaration found")
    circuit = Circuit(n_qubits, n_cbits, name=name)
    for gate in gates:
        circuit.append(gate)
    return circuit


def _split_statements(text: str) -> List[str]:
    no_comments = re.sub(r"//[^\n]*", "", text)
    return [s.strip() for s in no_comments.split(";") if s.strip()]


def _parse_arg(token: str, reg_name: Optional[str], kind: str) -> int:
    m = _ARG_RE.match(token.strip())
    if not m:
        raise QasmError(f"cannot parse {kind} argument {token!r}")
    if reg_name is not None and m.group(1) != reg_name:
        raise QasmError(f"unknown {kind} register {m.group(1)!r}")
    return int(m.group(2))


def _parse_gate(stmt: str, qreg_name: Optional[str]) -> Gate:
    m = _GATE_RE.match(stmt)
    if not m:
        raise QasmError(f"cannot parse statement {stmt!r}")
    op, param_text, args_text = m.group(1), m.group(2), m.group(3)
    op = op.lower()
    qubits = tuple(_parse_arg(a, qreg_name, "quantum")
                   for a in args_text.split(","))
    param = None
    if param_text is not None:
        if op not in PARAMETRIC_GATES:
            raise QasmError(f"{op} does not take a parameter")
        param = _eval_param(param_text)
    try:
        return Gate(op, qubits, param=param)
    except Exception as exc:  # re-raise as a parse error with context
        raise QasmError(f"invalid gate {stmt!r}: {exc}") from exc


def _eval_param(text: str) -> float:
    """Evaluate a rotation-angle expression like ``pi/4`` or ``-0.5*pi``."""
    allowed = re.compile(r"^[\d\s.+\-*/()epi]*$")
    if not allowed.match(text):
        raise QasmError(f"unsupported parameter expression {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}},  # noqa: S307
                          {"pi": math.pi, "e": math.e}))
    except Exception as exc:
        raise QasmError(f"cannot evaluate parameter {text!r}") from exc
