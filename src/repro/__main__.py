"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # The reader of our stdout went away (e.g. `repro ... | head`).
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise a second time, and exit with the conventional
        # SIGPIPE status instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(128 + 13)
