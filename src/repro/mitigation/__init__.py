"""Error-mitigation subsystem: buy back reliability in post-processing.

The paper's compiler raises success probability by *mapping around*
noise; this layer raises it further by *correcting for* noise after
compilation, mitiq-style:

* :mod:`repro.mitigation.zne` — zero-noise extrapolation, amplifying
  noise either on the lowered execution trace (cheap: scaled copies of
  the flat error-site probabilities, no recompilation) or by unitary
  gate folding through a :class:`FoldingPass` registered in the
  compiler pipeline;
* :mod:`repro.mitigation.readout` — per-qubit confusion matrices from
  calibration readout fidelities, inverted (with regularization) on
  the measured distribution;
* :mod:`repro.mitigation.strategy` — the composable
  :class:`MitigationStrategy` protocol: strategies stack
  (``readout+zne``), declare their extra-execution cost, and ride the
  sweep runtime as a first-class :class:`~repro.runtime.SweepCell`
  axis whose scaled-noise executions share the compile/stage/trace
  caches.

Importing this package registers the ``"fold"`` pass with the compiler
pass registry.
"""

from repro.mitigation.readout import (
    ReadoutMitigator,
    ReadoutStrategy,
    confusion_matrix,
)
from repro.mitigation.strategy import (
    ComposedStrategy,
    MitigatedResult,
    MitigationContext,
    MitigationStrategy,
    strategy_from_spec,
)
from repro.mitigation.zne import (
    DEFAULT_SCALES,
    ZNE_AMPLIFIERS,
    ZNE_FITS,
    FoldingPass,
    ScaledNoiseModel,
    ZneStrategy,
    achieved_scale,
    extrapolate,
    fold_circuit,
    fold_physical,
    folded_pipeline,
    linear_extrapolate,
    richardson_extrapolate,
)

__all__ = [
    "ComposedStrategy",
    "DEFAULT_SCALES",
    "FoldingPass",
    "MitigatedResult",
    "MitigationContext",
    "MitigationStrategy",
    "ReadoutMitigator",
    "ReadoutStrategy",
    "ScaledNoiseModel",
    "ZNE_AMPLIFIERS",
    "ZNE_FITS",
    "ZneStrategy",
    "achieved_scale",
    "confusion_matrix",
    "extrapolate",
    "fold_circuit",
    "fold_physical",
    "folded_pipeline",
    "linear_extrapolate",
    "richardson_extrapolate",
    "strategy_from_spec",
]
