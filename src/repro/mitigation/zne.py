"""Zero-noise extrapolation (ZNE).

ZNE estimates the zero-noise value of an observable — here, a
benchmark's success probability — by *deliberately amplifying* the
device noise to several scale factors ``lambda >= 1``, measuring the
observable at each, and extrapolating the curve back to ``lambda = 0``
(Temme et al. 2017; the mitiq library popularized the software-level
recipe this module follows). Two noise amplifiers implement the same
scaling contract:

* **Trace-level scaling** (:class:`ScaledNoiseModel`, the default and
  the cheap path): every stochastic error probability the noise model
  reports — gate depolarizing channels, idle Pauli-twirl windows,
  optionally readout flips — is multiplied by ``lambda`` (clipped to
  1). The physical program is untouched, so the one compiled artifact
  and its lowered :class:`~repro.simulator.trace.ProgramTrace` are
  shared across every scale: a scaled trace is a
  :meth:`~repro.simulator.trace.ProgramTrace.rescaled` copy of the
  base trace's flat ``site_prob`` array, no recompilation and no
  re-lowering. ``ScaledNoiseModel`` provides a ``trace_key()`` so the
  scaled traces are first-class trace-cache citizens.
* **Unitary gate folding** (:class:`FoldingPass`, the hardware-faithful
  path): each unitary gate ``g`` in the physical program becomes
  ``g (g^dagger g)^k`` — an identity-preserving expansion that runs
  ``lambda``-times as many gates through the *unmodified* noise model,
  exactly what one would do on a real device that offers no noise
  knob. The pass slots into the standard compiler pipeline after the
  physical-program stages (it is registered via
  :func:`repro.compiler.register_pass` under the name ``"fold"``
  without touching ``compiler/pipeline.py``), so folded compilations
  reuse the expensive mapping prefix through the stage cache.

:class:`ZneStrategy` drives either amplifier over a scale schedule and
extrapolates with a linear, Richardson (polynomial through all points),
or exponential fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.compiler.options import CompilerOptions
from repro.compiler.pipeline import (
    Pass,
    PassManager,
    build_pipeline,
    register_pass,
)
from repro.compiler.swap_insert import PhysicalProgram, _asap_times
from repro.exceptions import MitigationError
from repro.hardware.calibration import Calibration
from repro.ir.circuit import Circuit
from repro.ir.gates import inverse_gate
from repro.mitigation.strategy import (
    MitigatedResult,
    MitigationContext,
    MitigationStrategy,
)
from repro.simulator.noise import IdleRates, NoiseModel, noise_content_key

#: Supported extrapolation fits.
ZNE_FITS = ("linear", "richardson", "exp")

#: Supported noise amplifiers.
ZNE_AMPLIFIERS = ("trace", "fold")

#: Default noise-scale schedule. Non-integer scales are exact under the
#: trace amplifier (probabilities scale continuously) and approximated
#: by partial folding under the fold amplifier.
DEFAULT_SCALES = (1.0, 1.5, 2.0)


# ----------------------------------------------------------------------
# Trace-level noise amplification
# ----------------------------------------------------------------------
class ScaledNoiseModel(NoiseModel):
    """A noise model whose error probabilities are *base*'s times *scale*.

    Only the probability accessors are overridden (never the per-trial
    ``sample_*`` hooks), so the batched engine lowers scaled traces
    directly — and because the scaling is a uniform multiplication of
    each error site's firing probability, a lowered scaled trace equals
    ``base_trace.rescaled(scale)`` array-for-array. ``trace_key()``
    makes the scaled lowerings cacheable per scale.

    Args:
        base: The model whose probabilities are amplified.
        scale: Non-negative multiplier (``1.0`` is the identity).
        scale_readout: Also amplify readout flip probabilities (off by
            default: folding on real hardware amplifies circuit noise
            only, and readout errors have their own mitigation).
    """

    def __init__(self, base: NoiseModel, scale: float,
                 scale_readout: bool = False) -> None:
        if scale < 0.0:
            raise MitigationError("noise scale must be non-negative")
        super().__init__(base.calibration, gate_errors=base.gate_errors,
                         decoherence=base.decoherence,
                         readout_errors=base.readout_errors,
                         crosstalk_factor=base.crosstalk_factor)
        self.base = base
        self.scale = scale
        self.scale_readout = scale_readout

    def gate_error_probability(self, gate, concurrent_neighbors: int = 0
                               ) -> float:
        p = self.base.gate_error_probability(
            gate, concurrent_neighbors=concurrent_neighbors)
        return min(p * self.scale, 1.0)

    def idle_rates(self, qubit: int, idle_slots: float) -> IdleRates:
        rates = self.base.idle_rates(qubit, idle_slots)
        factor = self.scale
        total = rates.total * factor
        if total > 1.0:  # renormalize components, keep the conditional
            factor *= 1.0 / total
        return IdleRates(p_x=rates.p_x * factor, p_y=rates.p_y * factor,
                         p_z=rates.p_z * factor)

    def readout_flip_probability(self, qubit: int, bit: int = 0) -> float:
        p = self.base.readout_flip_probability(qubit, bit)
        if not self.scale_readout:
            return p
        return min(p * self.scale, 1.0)

    def trace_key(self):
        """Content key extending the base model's (``None`` = uncacheable)."""
        base_key = noise_content_key(self.base)
        if base_key is None:
            return None
        return ("zne-scaled", self.scale, self.scale_readout, base_key)


# ----------------------------------------------------------------------
# Unitary gate folding
# ----------------------------------------------------------------------
def fold_circuit(circuit: Circuit, scale: float) -> Circuit:
    """Local unitary folding: each gate ``g`` becomes ``g (g^dagger g)^k``.

    The fold counts are chosen so the unitary gate count grows by
    ``scale`` as closely as integer folds allow: every gate receives
    ``floor((scale - 1) / 2)`` folds and the first few gates (in
    program order — deterministic) receive one extra to absorb the
    fractional remainder. Measurements and barriers pass through
    untouched. ``scale = 1`` reproduces the input gate sequence exactly
    (fingerprint-identical).

    Args:
        circuit: Program to fold (logical or physical — folding maps
            each gate onto its own qubits, so coupling constraints are
            preserved).
        scale: Target noise scale, ``>= 1``.

    Raises:
        MitigationError: If ``scale < 1``.
    """
    if scale < 1.0:
        raise MitigationError(
            f"fold scale must be >= 1 (got {scale}); noise can only be "
            f"amplified by inserting gates")
    unitary_count = sum(1 for g in circuit.gates if g.is_unitary)
    base_folds = int((scale - 1.0) / 2.0)
    remainder = (scale - 1.0) / 2.0 - base_folds
    extra = int(round(remainder * unitary_count))
    out = Circuit(circuit.n_qubits, circuit.n_cbits,
                  name=f"{circuit.name}@fold{scale:g}")
    seen = 0
    for gate in circuit.gates:
        out.append(gate)
        if not gate.is_unitary:
            continue
        folds = base_folds + (1 if seen < extra else 0)
        seen += 1
        for _ in range(folds):
            out.append(inverse_gate(gate))
            out.append(gate)
    return out


def achieved_scale(original: Circuit, folded: Circuit) -> float:
    """The gate-count ratio a folded circuit actually realizes."""
    base = sum(1 for g in original.gates if g.is_unitary)
    if base == 0:
        return 1.0
    return sum(1 for g in folded.gates if g.is_unitary) / base


def fold_physical(program: PhysicalProgram, scale: float,
                  calibration: Calibration) -> PhysicalProgram:
    """Fold a physical program and re-derive its ASAP gate times."""
    folded = fold_circuit(program.circuit, scale)
    return PhysicalProgram(circuit=folded,
                           times=_asap_times(folded, calibration),
                           swap_cnots=program.swap_cnots)


class FoldingPass(Pass):
    """Pipeline pass amplifying noise by unitary folding.

    A third-party pass: it lives outside ``repro.compiler`` and joins
    pipelines either explicitly (:func:`folded_pipeline`) or through
    the pass registry (``register_pass("fold", ...)``, done at module
    import). The fold scale is constructor state, surfaced via
    :meth:`config` so differently-scaled instances never alias in the
    stage cache.
    """

    name = "fold"
    produces = "physical"

    def __init__(self, scale: float = 3.0) -> None:
        if scale < 1.0:
            raise MitigationError("fold scale must be >= 1")
        self.scale = scale

    def config(self) -> str:
        return f"scale={self.scale!r}"

    def run(self, ctx) -> PhysicalProgram:
        return fold_physical(ctx.artifact("physical"), self.scale,
                             ctx.calibration)


def folded_pipeline(options: CompilerOptions, scale: float) -> PassManager:
    """The canonical pipeline with a :class:`FoldingPass` appended.

    The fold runs after the last physical-program stage (SWAP
    insertion, or peephole when enabled) and before reliability
    estimation, so a stage cache shared with unfolded compilations
    reuses the whole mapping/scheduling/lowering prefix and only the
    fold onward is recomputed per scale.
    """
    passes: List[Pass] = list(build_pipeline(options).passes)
    physical_stages = [i for i, p in enumerate(passes)
                       if p.produces == "physical"]
    passes.insert(physical_stages[-1] + 1, FoldingPass(scale))
    return PassManager(passes)


# Prove the registry extension point: the folding pass is available to
# `repro passes` and explicit pipeline edits without any change to
# repro/compiler/pipeline.py.
register_pass("fold", lambda options: FoldingPass())


# ----------------------------------------------------------------------
# Extrapolation fits
# ----------------------------------------------------------------------
def linear_extrapolate(scales: Sequence[float],
                       values: Sequence[float]) -> float:
    """Least-squares line through (scale, value), evaluated at 0."""
    slope, intercept = np.polyfit(np.asarray(scales, dtype=np.float64),
                                  np.asarray(values, dtype=np.float64), 1)
    return float(intercept)


def richardson_extrapolate(scales: Sequence[float],
                           values: Sequence[float]) -> float:
    """Polynomial through *all* points, evaluated at 0.

    Classic Richardson extrapolation: the unique degree-(n-1)
    interpolant through n points, written in Lagrange form at x = 0 so
    no polynomial coefficients are ever materialized:
    ``sum_i y_i * prod_{j != i} x_j / (x_j - x_i)``. Exact for any
    observable that is polynomial of degree < n in the noise scale.
    """
    total = 0.0
    for i, (x_i, y_i) in enumerate(zip(scales, values)):
        weight = 1.0
        for j, x_j in enumerate(scales):
            if j == i:
                continue
            if x_j == x_i:
                raise MitigationError(
                    f"duplicate noise scale {x_i} breaks Richardson "
                    f"extrapolation")
            weight *= x_j / (x_j - x_i)
        total += y_i * weight
    return total


def exp_extrapolate(scales: Sequence[float],
                    values: Sequence[float]) -> float:
    """Fit ``y = a * exp(-b * x)`` by a log-linear least squares.

    Matches the physically expected exponential decay of success with
    circuit noise. Falls back to the linear fit when any value is
    non-positive (the log is undefined there).
    """
    if any(v <= 0.0 for v in values):
        return linear_extrapolate(scales, values)
    slope, intercept = np.polyfit(
        np.asarray(scales, dtype=np.float64),
        np.log(np.asarray(values, dtype=np.float64)), 1)
    return float(math.exp(intercept))


def extrapolate(scales: Sequence[float], values: Sequence[float],
                fit: str) -> float:
    """Zero-noise estimate of (scales, values) under the named fit."""
    if len(scales) != len(values) or len(scales) < 2:
        raise MitigationError("extrapolation needs >= 2 (scale, value) "
                              "points")
    if fit == "linear":
        return linear_extrapolate(scales, values)
    if fit == "richardson":
        return richardson_extrapolate(scales, values)
    if fit == "exp":
        return exp_extrapolate(scales, values)
    raise MitigationError(f"unknown ZNE fit {fit!r} "
                          f"(known: {', '.join(ZNE_FITS)})")


# ----------------------------------------------------------------------
# The strategy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ZneStrategy(MitigationStrategy):
    """Zero-noise extrapolation over a scale schedule.

    Attributes:
        scales: Noise scale factors to measure at. ``1.0`` reuses the
            cell's baseline execution rather than re-running it.
        fit: ``"linear"`` (robust default), ``"richardson"`` (exact for
            polynomial decay, higher variance), or ``"exp"``.
        amplifier: ``"trace"`` (scale error-site probabilities on the
            shared lowered trace — no recompilation) or ``"fold"``
            (unitary gate folding through a re-run pipeline).
        scale_readout: Amplify readout errors too (trace amplifier
            only; folding cannot amplify readout noise).
    """

    scales: Tuple[float, ...] = DEFAULT_SCALES
    fit: str = "linear"
    amplifier: str = "trace"
    scale_readout: bool = False

    name = "zne"

    def __post_init__(self) -> None:
        if len(self.scales) < 2:
            raise MitigationError("ZNE needs at least two noise scales")
        if len(set(self.scales)) != len(self.scales):
            raise MitigationError("ZNE scales must be distinct")
        if any(s < 1.0 for s in self.scales):
            raise MitigationError("ZNE scales must be >= 1 (noise can "
                                  "only be amplified)")
        if self.fit not in ZNE_FITS:
            raise MitigationError(f"unknown ZNE fit {self.fit!r}")
        if self.amplifier not in ZNE_AMPLIFIERS:
            raise MitigationError(
                f"unknown ZNE amplifier {self.amplifier!r} "
                f"(known: {', '.join(ZNE_AMPLIFIERS)})")
        if self.scale_readout and self.amplifier == "fold":
            raise MitigationError("gate folding cannot amplify readout "
                                  "noise; use the trace amplifier")

    def fingerprint(self) -> str:
        return (f"zne(scales={','.join(f'{s:g}' for s in self.scales)};"
                f"fit={self.fit};amplifier={self.amplifier};"
                f"readout={self.scale_readout})")

    def extra_executions(self) -> int:
        """One execution per scale, minus the reused baseline."""
        return len([s for s in self.scales if s != 1.0])

    def mitigate(self, ctx: MitigationContext) -> MitigatedResult:
        if self.scale_readout and ctx.transforms:
            raise MitigationError(
                "scale_readout cannot be combined with distribution "
                "transforms (e.g. a readout+zne stack): the transforms "
                "are built for the unscaled readout channel, so "
                "applying them to readout-amplified executions would "
                "leave a scale-dependent residual that biases the "
                "extrapolation")
        points: List[Tuple[float, float]] = []
        executions = 0
        for index, scale in enumerate(self.scales):
            if scale == 1.0:
                result = ctx.baseline
            else:
                result = self._execute_scaled(ctx, scale, index)
                executions += 1
            points.append((scale, ctx.success_of(result)))
        estimate = extrapolate([p[0] for p in points],
                               [p[1] for p in points], self.fit)
        return MitigatedResult(
            strategy=self.fingerprint(),
            raw_success=ctx.raw_success(),
            mitigated_success=min(max(estimate, 0.0), 1.0),
            executions=executions,
            points=tuple(points))

    # ------------------------------------------------------------------
    def _execute_scaled(self, ctx: MitigationContext, scale: float,
                        index: int):
        if self.amplifier == "trace":
            scaled = ScaledNoiseModel(ctx.noise, scale,
                                      scale_readout=self.scale_readout)
            self._prime_trace(ctx, scaled)
            return ctx.execute(noise_model=scaled,
                               seed=ctx.scale_seed(index))
        program = folded_pipeline(ctx.options, scale).run(
            ctx.circuit, ctx.calibration, ctx.options, tables=ctx.tables,
            stage_cache=ctx.stage_cache)
        return ctx.execute(compiled=program, seed=ctx.scale_seed(index))

    def _prime_trace(self, ctx: MitigationContext,
                     scaled: ScaledNoiseModel) -> None:
        """Seed the trace cache with a cheap rescale of the base trace.

        Without this, the first execution per scale would re-lower the
        program from scratch (statevector ideal-distribution pass
        included); with it, the scaled trace is a numpy-array copy of
        the base trace. Later executions at the same scale hit the
        cache directly.
        """
        cache = ctx.trace_cache
        if cache is None or ctx.engine != "batched":
            return
        if scaled.trace_key() is None:
            return  # uncacheable base model: nothing to prime
        if cache.get(ctx.compiled, scaled, ctx.calibration) is not None:
            return
        base = ctx.base_trace()
        if base is None:
            return
        cache.put(ctx.compiled, scaled, ctx.calibration,
                  base.rescaled(scaled.scale,
                                scale_readout=scaled.scale_readout))
