"""The composable error-mitigation strategy protocol.

A :class:`MitigationStrategy` turns one *baseline* noisy execution of a
compiled program into a mitigated estimate of its success probability,
possibly paying for extra circuit executions (which it declares up
front via :meth:`~MitigationStrategy.extra_executions`). Strategies are
small frozen dataclasses — picklable, hashable, safe to place on
:class:`~repro.runtime.sweep.SweepCell` grids that cross a process
pool.

Two kinds of strategy compose:

* **estimators** run executions and produce the mitigated number —
  zero-noise extrapolation (:class:`~repro.mitigation.zne.ZneStrategy`)
  is the canonical one;
* **distribution transforms** rewrite a measured outcome distribution
  in place — readout-confusion inversion
  (:class:`~repro.mitigation.readout.ReadoutStrategy`) is the
  canonical one. Every strategy has a :meth:`~MitigationStrategy.transform`
  (identity by default).

:class:`ComposedStrategy` stacks them: all leading members contribute
their transforms to the execution context and the **last** member acts
as the estimator, so ``ComposedStrategy([readout, zne])`` applies
readout inversion to *every* noise-scaled distribution before the ZNE
fit — the standard "readout-corrected ZNE" recipe.

All executions run through the :class:`MitigationContext`, which
carries the cell's compiled artifact, caches and seeds; scaled-noise
and folded executions therefore share the sweep runtime's compile,
stage, and trace caches exactly like ordinary cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.compiler.compile import CompiledProgram
from repro.compiler.options import CompilerOptions
from repro.exceptions import MitigationError
from repro.hardware.calibration import Calibration
from repro.hardware.reliability import ReliabilityTables
from repro.ir.circuit import Circuit
from repro.simulator import (
    CompactProgram,
    ExecutionResult,
    NoiseModel,
    ProgramTrace,
    execute,
)

#: A distribution transform: (ctx, {outcome: probability}) -> same shape.
DistributionTransform = Callable[["MitigationContext", Dict[str, float]],
                                 Dict[str, float]]

#: Seed stride between a cell's baseline execution and its scaled
#: executions (a large odd constant so derived seeds never collide with
#: the dense seed grids the harnesses sweep).
_SEED_STRIDE = 7919


@dataclass
class MitigatedResult:
    """Outcome of applying one strategy to one execution cell.

    Attributes:
        strategy: The strategy's :meth:`~MitigationStrategy.fingerprint`.
        raw_success: Unmitigated success probability of the baseline.
        mitigated_success: The strategy's estimate, clipped to [0, 1].
        executions: Extra circuit executions performed beyond the
            baseline (matches the strategy's declared cost).
        points: ZNE-style (noise scale, measured success) samples, when
            the strategy swept scales; empty otherwise.
    """

    strategy: str
    raw_success: float
    mitigated_success: float
    executions: int = 0
    points: Tuple[Tuple[float, float], ...] = ()

    @property
    def gain(self) -> float:
        """Mitigated minus raw success (positive = mitigation helped)."""
        return self.mitigated_success - self.raw_success


@dataclass
class MitigationContext:
    """Everything a strategy needs to run and evaluate executions.

    Built by the sweep runtime (one per mitigated cell) or by hand for
    standalone use; only ``compiled``, ``calibration`` and ``baseline``
    are strictly required — the rest defaults sensibly.

    Attributes:
        compiled: The cell's compiled artifact.
        calibration: Snapshot the cell executes under.
        baseline: The unmitigated execution (scale-1 point; strategies
            reuse it instead of re-running).
        circuit: The logical program (needed by fold-style amplifiers
            that recompile).
        options: The cell's compiler configuration (same reason).
        noise: Noise model of the baseline run (default: all-mechanisms
            :class:`~repro.simulator.NoiseModel` on *calibration*).
        trials: Shot count per execution.
        seed: The cell's master seed; per-scale seeds derive from it.
        expected: The benchmark's known answer (required — mitigation
            estimates success probability).
        engine: Executor engine for extra executions.
        trace_cache: Shared lowered-trace cache (optional).
        stage_cache: Shared pipeline stage cache (optional; lets folded
            recompilations reuse the mapping prefix).
        tables: Reliability tables for *calibration* (optional).
        transforms: Distribution transforms applied, in order, before
            success is read off a measured distribution.
    """

    compiled: CompiledProgram
    calibration: Calibration
    baseline: ExecutionResult
    circuit: Optional[Circuit] = None
    options: Optional[CompilerOptions] = None
    noise: Optional[NoiseModel] = None
    trials: int = 1024
    seed: int = 7
    expected: Optional[str] = None
    engine: str = "batched"
    trace_cache: object = None
    stage_cache: object = None
    tables: Optional[ReliabilityTables] = None
    transforms: Tuple[DistributionTransform, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.noise is None:
            self.noise = NoiseModel(self.calibration)
        if self.expected is None:
            self.expected = self.baseline.expected
        if self.expected is None:
            raise MitigationError(
                "mitigation needs the benchmark's expected outcome to "
                "estimate success probability")
        if self.circuit is None:
            self.circuit = self.compiled.logical
        if self.options is None:
            self.options = self.compiled.options

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def scale_seed(self, index: int) -> int:
        """Deterministic seed for the *index*-th extra execution."""
        return self.seed + _SEED_STRIDE * (index + 1)

    def execute(self, compiled: Optional[CompiledProgram] = None,
                noise_model: Optional[NoiseModel] = None,
                seed: Optional[int] = None) -> ExecutionResult:
        """Run one extra execution with the cell's settings."""
        return execute(compiled if compiled is not None else self.compiled,
                       self.calibration, trials=self.trials,
                       seed=self.seed if seed is None else seed,
                       expected=self.expected,
                       noise_model=noise_model
                       if noise_model is not None else self.noise,
                       engine=self.engine, trace_cache=self.trace_cache)

    def base_trace(self) -> Optional[ProgramTrace]:
        """The baseline (scale-1) lowered trace, via the trace cache.

        ``None`` when no cache is attached — callers then fall back to
        whatever :func:`~repro.simulator.execute` does on its own.
        """
        if self.trace_cache is None:
            return None
        trace = self.trace_cache.get(self.compiled, self.noise,
                                     self.calibration)
        if trace is None:
            compact = CompactProgram(self.compiled.physical.circuit,
                                     self.compiled.physical.times,
                                     topology=self.calibration.topology)
            trace = ProgramTrace(compact, self.noise)
            self.trace_cache.put(self.compiled, self.noise,
                                 self.calibration, trace)
        return trace

    # ------------------------------------------------------------------
    # Observable evaluation
    # ------------------------------------------------------------------
    def with_transforms(self, *extra: DistributionTransform
                        ) -> "MitigationContext":
        """A copy of this context with more distribution transforms."""
        return replace(self, transforms=self.transforms + tuple(extra))

    def distribution(self, result: ExecutionResult) -> Dict[str, float]:
        """Measured distribution of *result* after every transform."""
        dist = {outcome: count / result.trials
                for outcome, count in result.counts.items()}
        for transform in self.transforms:
            dist = transform(self, dist)
        return dist

    def success_of(self, result: ExecutionResult) -> float:
        """(Transformed) probability of the expected outcome."""
        return self.distribution(result).get(self.expected, 0.0)

    def raw_success(self) -> float:
        """Baseline success with *no* transforms applied."""
        return self.baseline.counts.get(self.expected, 0) \
            / self.baseline.trials


class MitigationStrategy:
    """Base class for mitigation strategies.

    Subclasses set :attr:`name`, implement :meth:`mitigate` (the
    estimator role) and/or override :meth:`transform` (the
    distribution-transform role), declare their cost via
    :meth:`extra_executions`, and provide a stable
    :meth:`fingerprint` for cell keys and reports. Strategies must be
    cheap to pickle: sweep grids ship them to pool workers.
    """

    name: str = ""

    def fingerprint(self) -> str:
        """Stable content identity of this strategy's configuration."""
        return self.name

    def extra_executions(self) -> int:
        """Circuit executions this strategy performs beyond the baseline."""
        return 0

    def transform(self, ctx: MitigationContext,
                  distribution: Dict[str, float]) -> Dict[str, float]:
        """Rewrite a measured distribution (identity by default)."""
        return distribution

    def mitigate(self, ctx: MitigationContext) -> MitigatedResult:
        """Produce the mitigated estimate for one cell."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.fingerprint()!r})"


class ComposedStrategy(MitigationStrategy):
    """Stack strategies: leading members transform, the last estimates.

    ``ComposedStrategy([readout, zne])`` corrects every scaled
    distribution for readout confusion, then extrapolates — each
    member keeps its own cost declaration and the composite's is their
    sum.

    Args:
        strategies: Two or more members, estimator last. Leading
            members must actually override
            :meth:`MitigationStrategy.transform` — an estimator-only
            strategy (e.g. ZNE) in a leading slot would contribute
            nothing but still be advertised in the composite's name
            and cost, so it is rejected.
    """

    def __init__(self, strategies: Sequence[MitigationStrategy]) -> None:
        if len(strategies) < 2:
            raise MitigationError("composition needs >= 2 strategies")
        for member in strategies[:-1]:
            if type(member).transform is MitigationStrategy.transform:
                raise MitigationError(
                    f"{member.name!r} defines no distribution transform "
                    f"and only the last composed strategy estimates; "
                    f"put it last (e.g. readout+zne, not zne+readout)")
        self.strategies: Tuple[MitigationStrategy, ...] = tuple(strategies)
        self.name = "+".join(s.name for s in self.strategies)

    def fingerprint(self) -> str:
        return "+".join(s.fingerprint() for s in self.strategies)

    def extra_executions(self) -> int:
        return sum(s.extra_executions() for s in self.strategies)

    def transform(self, ctx: MitigationContext,
                  distribution: Dict[str, float]) -> Dict[str, float]:
        for strategy in self.strategies:
            distribution = strategy.transform(ctx, distribution)
        return distribution

    def mitigate(self, ctx: MitigationContext) -> MitigatedResult:
        leading = self.strategies[:-1]
        estimator = self.strategies[-1]
        enriched = ctx.with_transforms(*(s.transform for s in leading))
        result = estimator.mitigate(enriched)
        return replace(result, strategy=self.fingerprint(),
                       raw_success=ctx.raw_success())


def strategy_from_spec(spec: str,
                       scales: Sequence[float] = (),
                       fit: str = "linear",
                       amplifier: str = "trace") -> MitigationStrategy:
    """Build a strategy from a CLI-style ``+``-separated spec.

    ``"zne"``, ``"readout"``, and stacks like ``"readout+zne"`` (the
    composition order is the spec order: leading members transform,
    the last estimates).
    """
    from repro.mitigation.readout import ReadoutStrategy
    from repro.mitigation.zne import DEFAULT_SCALES, ZneStrategy

    members = []
    for part in spec.split("+"):
        part = part.strip()
        if part == "zne":
            members.append(ZneStrategy(
                scales=tuple(scales) if scales else DEFAULT_SCALES,
                fit=fit, amplifier=amplifier))
        elif part == "readout":
            members.append(ReadoutStrategy())
        else:
            raise MitigationError(
                f"unknown mitigation strategy {part!r} "
                f"(known: zne, readout, and '+' stacks of them)")
    if len(members) == 1:
        return members[0]
    return ComposedStrategy(members)
