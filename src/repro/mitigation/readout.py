"""Readout-error mitigation by confusion-matrix inversion.

Measurement is the noisiest single operation on the paper's machines
(IBMQ16 readout error averages ~7%, an order of magnitude above gate
errors), and — unlike gate noise — its action on the *measured
distribution* is exactly linear: the reported distribution is
``C @ p_true`` where ``C`` is a column-stochastic confusion matrix
assembled from the calibration's per-qubit readout fidelities. That
makes it invertible in post-processing with no extra circuit
executions.

The per-qubit 2x2 confusion matrix comes from
:meth:`repro.hardware.calibration.QubitCalibration.confusion_matrix`
(honoring the calibration's readout asymmetry); the full matrix over an
``m``-bit outcome register is their tensor product, so the inverse is
applied qubit-by-qubit in ``O(m * 2^m)`` instead of materializing the
``2^m x 2^m`` matrix. Inversion is *regularized*: a qubit whose
confusion matrix is numerically singular (flip probabilities summing
to ~1 carry no information) falls back to the identity, and the
inverted quasi-distribution — which can carry small negative entries
under sampling noise — is projected back onto the probability simplex
by clipping and renormalizing. On distributions that are exactly
``C @ p`` the round trip recovers ``p`` exactly (pinned by property
test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.compiler.compile import CompiledProgram
from repro.exceptions import MitigationError
from repro.hardware.calibration import Calibration
from repro.mitigation.strategy import (
    MitigatedResult,
    MitigationContext,
    MitigationStrategy,
)
from repro.simulator.noise import NoiseModel

#: Determinant floor below which a confusion matrix is treated as
#: uninvertible (the channel destroys the bit) and left uncorrected.
_SINGULAR_DET = 1e-6


def confusion_matrix(p_flip0: float, p_flip1: float) -> np.ndarray:
    """Column-stochastic 2x2 confusion matrix of one measured bit.

    ``M[measured, true]``: column 0 is the outcome distribution of a
    qubit truly in 0, column 1 of a qubit truly in 1.
    """
    return np.array([[1.0 - p_flip0, p_flip1],
                     [p_flip0, 1.0 - p_flip1]], dtype=np.float64)


class ReadoutMitigator:
    """Inverts the readout-confusion channel of one compiled program.

    The channel is assembled per *classical bit* from the physical
    program's measurement map: the hardware qubit measured into each
    cbit determines that bit's confusion matrix (several measures
    aliased onto one cbit chain their channels in program order, the
    executor's semantics).

    Args:
        compiled: The program whose measurement map to mitigate.
        calibration: Source of per-qubit readout fidelities.
        noise: Optional noise model; when given, its
            ``readout_flip_probability`` is used instead of the raw
            calibration (so a model with readout errors disabled yields
            an identity channel).
    """

    def __init__(self, compiled: CompiledProgram, calibration: Calibration,
                 noise: Optional[NoiseModel] = None) -> None:
        self.n_cbits = compiled.physical.circuit.n_cbits
        per_cbit: Dict[int, np.ndarray] = {}
        for gate in compiled.physical.circuit.measurements:
            hw = gate.qubits[0]
            if noise is not None:
                matrix = confusion_matrix(
                    noise.readout_flip_probability(hw, 0),
                    noise.readout_flip_probability(hw, 1))
            else:
                matrix = np.array(calibration.qubit(hw).confusion_matrix(),
                                  dtype=np.float64)
            previous = per_cbit.get(gate.cbit)
            # Aliased cbits: later flips act on the already-confused
            # bit, so the composite channel left-multiplies.
            per_cbit[gate.cbit] = matrix if previous is None \
                else matrix @ previous
        self.cbits: List[int] = sorted(per_cbit)
        self.matrices: List[np.ndarray] = [per_cbit[c] for c in self.cbits]
        self.inverses: List[np.ndarray] = []
        self.regularized: List[int] = []  # cbits left uncorrected
        for cbit, matrix in zip(self.cbits, self.matrices):
            if abs(np.linalg.det(matrix)) < _SINGULAR_DET:
                self.inverses.append(np.eye(2))
                self.regularized.append(cbit)
            else:
                self.inverses.append(np.linalg.inv(matrix))

    # ------------------------------------------------------------------
    def apply(self, distribution: Dict[str, float]) -> Dict[str, float]:
        """Invert the confusion channel on a measured distribution.

        Args:
            distribution: Outcome string (cbit 0 first) -> probability.

        Returns:
            The mitigated distribution, clipped to the simplex.
        """
        if not distribution:
            return {}
        m = len(self.cbits)
        if m == 0:
            return dict(distribution)
        vector = np.zeros(1 << m, dtype=np.float64)
        for outcome, probability in distribution.items():
            vector[self._index(outcome)] += probability
        # Apply each cbit's 2x2 inverse along its own axis of the
        # tensor-reshaped vector (the Kronecker factorization).
        tensor = vector.reshape((2,) * m)
        for axis, inverse in enumerate(self.inverses):
            tensor = np.moveaxis(
                np.tensordot(inverse, tensor, axes=([1], [axis])), 0, axis)
        quasi = tensor.reshape(-1)
        clipped = np.clip(quasi, 0.0, None)
        total = clipped.sum()
        if total <= 0.0:  # degenerate; keep the input rather than NaN
            return dict(distribution)
        clipped /= total
        out: Dict[str, float] = {}
        for index in np.nonzero(clipped)[0]:
            out[self._string(int(index))] = float(clipped[index])
        return out

    def apply_confusion(self, distribution: Dict[str, float]
                        ) -> Dict[str, float]:
        """Forward-apply the confusion channel (testing/synthesis aid)."""
        if not distribution:
            return {}
        m = len(self.cbits)
        vector = np.zeros(1 << m, dtype=np.float64)
        for outcome, probability in distribution.items():
            vector[self._index(outcome)] += probability
        tensor = vector.reshape((2,) * m) if m else vector
        for axis, matrix in enumerate(self.matrices):
            tensor = np.moveaxis(
                np.tensordot(matrix, tensor, axes=([1], [axis])), 0, axis)
        out: Dict[str, float] = {}
        flat = tensor.reshape(-1)
        for index in np.nonzero(flat > 0.0)[0]:
            out[self._string(int(index))] = float(flat[index])
        return out

    # ------------------------------------------------------------------
    def _index(self, outcome: str) -> int:
        if len(outcome) != self.n_cbits:
            raise MitigationError(
                f"outcome {outcome!r} does not match the program's "
                f"{self.n_cbits}-bit classical register")
        index = 0
        for position, cbit in enumerate(self.cbits):
            if outcome[cbit] == "1":
                index |= 1 << (len(self.cbits) - 1 - position)
        return index

    def _string(self, index: int) -> str:
        chars = ["0"] * self.n_cbits
        for position, cbit in enumerate(self.cbits):
            if (index >> (len(self.cbits) - 1 - position)) & 1:
                chars[cbit] = "1"
        return "".join(chars)


@dataclass(frozen=True)
class ReadoutStrategy(MitigationStrategy):
    """Post-processing readout mitigation (zero extra executions).

    Standalone, it corrects the baseline distribution; inside a
    :class:`~repro.mitigation.strategy.ComposedStrategy` it corrects
    every execution the downstream estimator performs.
    """

    name = "readout"

    def fingerprint(self) -> str:
        return "readout(inverse)"

    def transform(self, ctx: MitigationContext,
                  distribution: Dict[str, float]) -> Dict[str, float]:
        return self._mitigator(ctx).apply(distribution)

    def mitigate(self, ctx: MitigationContext) -> MitigatedResult:
        corrected = ctx.with_transforms(self.transform)
        return MitigatedResult(
            strategy=self.fingerprint(),
            raw_success=ctx.raw_success(),
            mitigated_success=min(
                max(corrected.success_of(ctx.baseline), 0.0), 1.0),
            executions=0)

    @staticmethod
    def _mitigator(ctx: MitigationContext) -> ReadoutMitigator:
        # Built per call: mitigators are cheap (a handful of 2x2
        # inverses) and the strategy itself must stay frozen/picklable.
        return ReadoutMitigator(ctx.compiled, ctx.calibration,
                                noise=ctx.noise)
