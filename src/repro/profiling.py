"""Compile-time profiling: wall-clock and allocation counters per pass.

The paper's Fig. 11 argument is about *compile time* — the SMT variants
buy reliability with solver seconds. This module makes that spend
observable: a :class:`Profiler` threads through
:meth:`repro.compiler.pipeline.PassManager.run` and accumulates, per
pass, wall time, call counts, cache hits, and (via :mod:`tracemalloc`)
allocation deltas. The ``repro profile`` CLI command drives a compile
under a profiler and renders the report alongside the solver's own
search counters (nodes, prunes, incumbents — see
:class:`repro.solver.SolverStats`).

Allocation tracing costs real time (tracemalloc instruments every
allocation), so it is opt-in per profiler and never enabled on the hot
sweep path — the sweep runtime keeps its plain ``PassTiming`` log.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class PassProfile:
    """Accumulated cost of one named pipeline pass.

    Attributes:
        name: The pass name (stage-cache identity).
        calls: Times the pass actually ran.
        seconds: Total wall-clock across those runs.
        alloc_bytes: Net bytes allocated during the runs (what the
            pass's artifacts retain plus transient garbage not yet
            collected at measurement time).
        peak_bytes: Largest single-run traced-memory peak delta.
        cache_hits: Times a stage cache served the artifact instead.
    """

    name: str
    calls: int = 0
    seconds: float = 0.0
    alloc_bytes: int = 0
    peak_bytes: int = 0
    cache_hits: int = 0


class Profiler:
    """Collects per-pass cost during one or more compiles.

    Args:
        trace_allocations: Also record tracemalloc deltas. The profiler
            starts tracing on construction if nothing else has and stops
            it again in :meth:`close` only when it was the one to start
            it (so nesting under an outer tracer is safe).
    """

    def __init__(self, trace_allocations: bool = True) -> None:
        self.passes: Dict[str, PassProfile] = {}
        self.trace_allocations = trace_allocations
        self._started_tracing = False
        if trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    def close(self) -> None:
        """Stop allocation tracing if this profiler started it."""
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracing = False

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def profile_for(self, name: str) -> PassProfile:
        if name not in self.passes:
            self.passes[name] = PassProfile(name=name)
        return self.passes[name]

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time (and optionally allocation-trace) one pass execution."""
        tracing = self.trace_allocations and tracemalloc.is_tracing()
        if tracing:
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
        tick = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - tick
            prof = self.profile_for(name)
            prof.calls += 1
            prof.seconds += seconds
            if tracing:
                after, peak = tracemalloc.get_traced_memory()
                prof.alloc_bytes += max(0, after - before)
                prof.peak_bytes = max(prof.peak_bytes,
                                      max(0, peak - before))

    def record_cache_hit(self, name: str) -> None:
        self.profile_for(name).cache_hits += 1

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view (JSON-friendly, insertion order = pass order)."""
        return {
            name: {
                "calls": p.calls,
                "seconds": p.seconds,
                "alloc_bytes": p.alloc_bytes,
                "peak_bytes": p.peak_bytes,
                "cache_hits": p.cache_hits,
            }
            for name, p in self.passes.items()
        }

    def report(self, solver_stats: Optional[Dict[str, object]] = None
               ) -> str:
        """Human-readable table, heaviest pass first.

        Args:
            solver_stats: Optional solver counter dict (from
                ``MappingResult.stats``) appended below the table.
        """
        lines: List[str] = []
        header = (f"{'pass':<14} {'calls':>5} {'hits':>5} "
                  f"{'seconds':>9} {'alloc':>10} {'peak':>10}")
        lines.append(header)
        lines.append("-" * len(header))
        total = 0.0
        for p in sorted(self.passes.values(), key=lambda p: -p.seconds):
            total += p.seconds
            lines.append(
                f"{p.name:<14} {p.calls:>5} {p.cache_hits:>5} "
                f"{p.seconds:>9.4f} {_fmt_bytes(p.alloc_bytes):>10} "
                f"{_fmt_bytes(p.peak_bytes):>10}")
        lines.append(f"{'total':<14} {'':>5} {'':>5} {total:>9.4f}")
        if solver_stats:
            lines.append("")
            lines.append("solver: " + ", ".join(
                f"{k}={v}" for k, v in solver_stats.items()))
        return "\n".join(lines)


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"
