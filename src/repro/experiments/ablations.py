"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the repo's own knobs:

* **omega fine sweep** — success rate of R-SMT* across a dense omega
  grid (the paper only samples {0, 0.5, 1});
* **greedy seed expansion** — GreedyE* with and without the
  expansion-potential term in its seed-edge score;
* **peephole** — movement-CNOT and duration reduction from
  adjacent-inverse cancellation, per variant;
* **swap-return convention** — one-way (paper objective) vs round-trip
  (executed cost) reliability scoring, compared against measured
  success rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import (
    CompilerOptions,
    MappingPass,
    PassManager,
    PeepholePass,
    ReliabilityPass,
    SchedulingPass,
    SwapInsertPass,
)
from repro.experiments.common import (
    DEFAULT_TRIALS,
    format_table,
)
from repro.hardware import (
    Calibration,
    ReliabilityTables,
    default_ibmq16_calibration,
)
from repro.programs import all_benchmarks, get_benchmark
from repro.runtime import StageCache, SweepCell, run_sweep
from repro.simulator import execute


@dataclass
class OmegaSweepResult:
    """success[benchmark][omega] over a dense omega grid."""

    omegas: List[float]
    success: Dict[str, Dict[float, float]]

    def best_omega(self, benchmark: str) -> float:
        by_omega = self.success[benchmark]
        return max(by_omega, key=by_omega.get)

    def to_text(self) -> str:
        headers = ["benchmark"] + [f"w={w:g}" for w in self.omegas] + ["best"]
        body = []
        for bench, by_omega in self.success.items():
            body.append([bench] + [by_omega[w] for w in self.omegas]
                        + [f"{self.best_omega(bench):g}"])
        return format_table(headers, body)


def run_omega_sweep(benchmarks: Sequence[str] = ("BV4", "HS6", "Toffoli"),
                    omegas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                    calibration: Optional[Calibration] = None,
                    trials: int = DEFAULT_TRIALS,
                    seed: int = 7, workers: int = 0) -> OmegaSweepResult:
    """Dense omega sweep of R-SMT* success rate."""
    cal = calibration or default_ibmq16_calibration()
    specs = {b: get_benchmark(b) for b in benchmarks}
    circuits = {b: spec.build() for b, spec in specs.items()}
    cells = [SweepCell(circuit=circuits[bench], calibration=cal,
                       options=CompilerOptions.r_smt_star(omega=omega),
                       expected=specs[bench].expected_output,
                       trials=trials, seed=seed, key=(bench, omega))
             for bench in benchmarks for omega in omegas]
    success: Dict[str, Dict[float, float]] = {b: {} for b in benchmarks}
    for result in run_sweep(cells, workers=workers, strict=True):
        bench, omega = result.key
        success[bench][omega] = result.success_rate
    return OmegaSweepResult(omegas=list(omegas), success=success)


@dataclass
class PeepholeAblationResult:
    """Per-benchmark effect of the peephole pass on the baseline."""

    rows: List[Tuple[str, int, int, float, float]]
    # (benchmark, cnots before, cnots after, success before, success after)

    def to_text(self) -> str:
        headers = ["benchmark", "phys CNOTs", "w/ peephole",
                   "success", "w/ peephole"]
        return format_table(headers, self.rows)


def run_peephole_ablation(calibration: Optional[Calibration] = None,
                          trials: int = DEFAULT_TRIALS, seed: int = 7,
                          subset: Optional[List[str]] = None
                          ) -> PeepholeAblationResult:
    """Effect of adjacent-inverse cancellation on the Qiskit baseline.

    Built as an explicit pipeline *edit* rather than an option flag:
    the tidy arm is the plain pass list with :class:`PeepholePass`
    inserted after SWAP insertion. Both arms run through one shared
    :class:`~repro.runtime.StageCache`, so the mapping → schedule →
    swap-insert prefix is computed once per benchmark and only the
    peephole (and downstream reliability) stages differ.
    """
    cal = calibration or default_ibmq16_calibration()
    tables = ReliabilityTables(cal)
    stages = StageCache()
    prefix = [MappingPass("qiskit"), SchedulingPass(), SwapInsertPass()]
    plain_pipeline = PassManager(prefix + [ReliabilityPass()])
    tidy_pipeline = PassManager(prefix + [PeepholePass(),
                                          ReliabilityPass()])
    rows = []
    for name, circuit, expected in all_benchmarks(subset):
        plain = plain_pipeline.run(circuit, cal, CompilerOptions.qiskit(),
                                   tables=tables, stage_cache=stages)
        tidy = tidy_pipeline.run(
            circuit, cal, CompilerOptions.qiskit().with_(peephole=True),
            tables=tables, stage_cache=stages)
        rows.append((
            name,
            plain.physical.circuit.cnot_count(),
            tidy.physical.circuit.cnot_count(),
            execute(plain, cal, trials=trials, seed=seed,
                    expected=expected).success_rate,
            execute(tidy, cal, trials=trials, seed=seed,
                    expected=expected).success_rate,
        ))
    return PeepholeAblationResult(rows=rows)


@dataclass
class ConventionAblationResult:
    """One-way vs round-trip reliability estimates vs measured success."""

    rows: List[Tuple[str, float, float, float]]
    # (benchmark, one-way estimate, round-trip estimate, measured)

    def mean_abs_error(self, which: str) -> float:
        idx = 1 if which == "one-way" else 2
        errors = [abs(r[idx] - r[3]) for r in self.rows]
        return sum(errors) / len(errors)

    def to_text(self) -> str:
        headers = ["benchmark", "est (one-way)", "est (round-trip)",
                   "measured"]
        table = format_table(headers, self.rows)
        return (table
                + f"\n\nmean |estimate - measured|: one-way "
                  f"{self.mean_abs_error('one-way'):.3f}, round-trip "
                  f"{self.mean_abs_error('round-trip'):.3f}")


def run_convention_ablation(calibration: Optional[Calibration] = None,
                            trials: int = DEFAULT_TRIALS, seed: int = 7,
                            subset: Optional[List[str]] = None,
                            workers: int = 0) -> ConventionAblationResult:
    """Which reliability convention predicts measured success better?

    The executed circuit really does swap back, so the round-trip
    product should track measurement more closely on swap-heavy
    mappings; on zero-swap mappings the two coincide.
    """
    cal = calibration or default_ibmq16_calibration()
    cells = [SweepCell(circuit=circuit, calibration=cal,
                       options=CompilerOptions.qiskit(),
                       expected=expected, trials=trials, seed=seed,
                       key=name)
             for name, circuit, expected in all_benchmarks(subset)]
    rows = []
    for result in run_sweep(cells, workers=workers, strict=True):
        est = result.compiled.reliability
        rows.append((result.key, est.score, est.round_trip_score,
                     result.success_rate))
    return ConventionAblationResult(rows=rows)
