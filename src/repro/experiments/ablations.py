"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the repo's own knobs:

* **omega fine sweep** — success rate of R-SMT* across a dense omega
  grid (the paper only samples {0, 0.5, 1});
* **greedy seed expansion** — GreedyE* with and without the
  expansion-potential term in its seed-edge score;
* **peephole** — movement-CNOT and duration reduction from
  adjacent-inverse cancellation, per variant;
* **swap-return convention** — one-way (paper objective) vs round-trip
  (executed cost) reliability scoring, compared against measured
  success rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import CompilerOptions
from repro.experiments.common import (
    DEFAULT_TRIALS,
    format_table,
)
from repro.hardware import (
    Calibration,
    default_ibmq16_calibration,
)
from repro.programs import all_benchmarks, get_benchmark
from repro.runtime import SweepCell, run_sweep


@dataclass
class OmegaSweepResult:
    """success[benchmark][omega] over a dense omega grid."""

    omegas: List[float]
    success: Dict[str, Dict[float, float]]

    def best_omega(self, benchmark: str) -> float:
        by_omega = self.success[benchmark]
        return max(by_omega, key=by_omega.get)

    def to_text(self) -> str:
        headers = ["benchmark"] + [f"w={w:g}" for w in self.omegas] + ["best"]
        body = []
        for bench, by_omega in self.success.items():
            body.append([bench] + [by_omega[w] for w in self.omegas]
                        + [f"{self.best_omega(bench):g}"])
        return format_table(headers, body)


def run_omega_sweep(benchmarks: Sequence[str] = ("BV4", "HS6", "Toffoli"),
                    omegas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                    calibration: Optional[Calibration] = None,
                    trials: int = DEFAULT_TRIALS,
                    seed: int = 7, workers: int = 0) -> OmegaSweepResult:
    """Dense omega sweep of R-SMT* success rate."""
    cal = calibration or default_ibmq16_calibration()
    specs = {b: get_benchmark(b) for b in benchmarks}
    circuits = {b: spec.build() for b, spec in specs.items()}
    cells = [SweepCell(circuit=circuits[bench], calibration=cal,
                       options=CompilerOptions.r_smt_star(omega=omega),
                       expected=specs[bench].expected_output,
                       trials=trials, seed=seed, key=(bench, omega))
             for bench in benchmarks for omega in omegas]
    success: Dict[str, Dict[float, float]] = {b: {} for b in benchmarks}
    for result in run_sweep(cells, workers=workers):
        bench, omega = result.key
        success[bench][omega] = result.success_rate
    return OmegaSweepResult(omegas=list(omegas), success=success)


@dataclass
class PeepholeAblationResult:
    """Per-benchmark effect of the peephole pass on the baseline."""

    rows: List[Tuple[str, int, int, float, float]]
    # (benchmark, cnots before, cnots after, success before, success after)

    def to_text(self) -> str:
        headers = ["benchmark", "phys CNOTs", "w/ peephole",
                   "success", "w/ peephole"]
        return format_table(headers, self.rows)


def run_peephole_ablation(calibration: Optional[Calibration] = None,
                          trials: int = DEFAULT_TRIALS, seed: int = 7,
                          subset: Optional[List[str]] = None,
                          workers: int = 0) -> PeepholeAblationResult:
    """Effect of adjacent-inverse cancellation on the Qiskit baseline."""
    cal = calibration or default_ibmq16_calibration()
    bench_list = list(all_benchmarks(subset))
    cells = [SweepCell(circuit=circuit, calibration=cal,
                       options=CompilerOptions.qiskit().with_(
                           peephole=peephole),
                       expected=expected, trials=trials, seed=seed,
                       key=(name, peephole))
             for name, circuit, expected in bench_list
             for peephole in (False, True)]
    by_key = run_sweep(cells, workers=workers).by_key()
    rows = []
    for name, _, _ in bench_list:
        plain, tidy = by_key[(name, False)], by_key[(name, True)]
        rows.append((
            name,
            plain.compiled.physical.circuit.cnot_count(),
            tidy.compiled.physical.circuit.cnot_count(),
            plain.success_rate,
            tidy.success_rate,
        ))
    return PeepholeAblationResult(rows=rows)


@dataclass
class ConventionAblationResult:
    """One-way vs round-trip reliability estimates vs measured success."""

    rows: List[Tuple[str, float, float, float]]
    # (benchmark, one-way estimate, round-trip estimate, measured)

    def mean_abs_error(self, which: str) -> float:
        idx = 1 if which == "one-way" else 2
        errors = [abs(r[idx] - r[3]) for r in self.rows]
        return sum(errors) / len(errors)

    def to_text(self) -> str:
        headers = ["benchmark", "est (one-way)", "est (round-trip)",
                   "measured"]
        table = format_table(headers, self.rows)
        return (table
                + f"\n\nmean |estimate - measured|: one-way "
                  f"{self.mean_abs_error('one-way'):.3f}, round-trip "
                  f"{self.mean_abs_error('round-trip'):.3f}")


def run_convention_ablation(calibration: Optional[Calibration] = None,
                            trials: int = DEFAULT_TRIALS, seed: int = 7,
                            subset: Optional[List[str]] = None,
                            workers: int = 0) -> ConventionAblationResult:
    """Which reliability convention predicts measured success better?

    The executed circuit really does swap back, so the round-trip
    product should track measurement more closely on swap-heavy
    mappings; on zero-swap mappings the two coincide.
    """
    cal = calibration or default_ibmq16_calibration()
    cells = [SweepCell(circuit=circuit, calibration=cal,
                       options=CompilerOptions.qiskit(),
                       expected=expected, trials=trials, seed=seed,
                       key=name)
             for name, circuit, expected in all_benchmarks(subset)]
    rows = []
    for result in run_sweep(cells, workers=workers):
        est = result.compiled.reliability
        rows.append((result.key, est.score, est.round_trip_score,
                     result.success_rate))
    return ConventionAblationResult(rows=rows)
