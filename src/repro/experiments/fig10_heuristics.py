"""Figure 10 — noise-aware heuristics vs the optimal mapper.

Compares GreedyE* and GreedyV* against R-SMT*(w=0.5) on all 12
benchmarks. Expected shape: GreedyE* tracks R-SMT* closely (sometimes
beating it marginally, since w=0.5 is not always the ideal weight), and
the edge-based heuristic does at least as well as the vertex-based one
in aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions
from repro.experiments.common import (
    DEFAULT_TRIALS,
    BackendLike,
    BenchmarkRun,
    format_table,
    geometric_mean,
    harness_calibration,
    resolve_backend,
    run_benchmark_grid,
)
from repro.hardware import Calibration
from repro.programs import all_benchmarks
from repro.runtime import SweepCell


@dataclass
class Fig10Result:
    """Success rates per benchmark for R-SMT* and the two heuristics."""

    runs: Dict[str, Dict[str, BenchmarkRun]]
    variants: List[str]

    def success(self, benchmark: str, variant: str) -> float:
        return self.runs[benchmark][variant].success_rate

    def geomean_ratio(self, variant: str,
                      reference: str = "r-smt*") -> float:
        ratios = []
        for by in self.runs.values():
            ref = by[reference].success_rate
            if ref > 0:
                ratios.append(by[variant].success_rate / ref)
        return geometric_mean(ratios)

    def to_text(self) -> str:
        body = [[b] + [self.success(b, v) for v in self.variants]
                for b in self.runs]
        table = format_table(["benchmark"] + self.variants, body)
        ge = self.geomean_ratio("greedye*")
        gv = self.geomean_ratio("greedyv*")
        return (table + f"\n\ngeomean vs R-SMT*: GreedyE* {ge:.2f}x, "
                        f"GreedyV* {gv:.2f}x (paper: E* comparable, "
                        f"E* >= V*)")


def run_fig10(calibration: Optional[Calibration] = None,
              trials: int = DEFAULT_TRIALS, seed: int = 7,
              subset: Optional[List[str]] = None,
              workers: int = 0, backend: BackendLike = None) -> Fig10Result:
    """Reproduce Figure 10's heuristic comparison."""
    backend = resolve_backend(backend)
    cal = harness_calibration(backend, calibration)
    configs = [CompilerOptions.r_smt_star(omega=0.5),
               CompilerOptions.greedy_e(),
               CompilerOptions.greedy_v()]
    cells = [SweepCell(circuit=circuit, calibration=cal, options=options,
                       expected=expected, trials=trials, seed=seed,
                       backend=backend, key=(name, options.variant))
             for name, circuit, expected in all_benchmarks(subset)
             for options in configs]
    runs, _ = run_benchmark_grid(cells, workers=workers)
    return Fig10Result(runs=runs, variants=[c.variant for c in configs])
