"""Shared utilities for the per-figure experiment harnesses.

Since the sweep runtime landed, every harness expresses its grid as
:class:`~repro.runtime.SweepCell` lists executed by
:func:`~repro.runtime.run_sweep` (serially by default; pass
``workers >= 2`` to fan out over a process pool — results are
bit-identical either way). :func:`compile_and_run` survives as the
single-cell wrapper so pre-sweep call sites keep working.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.backend import Backend, get_backend
from repro.compiler import CompiledProgram, CompilerOptions
from repro.hardware import (
    Calibration,
    ReliabilityTables,
    default_ibmq16_calibration,
)
from repro.ir.circuit import Circuit
from repro.runtime import (
    DEFAULT_TRIALS,
    CompileCache,
    SweepCell,
    SweepResult,
    TraceCache,
    run_cell,
    run_sweep,
)
from repro.simulator import ExecutionResult

#: What every harness's ``backend=`` parameter accepts: a Backend, a
#: registered preset name (the CLI's ``--device`` string), or None.
BackendLike = Union[str, Backend, None]

# DEFAULT_TRIALS (re-exported from repro.runtime, the single source of
# truth): the paper uses 8192 hardware shots; 1024 simulated trials
# gives ~1.5% standard error, plenty to resolve the multi-x effects
# under study, at an eighth of the cost.


def resolve_backend(backend: BackendLike) -> Optional[Backend]:
    """The uniform ``backend=`` contract of the figure harnesses.

    ``None`` passes through (the harness falls back to its historical
    IBMQ16 default), a string resolves through the preset registry
    (with its did-you-mean error), and a :class:`~repro.backend.Backend`
    is used as-is.
    """
    if backend is None or isinstance(backend, Backend):
        return backend
    return get_backend(backend)


def harness_calibration(backend: Optional[Backend],
                        calibration: Optional[Calibration],
                        day: int = 0) -> Calibration:
    """The harness rule for picking a snapshot: an explicit
    ``calibration=`` wins, then the backend's day-*day* snapshot, then
    the repo-wide default IBMQ16 day-0 snapshot."""
    if calibration is not None:
        return calibration
    if backend is not None:
        return backend.calibration(day)
    return default_ibmq16_calibration()


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + \
        [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@dataclass
class BenchmarkRun:
    """One (benchmark, compiler variant) measurement."""

    benchmark: str
    variant: str
    compiled: CompiledProgram
    execution: Optional[ExecutionResult] = None

    @property
    def success_rate(self) -> float:
        assert self.execution is not None
        return self.execution.success_rate

    @property
    def duration(self) -> float:
        return self.compiled.duration

    @property
    def compile_time(self) -> float:
        return self.compiled.compile_time


def compile_and_run(circuit: Circuit, expected: str,
                    calibration: Optional[Calibration],
                    options: CompilerOptions,
                    tables: Optional[ReliabilityTables] = None,
                    trials: int = DEFAULT_TRIALS, seed: int = 7,
                    simulate: bool = True,
                    engine: Optional[str] = None,
                    array_backend: Optional[str] = None,
                    compile_cache: Optional[CompileCache] = None,
                    trace_cache: Optional[TraceCache] = None,
                    backend: BackendLike = None) -> BenchmarkRun:
    """Compile a benchmark and (optionally) execute it on the simulator.

    A thin single-cell wrapper over the sweep runtime
    (:mod:`repro.runtime`): multi-cell grids should build
    :class:`~repro.runtime.SweepCell` lists and call
    :func:`~repro.runtime.run_sweep` instead, which adds cross-cell
    compile/trace caching and parallel execution. Pass a shared
    ``compile_cache``/``trace_cache`` here to get the same reuse across
    repeated single-cell calls. ``backend=`` (name or
    :class:`~repro.backend.Backend`) supplies the machine axis;
    ``calibration`` may then be ``None`` to use its day-0 snapshot.
    ``array_backend=`` selects the statevector array backend (``None``
    = the process default); counts never depend on it.
    """
    resolved = resolve_backend(backend)
    if calibration is None and resolved is not None:
        # Resolve the backend's snapshot here (the cell would anyway)
        # so an explicit tables= argument still seeds the cache.
        calibration = resolved.calibration()
    compile_cache = compile_cache if compile_cache is not None \
        else CompileCache()
    if tables is not None and calibration is not None:
        # calibration can still be None here (no backend either) —
        # fall through so SweepCell raises its clear ReproError.
        compile_cache.seed_tables(calibration, tables)
    cell = SweepCell(circuit=circuit, calibration=calibration,
                     options=options, expected=expected, trials=trials,
                     seed=seed, simulate=simulate, engine=engine,
                     array_backend=array_backend,
                     backend=resolved, key=circuit.name)
    if trace_cache is None:
        from repro.runtime.diskcache import make_trace_cache

        # A persistent compile cache extends its disk store to traces.
        trace_cache = make_trace_cache(
            store=getattr(compile_cache, "_store", None))
    result = run_cell(cell, compile_cache, trace_cache)
    return BenchmarkRun(benchmark=circuit.name, variant=options.variant,
                        compiled=result.compiled, execution=result.execution)


def run_benchmark_grid(cells: Sequence[SweepCell], workers: int = 0
                       ) -> Tuple[Dict[str, Dict[str, BenchmarkRun]],
                                  SweepResult]:
    """Execute cells keyed ``(benchmark, label)`` and file the results.

    The common shape of fig5/fig7/fig9/fig10: a benchmark x variant
    grid whose results are consumed as ``runs[benchmark][label]``.

    Returns:
        (nested run dict, the raw :class:`~repro.runtime.SweepResult`
        with cache/time stats).
    """
    sweep = run_sweep(cells, workers=workers, strict=True)
    runs: Dict[str, Dict[str, BenchmarkRun]] = {}
    for result in sweep:
        bench, label = result.key
        runs.setdefault(bench, {})[label] = BenchmarkRun(
            benchmark=bench, variant=label, compiled=result.compiled,
            execution=result.execution)
    return runs, sweep


def variant_label(options: CompilerOptions) -> str:
    """Figure-style label, e.g. ``r-smt*(w=0.5,1bp)``."""
    bits = [options.variant]
    extra = []
    if options.variant == "r-smt*":
        extra.append(f"w={options.omega:g}")
    extra.append(options.routing)
    return f"{bits[0]}({','.join(extra)})"
