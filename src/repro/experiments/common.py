"""Shared utilities for the per-figure experiment harnesses."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.compiler import CompiledProgram, CompilerOptions, compile_circuit
from repro.hardware import Calibration, ReliabilityTables
from repro.ir.circuit import Circuit
from repro.simulator import ExecutionResult, execute

#: Default shot count for experiment runs. The paper uses 8192 on
#: hardware; 1024 simulated trials gives ~1.5% standard error, plenty to
#: resolve the multi-x effects under study, at an eighth of the cost.
DEFAULT_TRIALS = 1024


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + \
        [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@dataclass
class BenchmarkRun:
    """One (benchmark, compiler variant) measurement."""

    benchmark: str
    variant: str
    compiled: CompiledProgram
    execution: Optional[ExecutionResult] = None

    @property
    def success_rate(self) -> float:
        assert self.execution is not None
        return self.execution.success_rate

    @property
    def duration(self) -> float:
        return self.compiled.duration

    @property
    def compile_time(self) -> float:
        return self.compiled.compile_time


def compile_and_run(circuit: Circuit, expected: str,
                    calibration: Calibration, options: CompilerOptions,
                    tables: Optional[ReliabilityTables] = None,
                    trials: int = DEFAULT_TRIALS, seed: int = 7,
                    simulate: bool = True,
                    engine: str = "batched") -> BenchmarkRun:
    """Compile a benchmark and (optionally) execute it on the simulator.

    All figure/table harnesses run on the vectorized batched executor
    by default; pass ``engine="trial"`` to cross-check a result against
    the legacy per-trial engine.
    """
    compiled = compile_circuit(circuit, calibration, options, tables=tables)
    execution = None
    if simulate:
        execution = execute(compiled, calibration, trials=trials, seed=seed,
                            expected=expected, engine=engine)
    return BenchmarkRun(benchmark=circuit.name, variant=options.variant,
                        compiled=compiled, execution=execution)


def variant_label(options: CompilerOptions) -> str:
    """Figure-style label, e.g. ``r-smt*(w=0.5,1bp)``."""
    bits = [options.variant]
    extra = []
    if options.variant == "r-smt*":
        extra.append(f"w={options.omega:g}")
    extra.append(options.routing)
    return f"{bits[0]}({','.join(extra)})"
