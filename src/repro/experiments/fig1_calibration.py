"""Figure 1 — daily variation in coherence time and CNOT error rates.

The paper plots ~25 days of calibration logs for selected qubits (T2)
and CNOT edges (error rate), showing large, element-dependent daily
wander. This harness regenerates those series from the synthetic
calibration generator and summarizes the spatio-temporal spreads the
paper quotes in §2 (T2 up to ~9.2x, CNOT error up to ~9x, readout up to
~5.9x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import BackendLike, format_table, \
    resolve_backend
from repro.hardware import CalibrationGenerator, GridTopology, ibmq16_topology

#: Qubits tracked in Fig. 1a and edges in Fig. 1b. The paper tracks
#: Q0/Q4/Q9/Q13 and CNOTs 5-4, 7-10, 3-14 on the real device's ring
#: numbering; we keep the qubit set and pick three coupling edges that
#: exist on the 2x8 grid model.
DEFAULT_QUBITS = (0, 4, 9, 13)
DEFAULT_EDGES = ((4, 5), (6, 14), (2, 3))


@dataclass
class Fig1Result:
    """Daily T2 and CNOT-error series plus aggregate variation."""

    days: int
    t2_series: Dict[int, List[float]]
    cnot_series: Dict[Tuple[int, int], List[float]]
    t2_variation: float
    cnot_variation: float
    readout_variation: float

    def to_text(self) -> str:
        rows = []
        for q, series in sorted(self.t2_series.items()):
            rows.append([f"T2 Q{q} (us)"] +
                        [f"{v:.0f}" for v in series[:10]])
        for (a, b), series in sorted(self.cnot_series.items()):
            rows.append([f"CNOT {a},{b} err"] +
                        [f"{v:.3f}" for v in series[:10]])
        headers = ["series"] + [f"d{d}" for d in range(min(self.days, 10))]
        table = format_table(headers, rows)
        summary = (f"\nspatio-temporal spread over {self.days} days: "
                   f"T2 {self.t2_variation:.1f}x, "
                   f"CNOT error {self.cnot_variation:.1f}x, "
                   f"readout error {self.readout_variation:.1f}x "
                   f"(paper: 9.2x, 9.0x, 5.9x)")
        return table + summary


def run_fig1(days: int = 25, seed: int = None,
             qubits: Sequence[int] = None,
             edges: Sequence[Tuple[int, int]] = None,
             topology: GridTopology = None,
             backend: BackendLike = None) -> Fig1Result:
    """Regenerate Figure 1's daily calibration series.

    With ``backend``, the series comes from that machine's own
    calibration stream (topology, noise profile and seed — an explicit
    ``seed=``/``topology=`` still wins, keeping the backend's
    profile); the tracked qubits/edges then default to a spread over
    *its* grid rather than the paper's IBMQ16 picks.
    """
    backend = resolve_backend(backend)
    if backend is not None:
        topo = topology or backend.topology
        generator = backend.generator() \
            if topology is None and seed is None else \
            CalibrationGenerator(topo,
                                 seed=backend.calibration_seed
                                 if seed is None else seed,
                                 profile=backend.profile)
    else:
        topo = topology or ibmq16_topology()
        generator = CalibrationGenerator(topo,
                                         seed=2019 if seed is None else seed)
    # The paper's qubit/edge picks only mean something on the stock
    # 2x8 IBMQ16 grid; other machines derive a spread instead. Gated
    # on the effective grid shape, so `backend="ibmq16"` tracks the
    # exact same series as the default invocation.
    paper_machine = (topo.mx, topo.my) == (8, 2)
    if qubits is None:
        n = topo.n_qubits
        qubits = DEFAULT_QUBITS if paper_machine \
            else tuple(sorted({0, n // 3, (2 * n) // 3, n - 1}))
    if edges is None:
        all_edges = topo.edges()
        edges = DEFAULT_EDGES if paper_machine \
            else tuple(all_edges[:: max(1, len(all_edges) // 3)][:3])
    edge_list = [tuple(sorted(e)) for e in edges]

    t2_series: Dict[int, List[float]] = {q: [] for q in qubits}
    cnot_series: Dict[Tuple[int, int], List[float]] = \
        {e: [] for e in edge_list}
    t2_all: List[float] = []
    cnot_all: List[float] = []
    readout_all: List[float] = []

    for cal in generator.days(days):
        for q in qubits:
            t2_series[q].append(cal.qubit(q).t2_us)
        for e in edge_list:
            cnot_series[e].append(cal.edges[e].cnot_error)
        t2_all.extend(rec.t2_us for rec in cal.qubits.values())
        cnot_all.extend(rec.cnot_error for rec in cal.edges.values())
        readout_all.extend(rec.readout_error for rec in cal.qubits.values())

    return Fig1Result(
        days=days,
        t2_series=t2_series,
        cnot_series=cnot_series,
        t2_variation=max(t2_all) / min(t2_all),
        cnot_variation=max(cnot_all) / min(cnot_all),
        readout_variation=max(readout_all) / min(readout_all),
    )
