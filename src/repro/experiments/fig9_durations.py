"""Figure 9 — effect of gate durations, routing policy and objective on
execution duration.

Compares T-SMT(RR) (uniform gate times), T-SMT*(RR), T-SMT*(1BP) and
R-SMT*(1BP) across all 12 benchmarks. Expected shape: the
calibrated-duration variants beat the uniform-duration T-SMT (paper: up
to 1.68x, ~1.6x typical); RR vs 1BP barely matters at these sizes; and
R-SMT*, though it optimizes reliability, lands within a whisker of
T-SMT*'s duration-optimal schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions
from repro.experiments.common import (
    BackendLike,
    BenchmarkRun,
    format_table,
    geometric_mean,
    harness_calibration,
    resolve_backend,
    run_benchmark_grid,
)
from repro.hardware import Calibration
from repro.programs import all_benchmarks
from repro.runtime import SweepCell


@dataclass
class Fig9Result:
    """Durations per benchmark per configuration label."""

    runs: Dict[str, Dict[str, BenchmarkRun]]
    labels: List[str]

    def duration(self, benchmark: str, label: str) -> float:
        return self.runs[benchmark][label].duration

    def geomean_gain_over_uniform(self, label: str = "t-smt*(rr)") -> float:
        """T-SMT(RR) duration / calibrated-variant duration, geomean."""
        ratios = [by["t-smt(rr)"].duration / by[label].duration
                  for by in self.runs.values() if by[label].duration > 0]
        return geometric_mean(ratios)

    def to_text(self) -> str:
        body = [[b] + [f"{self.duration(b, label):.0f}"
                       for label in self.labels]
                for b in self.runs]
        table = format_table(["benchmark"] + self.labels, body)
        gain = self.geomean_gain_over_uniform()
        return (table + f"\n\ncalibrated durations vs uniform: geomean "
                        f"{gain:.2f}x shorter (paper: ~1.6x)")


def run_fig9(calibration: Optional[Calibration] = None,
             subset: Optional[List[str]] = None,
             workers: int = 0, backend: BackendLike = None) -> Fig9Result:
    """Reproduce Figure 9 (compile-only; no simulation needed)."""
    backend = resolve_backend(backend)
    cal = harness_calibration(backend, calibration)
    configs = [
        ("t-smt(rr)", CompilerOptions.t_smt(routing="rr")),
        ("t-smt*(rr)", CompilerOptions.t_smt_star(routing="rr")),
        ("t-smt*(1bp)", CompilerOptions.t_smt_star(routing="1bp")),
        ("r-smt*(1bp)", CompilerOptions.r_smt_star(omega=0.5)),
    ]
    cells = [SweepCell(circuit=circuit, calibration=cal, options=options,
                       expected=expected, simulate=False, backend=backend,
                       key=(name, label))
             for name, circuit, expected in all_benchmarks(subset)
             for label, options in configs]
    runs, _ = run_benchmark_grid(cells, workers=workers)
    return Fig9Result(runs=runs, labels=[label for label, _ in configs])
