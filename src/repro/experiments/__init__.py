"""Experiment harnesses regenerating every table and figure of the paper."""

from repro.experiments.common import (
    DEFAULT_TRIALS,
    BenchmarkRun,
    compile_and_run,
    format_table,
    geometric_mean,
    run_benchmark_grid,
)
from repro.experiments.ablations import (
    ConventionAblationResult,
    OmegaSweepResult,
    PeepholeAblationResult,
    run_convention_ablation,
    run_omega_sweep,
    run_peephole_ablation,
)
from repro.experiments.fig1_calibration import Fig1Result, run_fig1
from repro.experiments.fig5_success import Fig5Result, run_fig5
from repro.experiments.fig6_weekly import Fig6Result, run_fig6
from repro.experiments.fig7_omega import Fig7Result, run_fig7
from repro.experiments.fig8_mappings import Fig8Result, run_fig8
from repro.experiments.fig9_durations import Fig9Result, run_fig9
from repro.experiments.fig10_heuristics import Fig10Result, run_fig10
from repro.experiments.fig11_scalability import (
    Fig11Result,
    ScalePoint,
    run_fig11,
)
from repro.experiments.fig_mitigation import (
    MitigationStudyResult,
    run_mitigation_study,
)
from repro.experiments.table2_benchmarks import Table2Result, run_table2

__all__ = [
    "BenchmarkRun",
    "ConventionAblationResult",
    "DEFAULT_TRIALS",
    "OmegaSweepResult",
    "PeepholeAblationResult",
    "run_convention_ablation",
    "run_omega_sweep",
    "run_peephole_ablation",
    "Fig10Result",
    "Fig11Result",
    "Fig1Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "MitigationStudyResult",
    "ScalePoint",
    "Table2Result",
    "compile_and_run",
    "format_table",
    "geometric_mean",
    "run_benchmark_grid",
    "run_fig1",
    "run_fig10",
    "run_fig11",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_mitigation_study",
    "run_table2",
]
