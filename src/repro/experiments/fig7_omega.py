"""Figure 7 — choice of optimization objective (the omega sweep).

Compares T-SMT* against R-SMT* with omega in {0, 0.5, 1} on BV4, HS6
and Toffoli, reporting success rate (7a), execution duration (7b) and
compile time (7c). Expected shape: omega = 0.5 achieves the best (or
near-best) success rate; R-SMT* durations sit close to T-SMT*'s
optimal durations; every configuration compiles in well under a minute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler import CompilerOptions
from repro.experiments.common import (
    DEFAULT_TRIALS,
    BackendLike,
    BenchmarkRun,
    format_table,
    harness_calibration,
    resolve_backend,
    run_benchmark_grid,
)
from repro.hardware import Calibration
from repro.programs import get_benchmark
from repro.runtime import SweepCell

DEFAULT_BENCHMARKS = ("BV4", "HS6", "Toffoli")
DEFAULT_OMEGAS = (1.0, 0.0, 0.5)


@dataclass
class Fig7Result:
    """runs[benchmark][label] with labels t-smt* and r-smt*(w=...)."""

    runs: Dict[str, Dict[str, BenchmarkRun]]
    labels: List[str]

    def success(self, benchmark: str, label: str) -> float:
        return self.runs[benchmark][label].success_rate

    def duration(self, benchmark: str, label: str) -> float:
        return self.runs[benchmark][label].duration

    def compile_time(self, benchmark: str, label: str) -> float:
        return self.runs[benchmark][label].compile_time

    def to_text(self) -> str:
        sections = []
        for metric, fn in (("success rate", self.success),
                           ("duration (timeslots)", self.duration),
                           ("compile time (s)", self.compile_time)):
            body = [[b] + [fn(b, label) for label in self.labels]
                    for b in self.runs]
            sections.append(f"{metric}:\n"
                            + format_table(["benchmark"] + self.labels, body))
        return "\n\n".join(sections)


def run_fig7(calibration: Optional[Calibration] = None,
             trials: int = DEFAULT_TRIALS, seed: int = 7,
             benchmarks: Tuple[str, ...] = DEFAULT_BENCHMARKS,
             omegas: Tuple[float, ...] = DEFAULT_OMEGAS,
             workers: int = 0, backend: BackendLike = None) -> Fig7Result:
    """Reproduce Figure 7's objective-function study."""
    backend = resolve_backend(backend)
    cal = harness_calibration(backend, calibration)
    configs: List[Tuple[str, CompilerOptions]] = \
        [("t-smt*", CompilerOptions.t_smt_star(routing="1bp"))]
    for omega in omegas:
        configs.append((f"r-smt*(w={omega:g})",
                        CompilerOptions.r_smt_star(omega=omega)))
    specs = {b: get_benchmark(b) for b in benchmarks}
    circuits = {b: spec.build() for b, spec in specs.items()}
    cells = [SweepCell(circuit=circuits[bench], calibration=cal,
                       options=options,
                       expected=specs[bench].expected_output,
                       trials=trials, seed=seed, backend=backend,
                       key=(bench, label))
             for bench in benchmarks
             for label, options in configs]
    runs, _ = run_benchmark_grid(cells, workers=workers)
    return Fig7Result(runs=runs, labels=[label for label, _ in configs])
