"""Figure 8 — the BV4 mappings chosen by each objective.

Renders, as ASCII art over the 2x8 grid, where Qiskit, T-SMT*,
R-SMT*(w=1) and R-SMT*(w=0.5) place BV4's program qubits on one
calibration snapshot, with each variant's SWAP count and estimated
reliability. Expected shape (matching the paper's narrative): Qiskit
needs SWAPs and ignores error rates; T-SMT* avoids SWAPs but may use an
unreliable CNOT; w=1 chases readouts at the cost of movement; w=0.5
avoids SWAPs *and* bad hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler import CompiledProgram, CompilerOptions
from repro.experiments.common import (
    BackendLike,
    harness_calibration,
    resolve_backend,
)
from repro.hardware import Calibration
from repro.programs import get_benchmark
from repro.runtime import SweepCell, run_sweep


@dataclass
class Fig8Result:
    """Compiled BV4 under the four Figure-8 configurations."""

    compiled: Dict[str, CompiledProgram]
    calibration: Calibration

    def placement(self, label: str) -> Dict[int, int]:
        return self.compiled[label].placement

    def grid_art(self, label: str) -> str:
        """ASCII rendering of one mapping on the grid."""
        topo = self.calibration.topology
        inverse = {h: q for q, h in self.compiled[label].placement.items()}
        logical_qubits = set(range(self.compiled[label].logical.n_qubits))
        rows = []
        for y in range(topo.my):
            cells = []
            for x in range(topo.mx):
                h = topo.qubit_at(x, y)
                q = inverse.get(h)
                if q is not None and q in logical_qubits:
                    cells.append(f"[p{q}]")
                else:
                    cells.append(f"  . ")
            rows.append(" ".join(cells))
        return "\n".join(rows)

    def to_text(self) -> str:
        sections = []
        for label, program in self.compiled.items():
            sections.append(
                f"{label}: swaps={program.swap_count} "
                f"est.reliability={program.estimated_success:.3f} "
                f"duration={program.duration:.0f}\n{self.grid_art(label)}")
        return "\n\n".join(sections)


def run_fig8(calibration: Optional[Calibration] = None,
             benchmark: str = "BV4", workers: int = 0,
             backend: BackendLike = None) -> Fig8Result:
    """Reproduce Figure 8's mapping comparison."""
    backend = resolve_backend(backend)
    cal = harness_calibration(backend, calibration)
    spec = get_benchmark(benchmark)
    circuit = spec.build()
    configs: List[Tuple[str, CompilerOptions]] = [
        ("qiskit", CompilerOptions.qiskit()),
        ("t-smt*", CompilerOptions.t_smt_star(routing="1bp")),
        ("r-smt*(w=1)", CompilerOptions.r_smt_star(omega=1.0)),
        ("r-smt*(w=0.5)", CompilerOptions.r_smt_star(omega=0.5)),
    ]
    cells = [SweepCell(circuit=circuit, calibration=cal, options=options,
                       simulate=False, backend=backend, key=label)
             for label, options in configs]
    compiled = {result.key: result.compiled
                for result in run_sweep(cells, workers=workers,
                                        strict=True)}
    return Fig8Result(compiled=compiled, calibration=cal)
