"""Figure 5 — measured success rate: Qiskit vs T-SMT* vs R-SMT* (w=0.5).

The paper's headline experiment: all 12 benchmarks compiled by the
three configurations and executed (8192 trials on IBMQ16; here,
Monte-Carlo trials on the noisy simulator). Expected shape: R-SMT*
beats Qiskit on every benchmark (paper geomean 2.9x, up to 18x) and
beats T-SMT* everywhere; zero-SWAP-mappable benchmarks (BV, HS, QFT,
Adder) come out more reliable than the Toffoli family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions
from repro.experiments.common import (
    DEFAULT_TRIALS,
    BackendLike,
    BenchmarkRun,
    format_table,
    geometric_mean,
    harness_calibration,
    resolve_backend,
    run_benchmark_grid,
)
from repro.hardware import Calibration
from repro.programs import all_benchmarks
from repro.runtime import SweepCell


@dataclass
class Fig5Result:
    """Success rates per benchmark per variant."""

    runs: Dict[str, Dict[str, BenchmarkRun]]  # benchmark -> variant -> run
    variants: List[str]

    def success(self, benchmark: str, variant: str) -> float:
        return self.runs[benchmark][variant].success_rate

    def improvement_over(self, baseline: str, variant: str) -> Dict[str, float]:
        """Per-benchmark success ratio variant/baseline."""
        out = {}
        for b, by_variant in self.runs.items():
            base = by_variant[baseline].success_rate
            out[b] = (by_variant[variant].success_rate / base
                      if base > 0 else float("inf"))
        return out

    def geomean_improvement(self, baseline: str, variant: str) -> float:
        ratios = [r for r in
                  self.improvement_over(baseline, variant).values()
                  if r != float("inf")]
        return geometric_mean(ratios)

    def to_text(self) -> str:
        headers = ["benchmark"] + self.variants + ["swaps(r-smt*)"]
        body = []
        for b, by_variant in self.runs.items():
            row = [b] + [by_variant[v].success_rate for v in self.variants]
            row.append(by_variant["r-smt*"].compiled.swap_count)
            body.append(row)
        table = format_table(headers, body)
        gm = self.geomean_improvement("qiskit", "r-smt*")
        finite = [r for r in self.improvement_over("qiskit", "r-smt*").values()
                  if r != float("inf")]
        peak = max(finite) if finite else float("nan")
        return (table + f"\n\nR-SMT* vs Qiskit: geomean {gm:.2f}x, "
                        f"max {peak:.2f}x (paper: 2.9x geomean, 18x max)")


def run_fig5(calibration: Optional[Calibration] = None,
             trials: int = DEFAULT_TRIALS, seed: int = 7,
             subset: Optional[List[str]] = None,
             workers: int = 0, backend: BackendLike = None) -> Fig5Result:
    """Reproduce Figure 5 on the given calibration snapshot (or on
    ``backend``'s day-0 snapshot — any registered device name works)."""
    backend = resolve_backend(backend)
    cal = harness_calibration(backend, calibration)
    configs = [CompilerOptions.qiskit(),
               CompilerOptions.t_smt_star(routing="1bp"),
               CompilerOptions.r_smt_star(omega=0.5)]
    cells = [SweepCell(circuit=circuit, calibration=cal, options=options,
                       expected=expected, trials=trials, seed=seed,
                       backend=backend, key=(name, options.variant))
             for name, circuit, expected in all_benchmarks(subset)
             for options in configs]
    runs, _ = run_benchmark_grid(cells, workers=workers)
    return Fig5Result(runs=runs, variants=[c.variant for c in configs])
