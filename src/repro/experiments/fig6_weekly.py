"""Figure 6 — a week of daily executions: R-SMT* vs T-SMT* resilience.

The paper recompiles BV4, HS6 and Toffoli each day for a week against
that day's calibration and runs both variants. Expected shape: success
rates wander day to day (error rates drift), and R-SMT* stays at or
above T-SMT* (almost) every day because it re-adapts its placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler import CompilerOptions
from repro.experiments.common import (
    DEFAULT_TRIALS,
    BackendLike,
    format_table,
    resolve_backend,
)
from repro.hardware import CalibrationGenerator, ibmq16_topology
from repro.programs import get_benchmark
from repro.runtime import SweepCell, run_sweep

DEFAULT_BENCHMARKS = ("BV4", "HS6", "Toffoli")


@dataclass
class Fig6Result:
    """success[benchmark][variant] = per-day success-rate series."""

    days: int
    success: Dict[str, Dict[str, List[float]]]

    def days_r_beats_t(self, benchmark: str) -> int:
        r = self.success[benchmark]["r-smt*"]
        t = self.success[benchmark]["t-smt*"]
        return sum(1 for a, b in zip(r, t) if a >= b)

    def to_text(self) -> str:
        headers = ["series"] + [f"day{d}" for d in range(self.days)]
        body = []
        for bench, by_variant in self.success.items():
            for variant, series in by_variant.items():
                body.append([f"{bench} {variant}"] + list(series))
        table = format_table(headers, body)
        resilience = ", ".join(
            f"{b}: {self.days_r_beats_t(b)}/{self.days}"
            for b in self.success)
        return table + f"\n\ndays R-SMT* >= T-SMT*: {resilience}"


def run_fig6(days: int = 7, trials: int = DEFAULT_TRIALS, seed: int = 7,
             generator_seed: int = 2019,
             benchmarks: Tuple[str, ...] = DEFAULT_BENCHMARKS,
             workers: int = 0, backend: BackendLike = None) -> Fig6Result:
    """Reproduce Figure 6's week-long study.

    With ``backend``, the week runs on that machine's own calibration
    stream (its profile and seed; ``generator_seed`` is ignored).
    """
    backend = resolve_backend(backend)
    if backend is not None:
        calibrations = list(backend.days(days))
    else:
        generator = CalibrationGenerator(ibmq16_topology(),
                                         seed=generator_seed)
        calibrations = list(generator.days(days))
    configs = [CompilerOptions.t_smt_star(routing="1bp"),
               CompilerOptions.r_smt_star(omega=0.5)]
    # Benchmarks don't change day to day: build each circuit once and
    # share it across every (day, variant) cell.
    specs = {b: get_benchmark(b) for b in benchmarks}
    circuits = {b: spec.build() for b, spec in specs.items()}
    cells = [SweepCell(circuit=circuits[bench], calibration=cal,
                       options=options,
                       expected=specs[bench].expected_output,
                       trials=trials, seed=seed + day,
                       backend=backend, day=day,
                       key=(bench, options.variant, day))
             for day, cal in enumerate(calibrations)
             for bench in benchmarks
             for options in configs]

    success: Dict[str, Dict[str, List[float]]] = {
        b: {c.variant: [] for c in configs} for b in benchmarks}
    for result in run_sweep(cells, workers=workers, strict=True):
        bench, variant, _day = result.key
        success[bench][variant].append(result.success_rate)
    return Fig6Result(days=days, success=success)
