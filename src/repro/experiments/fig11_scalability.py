"""Figure 11 — compile-time scalability on random programs.

The paper sweeps randomly generated circuits (4-128 qubits, 128-2048
gates) and shows R-SMT* compile time exploding (hours at 32 qubits)
while the greedy heuristics stay under a second everywhere. We run the
same sweep on near-square grid machines sized to each program, capping
the optimal mapper's search with a time budget: once it exceeds the
cap, the measured wall time is a lower bound (reported with
``truncated=True``), which is all the scaling trend needs.

A post-paper tier extends the figure past compile time: GHZ-mirror
circuits at 30-100 qubits compile with the greedy heuristic and then
*execute* on the stabilizer engine (variant column ``"stabilizer"``),
demonstrating end-to-end noisy simulation at sizes where the dense
engines refuse outright — those points carry a ``success`` column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import CompilerOptions
from repro.hardware import CalibrationGenerator, square_topology
from repro.experiments.common import format_table
from repro.programs import ghz_mirror, random_circuit
from repro.runtime import SweepCell, run_sweep

#: The paper's full grid; the default run trims it to keep wall time sane.
PAPER_QUBITS = (4, 8, 32, 128)
PAPER_GATES = (128, 192, 256, 384, 512, 768, 1024, 1536, 2048)

DEFAULT_SMT_QUBITS = (4, 8, 32)
DEFAULT_GREEDY_QUBITS = (4, 8, 32, 128)
DEFAULT_GATES = (128, 256, 512, 1024, 2048)
#: GHZ-mirror sizes for the executed stabilizer tier.
DEFAULT_CLIFFORD_QUBITS = (30, 60, 100)


@dataclass
class ScalePoint:
    """One (variant, qubits, gates) compile-time sample.

    ``success`` is populated only by the stabilizer tier (the paper's
    sweep is compile-only); it is the noisy-execution success rate.
    """

    variant: str
    n_qubits: int
    n_gates: int
    compile_time: float
    truncated: bool
    success: Optional[float] = None

    @property
    def compile_time_usec(self) -> float:
        return self.compile_time * 1e6


@dataclass
class Fig11Result:
    points: List[ScalePoint]

    def series(self, variant: str, n_qubits: int) -> List[Tuple[int, float]]:
        return [(p.n_gates, p.compile_time) for p in self.points
                if p.variant == variant and p.n_qubits == n_qubits]

    def to_text(self) -> str:
        headers = ["variant", "qubits", "gates", "compile time",
                   "truncated", "success"]
        body = [[p.variant, p.n_qubits, p.n_gates,
                 _human_time(p.compile_time), p.truncated,
                 "-" if p.success is None else f"{p.success:.4f}"]
                for p in self.points]
        return format_table(headers, body)


def _human_time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def run_fig11(smt_qubits: Sequence[int] = DEFAULT_SMT_QUBITS,
              greedy_qubits: Sequence[int] = DEFAULT_GREEDY_QUBITS,
              gate_counts: Sequence[int] = DEFAULT_GATES,
              smt_time_cap: float = 10.0,
              seed: int = 2019,
              workers: int = 0,
              clifford_qubits: Sequence[int] = DEFAULT_CLIFFORD_QUBITS,
              clifford_trials: int = 2048) -> Fig11Result:
    """Reproduce Figure 11's compile-time sweep.

    Args:
        smt_time_cap: Per-compile budget for R-SMT*; samples hitting it
            are flagged truncated (their true cost is higher — the
            paper reports 3 hours at 32 qubits / 384 gates).
        workers: Parallel compile workers. Every point is a distinct
            configuration, so this sweep exercises pure scale-out (no
            cache reuse). Per-point ``compile_time`` is wall-clock
            measured inside the worker: on a host with spare cores the
            fan-out leaves it untouched, but oversubscribed workers
            contend for CPU and inflate it (and near-cap SMT points
            may truncate earlier) — keep the published scaling curve
            serial and use workers for smoke runs.
        clifford_qubits: GHZ-mirror sizes for the executed stabilizer
            tier (compiled with greedy-e, *simulated* on the
            stabilizer engine — the post-paper large-n extension).
            Pass ``()`` to skip the tier.
        clifford_trials: Shots per stabilizer-tier point.
    """
    calibrations = {}
    for n_qubits in sorted(set(smt_qubits) | set(greedy_qubits)
                           | set(clifford_qubits)):
        topo = square_topology(max(n_qubits, 4))
        calibrations[n_qubits] = CalibrationGenerator(
            topo, seed=seed).snapshot(0)

    smt_options = CompilerOptions.r_smt_star().with_(
        solver_time_limit=smt_time_cap)
    greedy_options = CompilerOptions.greedy_e()
    cells = []
    for variant, qubit_list, options in (
            ("greedye*", greedy_qubits, greedy_options),
            ("r-smt*", smt_qubits, smt_options)):
        for n_qubits in qubit_list:
            for n_gates in gate_counts:
                circuit = random_circuit(
                    n_qubits, n_gates,
                    seed=seed + n_qubits * 10000 + n_gates)
                cells.append(SweepCell(
                    circuit=circuit, calibration=calibrations[n_qubits],
                    options=options, simulate=False,
                    key=(variant, n_qubits, n_gates)))
    for n_qubits in clifford_qubits:
        circuit = ghz_mirror(n_qubits)
        cells.append(SweepCell(
            circuit=circuit, calibration=calibrations[n_qubits],
            options=greedy_options, engine="stabilizer",
            trials=clifford_trials, seed=seed,
            expected="0" * n_qubits,
            key=("stabilizer", n_qubits, circuit.gate_count())))

    points: List[ScalePoint] = []
    for result in run_sweep(cells, workers=workers, strict=True):
        variant, n_qubits, n_gates = result.key
        truncated = (variant == "r-smt*"
                     and not result.compiled.mapping.optimal)
        success = result.success_rate if variant == "stabilizer" else None
        points.append(ScalePoint(variant, n_qubits, n_gates,
                                 result.compiled.compile_time, truncated,
                                 success))
    return Fig11Result(points=points)
