"""Table 2 — benchmark characteristics (qubits, gates, CNOTs).

Prints each registered benchmark's measured inventory next to the
counts the paper reports. Decomposition details differ slightly (we
count measurement operations and use textbook Clifford+T expansions),
so gate totals land near — not exactly on — the paper's numbers; CNOT
counts match except for Adder, where the paper's (unpublished) adder
circuit uses 10 CNOTs to our 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import format_table
from repro.programs import benchmark_names, get_benchmark


@dataclass
class Table2Row:
    """One benchmark's paper-vs-measured inventory."""

    name: str
    qubits: int
    gates: int
    cnots: int
    paper_qubits: int
    paper_gates: int
    paper_cnots: int
    interaction_edges: int


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def to_text(self) -> str:
        headers = ["benchmark", "qubits", "gates", "CNOTs",
                   "paper q/g/c", "CNOT-graph edges"]
        body = [[r.name, r.qubits, r.gates, r.cnots,
                 f"{r.paper_qubits}/{r.paper_gates}/{r.paper_cnots}",
                 r.interaction_edges] for r in self.rows]
        return format_table(headers, body)


def run_table2() -> Table2Result:
    """Measure every registered benchmark against Table 2."""
    rows = []
    for name in benchmark_names():
        spec = get_benchmark(name)
        circuit = spec.build()
        rows.append(Table2Row(
            name=name,
            qubits=circuit.n_qubits,
            gates=circuit.gate_count(),
            cnots=circuit.cnot_count(),
            paper_qubits=spec.paper_qubits,
            paper_gates=spec.paper_gates,
            paper_cnots=spec.paper_cnots,
            interaction_edges=len(circuit.interaction_graph()),
        ))
    return Table2Result(rows=rows)
