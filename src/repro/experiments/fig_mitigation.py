"""Mitigation study — mitigated vs unmitigated success across Table 2.

Not a figure from the paper: the paper stops at noise-adaptive
*mapping*, and this study measures how much further post-compilation
*error mitigation* (:mod:`repro.mitigation`) lifts the measured success
probability on top of each mapping variant. The grid is (benchmark x
mapping variant x mitigation strategy), expressed as
:class:`~repro.runtime.SweepCell` rows with the ``mitigation`` axis
set, so every scaled-noise or folded execution rides the sweep
runtime's compile/stage/trace caches.

Expected shape: mitigation helps everywhere it has signal — ZNE
recovers several points of success on most benchmarks (more where the
raw success is mid-range, where the decay slope is steep), readout
inversion recovers roughly the per-qubit readout error mass, and the
stack beats either alone — while *ranking* between mapping variants is
preserved (mitigation multiplies reliability, it does not replace a
good mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import CompilerOptions
from repro.exceptions import ReproError
from repro.experiments.common import (
    DEFAULT_TRIALS,
    BackendLike,
    format_table,
    geometric_mean,
    harness_calibration,
    resolve_backend,
)
from repro.hardware import Calibration
from repro.mitigation import MitigationStrategy, ZneStrategy, \
    strategy_from_spec
from repro.programs import get_benchmark
from repro.runtime import CellResult, SweepCell, SweepResult, run_sweep

#: Default benchmark subset: spans the zero-SWAP star family and the
#: SWAP-heavy triangle family without paying for all twelve programs.
DEFAULT_BENCHMARKS: Tuple[str, ...] = (
    "BV4", "BV6", "HS2", "HS4", "Toffoli", "Peres",
)


@dataclass
class MitigationStudyResult:
    """Raw and mitigated success per (benchmark, variant, strategy)."""

    runs: Dict[str, Dict[str, Dict[str, CellResult]]]
    #: benchmark -> variant label -> strategy name -> cell result
    variants: List[str]
    strategies: List[str]
    sweep: Optional[SweepResult] = None

    def cell(self, benchmark: str, variant: str,
             strategy: str) -> CellResult:
        try:
            return self.runs[benchmark][variant][strategy]
        except KeyError:
            raise ReproError(
                f"no study cell ({benchmark!r}, {variant!r}, "
                f"{strategy!r})") from None

    def raw(self, benchmark: str, variant: str) -> float:
        """Unmitigated success (identical baseline for every strategy)."""
        return self.cell(benchmark, variant,
                         self.strategies[0]).mitigation.raw_success

    def mitigated(self, benchmark: str, variant: str,
                  strategy: str) -> float:
        return self.cell(benchmark, variant,
                         strategy).mitigation.mitigated_success

    def gain(self, benchmark: str, variant: str, strategy: str) -> float:
        """Mitigated minus raw success."""
        return self.cell(benchmark, variant, strategy).mitigation.gain

    def improved(self, variant: str, strategy: str) -> List[str]:
        """Benchmarks where the strategy beat the raw baseline."""
        return [b for b in self.runs
                if self.gain(b, variant, strategy) > 0.0]

    def geomean_lift(self, variant: str, strategy: str) -> float:
        """Geometric-mean mitigated/raw success ratio across benchmarks."""
        ratios = []
        for benchmark in self.runs:
            raw = self.raw(benchmark, variant)
            if raw > 0.0:
                ratios.append(
                    self.mitigated(benchmark, variant, strategy) / raw)
        return geometric_mean(ratios)

    def to_text(self) -> str:
        headers = ["benchmark", "variant", "raw"] + list(self.strategies)
        body = []
        for benchmark in self.runs:
            for variant in self.variants:
                row: List[object] = [benchmark, variant,
                                     self.raw(benchmark, variant)]
                row.extend(self.mitigated(benchmark, variant, s)
                           for s in self.strategies)
                body.append(row)
        lines = [format_table(headers, body), ""]
        for variant in self.variants:
            for strategy in self.strategies:
                improved = self.improved(variant, strategy)
                lines.append(
                    f"{strategy} on {variant}: geomean lift "
                    f"{self.geomean_lift(variant, strategy):.2f}x, "
                    f"improved {len(improved)}/{len(self.runs)} "
                    f"benchmarks")
        if self.sweep is not None:
            lines.append(self.sweep.summary())
        return "\n".join(lines)


def run_mitigation_study(
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
        variants: Optional[Sequence[CompilerOptions]] = None,
        strategies: Optional[Sequence[MitigationStrategy]] = None,
        calibration: Optional[Calibration] = None,
        trials: int = DEFAULT_TRIALS, seed: int = 7,
        workers: int = 0, cache_dir=None,
        backend: BackendLike = None) -> MitigationStudyResult:
    """Run the (benchmark x variant x strategy) mitigation grid.

    Args:
        benchmarks: Table-2 benchmark names.
        variants: Compiler configurations to map with (default: T-SMT*
            with one-bend routing, and R-SMT*).
        strategies: Mitigation strategies to apply (default: ZNE,
            readout inversion, and their stack).
        calibration: Machine snapshot (default: day-0 of the backend,
            or of IBMQ16).
        trials: Shots per execution (scaled executions included).
        seed: Base executor seed.
        workers: Sweep worker processes.
        cache_dir: Optional persistent compile/stage cache directory.
        backend: Machine to run on — a registered preset name or a
            :class:`~repro.backend.Backend` (default: IBMQ16).
    """
    backend = resolve_backend(backend)
    cal = harness_calibration(backend, calibration)
    variants = list(variants) if variants is not None else [
        CompilerOptions.t_smt_star(routing="1bp"),
        CompilerOptions.r_smt_star(omega=0.5),
    ]
    strategies = list(strategies) if strategies is not None else [
        ZneStrategy(),
        strategy_from_spec("readout"),
        strategy_from_spec("readout+zne"),
    ]
    specs = {name: get_benchmark(name) for name in benchmarks}
    circuits = {name: spec.build() for name, spec in specs.items()}
    cells = [SweepCell(circuit=circuits[name], calibration=cal,
                       options=options, expected=specs[name].expected_output,
                       trials=trials, seed=seed, mitigation=strategy,
                       backend=backend,
                       key=(name, options.variant, strategy.name))
             for name in benchmarks
             for options in variants
             for strategy in strategies]
    sweep = run_sweep(cells, workers=workers, cache_dir=cache_dir,
                      strict=True)

    runs: Dict[str, Dict[str, Dict[str, CellResult]]] = {}
    for result in sweep:
        benchmark, variant, strategy = result.key
        runs.setdefault(benchmark, {}).setdefault(variant, {})[strategy] = \
            result
    return MitigationStudyResult(
        runs=runs,
        variants=[options.variant for options in variants],
        strategies=[strategy.name for strategy in strategies],
        sweep=sweep)
