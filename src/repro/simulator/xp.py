"""Pluggable array-namespace backends for the batched statevector pass.

The batched trajectory engine (:mod:`repro.simulator.batch`) used to be
hard-wired to numpy and to a fixed ``1 << 22`` amplitude chunk budget.
This module turns "which array library runs the contraction" into a
registry value, mirroring the engine/backend registries:

* :class:`ArrayBackend` exposes exactly the small op surface the
  batched pass uses — ``zeros``, ``tensordot``, ``reshape``/
  ``moveaxis``, row/column gather-scatter, the |amplitude|^2 reduce,
  and host transfer (``asarray``/``to_numpy``) — plus a
  *device-memory-aware* :meth:`~ArrayBackend.amplitude_budget` that
  replaces the fixed chunk constant (64 MiB of complex128 on host
  backends, a fraction of free device memory on CUDA ones, with a
  ``REPRO_CHUNK_MIB`` environment override on all of them).
* :func:`register_array_backend` registers a zero-argument factory
  under a stable name. ``"numpy"`` is always present and is the
  default; ``"torch"`` and ``"cupy"`` are registered here but
  construct lazily, so merely importing this module never imports
  either library — availability is probed on demand.
* :func:`resolve_array_backend` is the tolerant front door the
  executor uses: unknown names fail fast with a did-you-mean hint
  (matching the engine/backend registries), while *known but
  unavailable* names (``--array-backend torch`` without torch
  installed) warn once per process and fall back to numpy.

All RNG sampling stays in numpy on the host regardless of the selected
backend — only the statevector contraction moves to the device — so
counts are bit-identical across backends for the same seeds (the
contraction feeds probabilities back to the host sampler through one
:meth:`~ArrayBackend.pattern_reduce` transfer per chunk).

Per-trace unitaries are staged through :meth:`ArrayBackend.stage`,
which memoizes device uploads by host-array identity: each distinct
gate matrix is transferred once per process (pinned host staging on
CUDA), not once per chunk.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import SimulationError
from repro.backend.engines import unknown_name_message

#: Host-side default chunk budget: 64 MiB of complex128 amplitudes
#: (16 bytes each) — the value the fixed ``_CHUNK_AMPLITUDES`` constant
#: used to hard-code.
_DEFAULT_BUDGET_AMPLITUDES = 1 << 22

#: Fraction of *free* device memory a CUDA backend budgets per chunk.
#: Conservative on purpose: the contraction holds the state tensor
#: plus one tensordot temporary of the same size.
_DEVICE_MEMORY_FRACTION = 0.25

#: Bound on the per-backend staged-unitary memo (matches the
#: ``cached_unitary`` lru bound; entries are 2x2/4x4 matrices).
_MAX_STAGED = 4096

#: Environment override for the chunk budget, in MiB of complex128
#: amplitudes (also settable via the CLI's ``--chunk-mib``).
CHUNK_ENV = "REPRO_CHUNK_MIB"


def _env_budget() -> Optional[int]:
    """The ``REPRO_CHUNK_MIB`` override in amplitudes, or ``None``."""
    raw = os.environ.get(CHUNK_ENV, "").strip()
    if not raw:
        return None
    try:
        mib = float(raw)
    except ValueError:
        raise SimulationError(
            f"{CHUNK_ENV} must be a number of MiB, got {raw!r}")
    if mib <= 0:
        raise SimulationError(
            f"{CHUNK_ENV} must be positive MiB, got {raw!r}")
    return max(1, int(mib * (1 << 20)) // 16)


class ArrayBackend:
    """One array library the batched statevector pass can run on.

    Subclasses set :attr:`name` and implement the op surface below;
    anything importing heavy libraries must do so in ``__init__`` (the
    registry constructs lazily, so an uninstalled library only fails
    when its backend is actually requested). Backends are stateless
    apart from the staged-unitary memo and are shared process-wide.
    """

    name: str = ""

    # ------------------------------------------------------------------
    # Device / memory
    # ------------------------------------------------------------------
    def device(self) -> str:
        """Human-readable description of the executing device."""
        return "cpu"

    def native_amplitude_budget(self) -> int:
        """The backend's own chunk budget, in complex128 amplitudes.

        Host backends default to 64 MiB; device backends override this
        with a query of free device memory.
        """
        return _DEFAULT_BUDGET_AMPLITUDES

    def amplitude_budget(self) -> int:
        """Amplitudes the batched pass may hold per chunk.

        The ``REPRO_CHUNK_MIB`` environment override wins when set
        (64 MiB default on host backends otherwise); device backends
        size the native budget to the backing device's free memory —
        the memory-system-aware replacement for the old fixed
        ``_CHUNK_AMPLITUDES`` constant.
        """
        override = _env_budget()
        if override is not None:
            return override
        return self.native_amplitude_budget()

    # ------------------------------------------------------------------
    # Op surface (exactly what repro.simulator.batch uses)
    # ------------------------------------------------------------------
    def zeros(self, shape: Tuple[int, ...]):
        """A complex128 zero tensor on the device."""
        raise NotImplementedError

    def asarray(self, host: np.ndarray):
        """Upload a host numpy array to the device (identity on host
        backends)."""
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        """Bring a device array back to a host numpy array (identity
        on host backends)."""
        raise NotImplementedError

    def tensordot(self, a, b, axes):
        raise NotImplementedError

    def moveaxis(self, a, source, destination):
        raise NotImplementedError

    def reshape(self, a, shape):
        raise NotImplementedError

    def take_rows(self, a, rows: np.ndarray):
        """Gather ``a[rows]`` (rows is a host int64 index array)."""
        raise NotImplementedError

    def put_rows(self, a, rows: np.ndarray, values) -> None:
        """Scatter ``a[rows] = values``."""
        raise NotImplementedError

    def pattern_reduce(self, state, order: np.ndarray,
                       n_patterns: int) -> np.ndarray:
        """The batched pass's closing |amplitude|^2 reduce.

        Flattens the ``(batch, 2, ..., 2)`` state, takes squared
        magnitudes, permutes the basis columns by *order* (which sorts
        them by measured-pattern code, so each code owns an equal
        contiguous block) and collapses each block with one
        reshape+sum. Returns a **host** ``(batch, n_patterns)`` float64
        matrix — the single device-to-host transfer of a chunk.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Unitary staging
    # ------------------------------------------------------------------
    def stage(self, host: np.ndarray):
        """The device copy of a (cached, read-only) host unitary.

        Memoized by host-array identity: ``cached_unitary`` returns one
        immutable array per (gate, param), so each distinct unitary is
        uploaded once per process rather than once per chunk. The memo
        holds a reference to the host array (so ``id`` cannot be
        recycled under it) and is FIFO-bounded like the unitary cache
        itself.
        """
        staged = self.__dict__.setdefault("_staged", {})
        entry = staged.get(id(host))
        if entry is None:
            while len(staged) >= _MAX_STAGED:
                staged.pop(next(iter(staged)))
            entry = staged[id(host)] = (host, self.asarray(host))
        return entry[1]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
ArrayBackendFactory = Callable[[], ArrayBackend]

_FACTORIES: Dict[str, ArrayBackendFactory] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
_WARNED_UNAVAILABLE: Set[str] = set()
_DEFAULT_NAME = "numpy"


def register_array_backend(name: str):
    """Decorator registering a zero-argument :class:`ArrayBackend`
    factory under *name* (case-insensitive on lookup; last wins,
    matching the engine/backend registries)::

        @register_array_backend("mylib")
        def mylib() -> ArrayBackend:
            return MyLibBackend()

    The factory may raise ``ImportError`` (or any exception) when its
    library is missing; the name then shows as unavailable and
    resolving it falls back to numpy with a warning.
    """
    key = name.lower()

    def decorate(factory: ArrayBackendFactory) -> ArrayBackendFactory:
        _FACTORIES[key] = factory
        _INSTANCES.pop(key, None)
        _WARNED_UNAVAILABLE.discard(key)
        return factory

    return decorate


def registered_array_backends() -> Tuple[str, ...]:
    """Registered array-backend names, in registration order."""
    return tuple(_FACTORIES)


def _construct(key: str) -> ArrayBackend:
    instance = _INSTANCES.get(key)
    if instance is None:
        instance = _INSTANCES[key] = _FACTORIES[key]()
    return instance


def array_backend_available(name: str) -> bool:
    """Whether *name* is registered and its library constructs."""
    key = str(name).lower()
    if key not in _FACTORIES:
        return False
    try:
        _construct(key)
        return True
    except Exception:
        return False


def array_backend_status() -> Dict[str, str]:
    """Per-backend availability, for listings (``repro engines``).

    Maps each registered name to ``"available (<device>)"`` or
    ``"unavailable (<reason>)"``.
    """
    status: Dict[str, str] = {}
    for key in _FACTORIES:
        try:
            backend = _construct(key)
            status[key] = f"available ({backend.device()})"
        except Exception as exc:
            reason = str(exc).splitlines()[0] if str(exc) else \
                type(exc).__name__
            status[key] = f"unavailable ({reason})"
    return status


def get_array_backend(name: Optional[Union[str, ArrayBackend]] = None
                      ) -> ArrayBackend:
    """The backend behind *name*, strictly.

    ``None`` resolves to the process default (see
    :func:`set_default_array_backend`); an :class:`ArrayBackend`
    instance passes through.

    Raises:
        SimulationError: Unknown names (did-you-mean hint, like the
            engine registry) and registered-but-unavailable backends
            (with the underlying import failure). Use
            :func:`resolve_array_backend` for the warn-and-fall-back
            contract instead.
    """
    if isinstance(name, ArrayBackend):
        return name
    key = (_DEFAULT_NAME if name is None else str(name)).lower()
    if key not in _FACTORIES:
        raise SimulationError(
            unknown_name_message("array backend", name, _FACTORIES))
    try:
        return _construct(key)
    except SimulationError:
        raise
    except Exception as exc:
        raise SimulationError(
            f"array backend {key!r} is registered but unavailable: "
            f"{exc}") from exc


def resolve_array_backend(name: Optional[Union[str, ArrayBackend]] = None
                          ) -> ArrayBackend:
    """Resolve *name* with graceful degradation.

    Unknown names still raise (a typo should fail fast, with the
    registry's did-you-mean hint), but a registered backend whose
    library is missing — ``--array-backend torch`` on a box without
    torch — warns once per process and falls back to ``"numpy"``,
    which is always available. Results are unaffected by construction:
    every backend produces bit-identical counts.
    """
    if isinstance(name, ArrayBackend):
        return name
    key = (_DEFAULT_NAME if name is None else str(name)).lower()
    if key not in _FACTORIES:
        raise SimulationError(
            unknown_name_message("array backend", name, _FACTORIES))
    try:
        return _construct(key)
    except Exception as exc:
        if key not in _WARNED_UNAVAILABLE:
            _WARNED_UNAVAILABLE.add(key)
            warnings.warn(
                f"array backend {key!r} is unavailable ({exc}); "
                f"falling back to 'numpy' (counts are bit-identical "
                f"across array backends, only throughput differs)",
                RuntimeWarning, stacklevel=3)
        return _construct("numpy")


def set_default_array_backend(name: Optional[str]) -> None:
    """Set the process-wide default (what ``array_backend=None``
    resolves to); ``None`` restores ``"numpy"``.

    The CLI's ``repro experiment --array-backend`` uses this so every
    harness inherits the selection without per-harness plumbing. The
    name is validated against the registry immediately (did-you-mean
    on typos); availability is still resolved per call, with the
    warn-and-fall-back contract.
    """
    global _DEFAULT_NAME
    if name is None:
        _DEFAULT_NAME = "numpy"
        return
    key = str(name).lower()
    if key not in _FACTORIES:
        raise SimulationError(
            unknown_name_message("array backend", name, _FACTORIES))
    _DEFAULT_NAME = key


def default_array_backend() -> str:
    """The current process-wide default backend name."""
    return _DEFAULT_NAME


#: Preference order of the ``"gpu"`` execution engine: CUDA-native
#: first, then torch (which still buys multi-threaded CPU contraction
#: when no GPU is present).
ACCELERATED_PREFERENCE: Tuple[str, ...] = ("cupy", "torch")


def best_accelerated_backend() -> Optional[ArrayBackend]:
    """The most-preferred available non-numpy backend, or ``None``."""
    for name in ACCELERATED_PREFERENCE:
        if array_backend_available(name):
            return _construct(name)
    return None


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
@register_array_backend("numpy")
class NumpyBackend(ArrayBackend):
    """The always-available host backend (bit-for-bit the pre-seam
    numpy path: every op below is the exact call the batched pass used
    to make inline)."""

    name = "numpy"

    def zeros(self, shape):
        return np.zeros(shape, dtype=np.complex128)

    def asarray(self, host):
        return host

    def to_numpy(self, array):
        return array

    def tensordot(self, a, b, axes):
        return np.tensordot(a, b, axes=axes)

    def moveaxis(self, a, source, destination):
        return np.moveaxis(a, source, destination)

    def reshape(self, a, shape):
        return a.reshape(shape)

    def take_rows(self, a, rows):
        return a[rows]

    def put_rows(self, a, rows, values):
        a[rows] = values

    def pattern_reduce(self, state, order, n_patterns):
        probs = np.abs(state.reshape(state.shape[0], -1)) ** 2
        return probs[:, order].reshape(
            state.shape[0], n_patterns, -1).sum(axis=2)

    def stage(self, host):
        return host  # already on the host — nothing to upload


@register_array_backend("torch")
class TorchBackend(ArrayBackend):
    """Torch backend: CUDA when available, multi-threaded CPU
    otherwise. Constructed lazily — importing :mod:`repro.simulator.xp`
    never imports torch."""

    name = "torch"

    def __init__(self) -> None:
        import torch  # noqa: F401 — availability probe + op namespace

        self._torch = torch
        self._device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu")

    def device(self) -> str:
        if self._device.type == "cuda":
            return f"cuda:{self._torch.cuda.get_device_name(0)}"
        return f"cpu:{self._torch.get_num_threads()}-threads"

    def native_amplitude_budget(self) -> int:
        if self._device.type == "cuda":
            free, _total = self._torch.cuda.mem_get_info()
            return max(1, int(free * _DEVICE_MEMORY_FRACTION) // 16)
        return _DEFAULT_BUDGET_AMPLITUDES

    def zeros(self, shape):
        return self._torch.zeros(shape, dtype=self._torch.complex128,
                                 device=self._device)

    def asarray(self, host):
        tensor = self._torch.from_numpy(np.ascontiguousarray(host))
        if self._device.type == "cuda":
            # Pinned host staging makes the (once-per-unitary) upload
            # async-capable instead of a pageable-memory copy.
            tensor = tensor.pin_memory()
            return tensor.to(self._device, non_blocking=True)
        return tensor

    def to_numpy(self, array):
        return array.cpu().numpy()

    def tensordot(self, a, b, axes):
        return self._torch.tensordot(a, b, dims=axes)

    def moveaxis(self, a, source, destination):
        return self._torch.movedim(a, source, destination)

    def reshape(self, a, shape):
        return a.reshape(shape)

    def take_rows(self, a, rows):
        return a[self._torch.from_numpy(rows).to(self._device)]

    def put_rows(self, a, rows, values):
        a[self._torch.from_numpy(rows).to(self._device)] = values

    def pattern_reduce(self, state, order, n_patterns):
        probs = self._torch.abs(state.reshape(state.shape[0], -1)) ** 2
        gathered = probs[:, self._torch.from_numpy(order).to(self._device)]
        reduced = gathered.reshape(state.shape[0], n_patterns, -1).sum(dim=2)
        return reduced.cpu().numpy().astype(np.float64, copy=False)


@register_array_backend("cupy")
class CupyBackend(ArrayBackend):
    """CuPy backend (CUDA). Constructed lazily, like torch."""

    name = "cupy"

    def __init__(self) -> None:
        import cupy  # noqa: F401

        self._cp = cupy
        # Fail at construction (not mid-chunk) when no device exists.
        cupy.cuda.runtime.getDeviceCount()

    def device(self) -> str:
        props = self._cp.cuda.runtime.getDeviceProperties(0)
        name = props["name"]
        return f"cuda:{name.decode() if isinstance(name, bytes) else name}"

    def native_amplitude_budget(self) -> int:
        free, _total = self._cp.cuda.Device().mem_info
        return max(1, int(free * _DEVICE_MEMORY_FRACTION) // 16)

    def zeros(self, shape):
        return self._cp.zeros(shape, dtype=self._cp.complex128)

    def asarray(self, host):
        # cupy.asarray stages through a pinned buffer internally for
        # host sources; explicit pinning is unnecessary for 4x4 tiles.
        return self._cp.asarray(host)

    def to_numpy(self, array):
        return self._cp.asnumpy(array)

    def tensordot(self, a, b, axes):
        return self._cp.tensordot(a, b, axes=axes)

    def moveaxis(self, a, source, destination):
        return self._cp.moveaxis(a, source, destination)

    def reshape(self, a, shape):
        return a.reshape(shape)

    def take_rows(self, a, rows):
        return a[self._cp.asarray(rows)]

    def put_rows(self, a, rows, values):
        a[self._cp.asarray(rows)] = values

    def pattern_reduce(self, state, order, n_patterns):
        probs = self._cp.abs(state.reshape(state.shape[0], -1)) ** 2
        gathered = probs[:, self._cp.asarray(order)]
        reduced = gathered.reshape(state.shape[0], n_patterns, -1).sum(axis=2)
        return self._cp.asnumpy(reduced)
