"""Monte-Carlo noisy execution of compiled programs.

Stands in for the paper's 8192-trial runs on IBMQ16: each trial executes
the physical circuit on a statevector, with stochastic Pauli errors
sampled per gate, idle decoherence sampled per waiting window (computed
from the compiled schedule's start times), and readout bit flips on
measurement. The fraction of trials returning the benchmark's known
answer is the measured success rate.

Trials with no sampled error events short-circuit to a draw from the
ideal output distribution, which keeps thousand-trial runs fast without
changing the sampled law.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.compile import CompiledProgram
from repro.exceptions import SimulationError
from repro.hardware.calibration import Calibration
from repro.ir.circuit import Circuit
from repro.simulator.noise import NoiseModel, PauliEvent
from repro.simulator.statevector import StateVector
from repro.simulator.success import distribution_overlap


@dataclass
class ExecutionResult:
    """Outcome of a Monte-Carlo run.

    Attributes:
        counts: Measured classical strings (cbit 0 first) -> frequency.
        trials: Number of trials executed.
        expected: The benchmark's known answer, when provided.
        ideal_distribution: Noise-free outcome distribution.
    """

    counts: Dict[str, int]
    trials: int
    expected: Optional[str] = None
    ideal_distribution: Dict[str, float] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Fraction of trials measuring the expected answer."""
        if self.expected is None:
            raise SimulationError("no expected outcome recorded")
        return self.counts.get(self.expected, 0) / self.trials

    @property
    def overlap(self) -> float:
        """Distribution overlap sum_o min(p_ideal, p_measured)."""
        empirical = {o: c / self.trials for o, c in self.counts.items()}
        return distribution_overlap(self.ideal_distribution, empirical)

    def top_outcome(self) -> str:
        """Most frequent measured string."""
        return max(self.counts, key=lambda o: (self.counts[o], o))


class _CompactProgram:
    """Physical program restricted to the hardware qubits it touches."""

    def __init__(self, circuit: Circuit,
                 times: Sequence[Tuple[float, float]],
                 topology=None) -> None:
        used = circuit.used_qubits()
        if not used:
            raise SimulationError("program touches no qubits")
        self.hw_to_dense = {h: i for i, h in enumerate(used)}
        self.used = used
        self.n_qubits = len(used)
        self.gates = list(circuit.gates)
        self.times = list(times)
        self.n_cbits = circuit.n_cbits
        # Measurement map: dense qubit -> cbit; validated terminal.
        self.measures: List[Tuple[int, int, int]] = []  # (hw, dense, cbit)
        seen_measure = set()
        for gate in self.gates:
            for q in gate.qubits:
                if q in seen_measure and gate.name != "barrier":
                    raise SimulationError(
                        f"operation on qubit {q} after its measurement")
            if gate.is_measure:
                hw = gate.qubits[0]
                self.measures.append((hw, self.hw_to_dense[hw], gate.cbit))
                seen_measure.add(hw)
        # Idle window preceding each gate, per participating qubit.
        last_finish: Dict[int, float] = {}
        self.idle_before: List[Tuple[Tuple[int, float], ...]] = []
        for gate, (start, duration) in zip(self.gates, self.times):
            gaps = []
            for q in gate.qubits:
                previous = last_finish.get(q)
                if previous is not None and start > previous + 1e-9:
                    gaps.append((q, start - previous))
                last_finish[q] = start + duration
            self.idle_before.append(tuple(gaps))
        # Crosstalk exposure: for each two-qubit gate, how many other
        # two-qubit gates overlap it in time on an adjacent coupling.
        self.concurrent_neighbors: List[int] = [0] * len(self.gates)
        two_q = [(i, g, self.times[i]) for i, g in enumerate(self.gates)
                 if g.is_two_qubit]
        for idx, (i, g1, (s1, d1)) in enumerate(two_q):
            qs1 = set(g1.qubits)
            for j, g2, (s2, d2) in two_q[idx + 1:]:
                if s1 + d1 <= s2 + 1e-9 or s2 + d2 <= s1 + 1e-9:
                    continue  # no time overlap
                qs2 = set(g2.qubits)
                if qs1 & qs2:
                    continue  # same gate chain, not crosstalk
                if topology is not None and not any(
                        topology.is_adjacent(a, b)
                        for a in qs1 for b in qs2):
                    continue  # spatially remote couplings
                self.concurrent_neighbors[i] += 1
                self.concurrent_neighbors[j] += 1


def _dense_event(event: PauliEvent, mapping: Dict[int, int]) -> Tuple[int, str]:
    return mapping[event.qubit], event.name


def _run_state(compact: _CompactProgram,
               error_plan: Optional[List[List[Tuple[int, str]]]]
               ) -> StateVector:
    """Execute the gate list; apply planned Pauli events after each gate."""
    state = StateVector(compact.n_qubits)
    for i, gate in enumerate(compact.gates):
        if gate.name == "barrier" or gate.is_measure:
            pass
        else:
            dense = tuple(compact.hw_to_dense[q] for q in gate.qubits)
            state.apply_gate(gate.name, dense, param=gate.param)
        if error_plan is not None:
            for dense_q, pauli in error_plan[i]:
                state.apply_gate(pauli, (dense_q,))
    return state


def _ideal_distribution(compact: _CompactProgram) -> Dict[str, float]:
    """Noise-free distribution over classical strings."""
    state = _run_state(compact, None)
    probs = state.probabilities()
    out: Dict[str, float] = {}
    n = compact.n_qubits
    for index, p in enumerate(probs):
        if p < 1e-12:
            continue
        bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
        string = _classical_string(compact, bits)
        out[string] = out.get(string, 0.0) + float(p)
    return out


def _classical_string(compact: _CompactProgram, bits: Sequence[int]) -> str:
    chars = ["0"] * compact.n_cbits
    for _, dense, cbit in compact.measures:
        chars[cbit] = str(bits[dense])
    return "".join(chars)


def execute(compiled: CompiledProgram, calibration: Calibration,
            trials: int = 1024, seed: int = 0,
            expected: Optional[str] = None,
            noise_model: Optional[NoiseModel] = None) -> ExecutionResult:
    """Run *compiled* for *trials* shots on the noisy simulator.

    Args:
        compiled: Output of :func:`repro.compiler.compile_circuit`.
        calibration: The machine snapshot to execute under (normally the
            one the program was compiled against; pass a different day's
            snapshot to model stale-calibration compilation).
        trials: Shot count (the paper uses 8192).
        seed: Master RNG seed; results are reproducible.
        expected: The benchmark's known answer string.
        noise_model: Override the default all-mechanisms model.

    Returns:
        Counts plus success-rate/overlap accessors.
    """
    if trials < 1:
        raise SimulationError("need at least one trial")
    noise = noise_model or NoiseModel(calibration)
    compact = _CompactProgram(compiled.physical.circuit,
                              compiled.physical.times,
                              topology=calibration.topology)
    rng = np.random.default_rng(seed)
    ideal = _ideal_distribution(compact)
    ideal_outcomes = sorted(ideal)
    ideal_probs = np.array([ideal[o] for o in ideal_outcomes])
    ideal_probs = ideal_probs / ideal_probs.sum()

    counts: Dict[str, int] = {}
    for _ in range(trials):
        plan, any_error = _sample_error_plan(compact, noise, rng)
        if not any_error:
            outcome = ideal_outcomes[
                int(rng.choice(len(ideal_outcomes), p=ideal_probs))]
        else:
            state = _run_state(compact, plan)
            bits = state.sample(rng)
            outcome = _classical_string(compact, bits)
        # Readout flips are sampled against the true measured bit so the
        # calibration's readout asymmetry is honored.
        chars = list(outcome)
        for hw, _, cbit in compact.measures:
            if noise.sample_readout_flip(hw, rng, bit=int(chars[cbit])):
                chars[cbit] = "1" if chars[cbit] == "0" else "0"
        outcome = "".join(chars)
        counts[outcome] = counts.get(outcome, 0) + 1

    return ExecutionResult(counts=counts, trials=trials, expected=expected,
                           ideal_distribution=ideal)


def _sample_error_plan(compact: _CompactProgram, noise: NoiseModel,
                       rng: np.random.Generator
                       ) -> Tuple[List[List[Tuple[int, str]]], bool]:
    """Sample gate + idle Pauli events for one trial."""
    plan: List[List[Tuple[int, str]]] = []
    any_error = False
    for i, (gate, gaps) in enumerate(zip(compact.gates,
                                         compact.idle_before)):
        events: List[Tuple[int, str]] = []
        for qubit, idle in gaps:
            for ev in noise.sample_idle_error(qubit, idle, rng):
                events.append(_dense_event(ev, compact.hw_to_dense))
        for ev in noise.sample_gate_error(
                gate, rng,
                concurrent_neighbors=compact.concurrent_neighbors[i]):
            events.append(_dense_event(ev, compact.hw_to_dense))
        if events:
            any_error = True
        plan.append(events)
    return plan, any_error
