"""Monte-Carlo noisy execution of compiled programs.

Stands in for the paper's 8192-trial runs on IBMQ16: each trial executes
the physical circuit on a statevector, with stochastic Pauli errors
sampled per gate, idle decoherence sampled per waiting window (computed
from the compiled schedule's start times), and readout bit flips on
measurement. The fraction of trials returning the benchmark's known
answer is the measured success rate.

Engines are pluggable strategies registered with
:func:`repro.backend.engines.register_engine`; :func:`execute` resolves
its ``engine`` argument through that registry, so new engines (the
``"analytic"`` estimator in :mod:`repro.simulator.analytic`, future GPU
statevector backends) register themselves without touching this
module. The two Monte-Carlo built-ins sample the same law:

* ``engine="batched"`` (default, :class:`BatchedEngine`) lowers the
  program once into a :class:`~repro.simulator.trace.ProgramTrace` and
  samples all trials with array-level numpy operations
  (:mod:`repro.simulator.batch`): one Bernoulli matrix for every error
  site, a single vectorized draw for all error-free trials, and one
  statevector simulation per *distinct* noisy error plan.
* ``engine="trial"`` (:class:`TrialEngine`) is the legacy per-trial
  loop, kept for cross-validation (the batched engine is tested to
  agree with it within a TVD bound) and for exotic
  :class:`NoiseModel` subclasses that override the sampling methods
  rather than the probability accessors — :func:`execute` detects
  such models and falls back to it automatically.

Trials with no sampled error events short-circuit to a draw from the
ideal output distribution, which keeps thousand-trial runs fast without
changing the sampled law.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.backend.engines import ExecutionEngine, get_engine, register_engine
from repro.compiler.compile import CompiledProgram
from repro.exceptions import SimulationCapacityError, SimulationError
from repro.hardware.calibration import Calibration
from repro.simulator.batch import run_batched
from repro.simulator.noise import NoiseModel, PauliEvent
from repro.simulator.statevector import StateVector
from repro.simulator.success import distribution_overlap
from repro.simulator.trace import CompactProgram, ProgramTrace
from repro.simulator.xp import resolve_array_backend

#: Backward-compatible alias (the class moved to repro.simulator.trace).
_CompactProgram = CompactProgram


@dataclass
class ExecutionResult:
    """Outcome of a Monte-Carlo run.

    Attributes:
        counts: Measured classical strings (cbit 0 first) -> frequency.
        trials: Number of trials executed.
        expected: The benchmark's known answer, when provided.
        ideal_distribution: Noise-free outcome distribution.
    """

    counts: Dict[str, int]
    trials: int
    expected: Optional[str] = None
    ideal_distribution: Dict[str, float] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Fraction of trials measuring the expected answer."""
        if self.expected is None:
            raise SimulationError("no expected outcome recorded")
        return self.counts.get(self.expected, 0) / self.trials

    @property
    def overlap(self) -> float:
        """Distribution overlap sum_o min(p_ideal, p_measured)."""
        empirical = {o: c / self.trials for o, c in self.counts.items()}
        return distribution_overlap(self.ideal_distribution, empirical)

    def top_outcome(self) -> str:
        """Most frequent measured string."""
        return max(self.counts, key=lambda o: (self.counts[o], o))


#: The per-trial sampling extension points of :class:`NoiseModel`. The
#: batched engine lowers error sites from the probability accessors
#: only, so a subclass overriding one of these must run per-trial.
_SAMPLING_HOOKS = ("sample_gate_error", "sample_idle_error",
                   "sample_readout_flip")


def _overrides_sampling_hooks(noise: NoiseModel) -> bool:
    return any(getattr(type(noise), hook) is not getattr(NoiseModel, hook)
               for hook in _SAMPLING_HOOKS)


#: (noise-model class, engine name) pairs already warned about — the
#: behavior is correct but easy to miss in sweep timings/results, so
#: each combination is called out once per process.
_WARNED_FALLBACK_CLASSES: Set[Tuple[type, str]] = set()


def _overridden_hooks(cls: type) -> List[str]:
    return [hook for hook in _SAMPLING_HOOKS
            if getattr(cls, hook) is not getattr(NoiseModel, hook)]


def _warn_trial_fallback(noise: NoiseModel, engine_name: str) -> None:
    cls = type(noise)
    if (cls, engine_name) in _WARNED_FALLBACK_CLASSES:
        return
    _WARNED_FALLBACK_CLASSES.add((cls, engine_name))
    warnings.warn(
        f"{cls.__name__} overrides the per-trial sampling hook(s) "
        f"{', '.join(_overridden_hooks(cls))}; "
        f"execute(engine={engine_name!r}) falls back to the slower "
        f"engine='trial' for it. Subclass via the probability accessors "
        f"(gate_error_probability / idle_rates / "
        f"readout_flip_probability) to keep the batched engine, and "
        f"define trace_key() to stay trace-cacheable.",
        RuntimeWarning, stacklevel=3)


def _warn_hooks_ignored(noise: NoiseModel, engine_name: str) -> None:
    """An accessor-lowering engine with no fallback cannot honor the
    model's custom sampling — say so once instead of silently dropping
    it (the analytic engine is the in-tree case)."""
    cls = type(noise)
    if (cls, engine_name) in _WARNED_FALLBACK_CLASSES:
        return
    _WARNED_FALLBACK_CLASSES.add((cls, engine_name))
    warnings.warn(
        f"{cls.__name__} overrides the per-trial sampling hook(s) "
        f"{', '.join(_overridden_hooks(cls))}, but "
        f"engine={engine_name!r} derives its error law from the "
        f"probability accessors only and has no per-trial fallback; "
        f"the custom sampling is ignored.",
        RuntimeWarning, stacklevel=3)


#: Engine names already warned about dropping an explicit array-backend
#: selection (engines without a dense contraction have nothing to run
#: on it; the selection is harmless but worth saying once).
_WARNED_ARRAY_IGNORED: Set[str] = set()


def _warn_array_backend_ignored(engine_name: str) -> None:
    if engine_name in _WARNED_ARRAY_IGNORED:
        return
    _WARNED_ARRAY_IGNORED.add(engine_name)
    warnings.warn(
        f"engine={engine_name!r} does not run a pluggable array-backend "
        f"contraction; the array_backend selection is ignored (results "
        f"are unaffected — counts are array-backend-independent).",
        RuntimeWarning, stacklevel=3)


def check_dense_capacity(n_qubits: int, budget: int,
                         engine_name: str) -> None:
    """Refuse a dense run that cannot fit the amplitude budget.

    A ``2**n_qubits`` complex statevector beyond
    :meth:`~repro.simulator.xp.ArrayBackend.amplitude_budget` would
    die in the allocator (or swap the host to death) long after the
    user could do anything about it; fail fast with the remedy
    instead.
    """
    if (1 << n_qubits) > budget:
        ceiling = max(0, budget).bit_length() - 1
        raise SimulationCapacityError(
            f"engine={engine_name!r} needs a dense statevector of "
            f"2**{n_qubits} amplitudes for this {n_qubits}-qubit "
            f"program, but the array backend's amplitude budget allows "
            f"at most {ceiling} qubits (raise it with REPRO_CHUNK_MIB "
            f"or --chunk-mib); try `--engine stabilizer` for Clifford "
            f"circuits, or `--engine auto` to route automatically.")


def _dense_event(event: PauliEvent, mapping: Dict[int, int]) -> Tuple[int, str]:
    return mapping[event.qubit], event.name


def _run_state(compact: CompactProgram,
               error_plan: Optional[List[List[Tuple[int, str]]]]
               ) -> StateVector:
    """Execute the gate list; apply planned Pauli events after each gate."""
    state = StateVector(compact.n_qubits)
    for i, gate in enumerate(compact.gates):
        if gate.name == "barrier" or gate.is_measure:
            pass
        else:
            dense = tuple(compact.hw_to_dense[q] for q in gate.qubits)
            state.apply_gate(gate.name, dense, param=gate.param)
        if error_plan is not None:
            for dense_q, pauli in error_plan[i]:
                state.apply_gate(pauli, (dense_q,))
    return state


def _ideal_distribution(compact: CompactProgram) -> Dict[str, float]:
    """Noise-free distribution over classical strings."""
    state = _run_state(compact, None)
    probs = state.probabilities()
    out: Dict[str, float] = {}
    n = compact.n_qubits
    for index, p in enumerate(probs):
        if p < 1e-12:
            continue
        bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
        string = _classical_string(compact, bits)
        out[string] = out.get(string, 0.0) + float(p)
    return out


def _classical_string(compact: CompactProgram, bits: Sequence[int]) -> str:
    chars = ["0"] * compact.n_cbits
    for _, dense, cbit in compact.measures:
        chars[cbit] = str(bits[dense])
    return "".join(chars)


@register_engine
class BatchedEngine(ExecutionEngine):
    """Vectorized Monte-Carlo over a lowered :class:`ProgramTrace`.

    Lowers error sites from the noise model's probability accessors
    (never the per-trial ``sample_*`` hooks — hence the declared
    fallback) and samples every trial with array-level operations; see
    :mod:`repro.simulator.batch`. The statevector contraction runs on
    the selected :class:`~repro.simulator.xp.ArrayBackend` (numpy by
    default) while every RNG draw stays on the host, so counts are
    bit-identical across array backends.
    """

    name = "batched"
    uses_probability_accessors = True
    fallback = "trial"
    accepts_array_backend = True

    def run(self, compiled: CompiledProgram, calibration: Calibration,
            noise: NoiseModel, *, trials: int, seed: int,
            expected: Optional[str] = None,
            trace_cache=None, array_backend=None) -> ExecutionResult:
        xb = resolve_array_backend(array_backend)
        check_dense_capacity(len(compiled.physical.circuit.used_qubits()),
                             xb.amplitude_budget(), self.name)
        rng = np.random.default_rng(seed)
        trace = (trace_cache.get(compiled, noise, calibration)
                 if trace_cache is not None else None)
        if trace is None:
            compact = CompactProgram(compiled.physical.circuit,
                                     compiled.physical.times,
                                     topology=calibration.topology)
            trace = ProgramTrace(compact, noise)
            if trace_cache is not None:
                # Materialize the ideal distribution (needed below
                # anyway) before caching, so a persistent trace tier
                # captures the dense simulation — the dominant lowering
                # cost — not just the site tables.
                _ = trace.ideal_distribution
                trace_cache.put(compiled, noise, calibration, trace)
        counts = run_batched(trace, trials, rng, array_backend=xb)
        return ExecutionResult(counts=counts, trials=trials,
                               expected=expected,
                               ideal_distribution=trace.ideal_distribution)


@register_engine
class TrialEngine(ExecutionEngine):
    """The legacy per-trial Monte-Carlo loop.

    Samples one error plan per trial through the noise model's
    ``sample_*`` hooks, so it honors subclasses that customize the
    sampling itself; kept as the cross-validation reference for the
    batched engine.
    """

    name = "trial"

    def run(self, compiled: CompiledProgram, calibration: Calibration,
            noise: NoiseModel, *, trials: int, seed: int,
            expected: Optional[str] = None,
            trace_cache=None) -> ExecutionResult:
        check_dense_capacity(
            len(compiled.physical.circuit.used_qubits()),
            resolve_array_backend("numpy").amplitude_budget(), self.name)
        rng = np.random.default_rng(seed)
        compact = CompactProgram(compiled.physical.circuit,
                                 compiled.physical.times,
                                 topology=calibration.topology)

        ideal = _ideal_distribution(compact)
        ideal_outcomes = sorted(ideal)
        ideal_probs = np.array([ideal[o] for o in ideal_outcomes])
        ideal_probs = ideal_probs / ideal_probs.sum()

        counts = {}
        for _ in range(trials):
            plan, any_error = _sample_error_plan(compact, noise, rng)
            if not any_error:
                outcome = ideal_outcomes[
                    int(rng.choice(len(ideal_outcomes), p=ideal_probs))]
            else:
                state = _run_state(compact, plan)
                bits = state.sample(rng)
                outcome = _classical_string(compact, bits)
            # Readout flips are sampled against the true measured bit so
            # the calibration's readout asymmetry is honored.
            chars = list(outcome)
            for hw, _, cbit in compact.measures:
                if noise.sample_readout_flip(hw, rng, bit=int(chars[cbit])):
                    chars[cbit] = "1" if chars[cbit] == "0" else "0"
            outcome = "".join(chars)
            counts[outcome] = counts.get(outcome, 0) + 1

        return ExecutionResult(counts=counts, trials=trials,
                               expected=expected, ideal_distribution=ideal)


def execute(compiled: CompiledProgram, calibration: Calibration,
            trials: int = 1024, seed: int = 0,
            expected: Optional[str] = None,
            noise_model: Optional[NoiseModel] = None,
            engine: str = "batched",
            trace_cache=None, array_backend=None) -> ExecutionResult:
    """Run *compiled* for *trials* shots on the noisy simulator.

    Args:
        compiled: Output of :func:`repro.compiler.compile_circuit`.
        calibration: The machine snapshot to execute under (normally the
            one the program was compiled against; pass a different day's
            snapshot to model stale-calibration compilation).
        trials: Shot count (the paper uses 8192).
        seed: Master RNG seed; results are reproducible.
        expected: The benchmark's known answer string.
        noise_model: Override the default all-mechanisms model.
        engine: Name of a registered
            :class:`~repro.backend.engines.ExecutionEngine` —
            ``"batched"`` (vectorized, default), ``"trial"`` (legacy
            per-trial loop; samples the same law), ``"analytic"``
            (deterministic closed-form estimate), or any third-party
            registration. For noise models overriding the per-trial
            ``sample_*`` hooks, an accessor-lowering engine reroutes
            to its declared fallback (``batched`` → ``trial``); an
            engine without one (``analytic``) runs anyway and warns
            that the custom sampling is ignored.
        trace_cache: Optional :class:`repro.runtime.cache.TraceCache`
            (or anything with the same ``get``/``put`` signature).
            When given, the batched engine reuses a previously lowered
            :class:`ProgramTrace` for the same (compiled program, noise
            model) pair instead of re-lowering, which is the dominant
            per-call cost when sweeping seeds or trial counts.
        array_backend: Registered
            :class:`~repro.simulator.xp.ArrayBackend` name (or
            instance) for engines that run their statevector
            contraction on a pluggable array library (``batched``,
            ``gpu``). ``None`` means the process default (numpy unless
            :func:`~repro.simulator.xp.set_default_array_backend` says
            otherwise); counts are bit-identical across backends, only
            throughput differs. Engines that don't contract dense
            statevectors (``trial``, ``analytic``) ignore it with a
            one-time warning.

    Returns:
        Counts plus success-rate/overlap accessors.
    """
    if trials < 1:
        raise SimulationError("need at least one trial")
    resolved = get_engine(engine)
    noise = noise_model or NoiseModel(calibration)
    if resolved.uses_probability_accessors \
            and _overrides_sampling_hooks(noise):
        # A subclass that customizes the per-trial sampling hooks (not
        # just the probability accessors the trace reads) would be
        # silently ignored by an accessor-lowering engine; honor it
        # via the declared fallback when there is one (saying so once
        # — the per-trial loop is orders of magnitude slower, which is
        # easy to misattribute in sweep timings), and warn that the
        # hooks are dropped when there isn't.
        if resolved.fallback:
            _warn_trial_fallback(noise, resolved.name)
            resolved = get_engine(resolved.fallback)
        else:
            _warn_hooks_ignored(noise, resolved.name)
    if resolved.accepts_array_backend:
        return resolved.run(compiled, calibration, noise, trials=trials,
                            seed=seed, expected=expected,
                            trace_cache=trace_cache,
                            array_backend=array_backend)
    if array_backend is not None:
        _warn_array_backend_ignored(resolved.name)
    return resolved.run(compiled, calibration, noise, trials=trials,
                        seed=seed, expected=expected,
                        trace_cache=trace_cache)


def _sample_error_plan(compact: CompactProgram, noise: NoiseModel,
                       rng: np.random.Generator
                       ) -> Tuple[List[List[Tuple[int, str]]], bool]:
    """Sample gate + idle Pauli events for one trial."""
    plan: List[List[Tuple[int, str]]] = []
    any_error = False
    for i, (gate, gaps) in enumerate(zip(compact.gates,
                                         compact.idle_before)):
        events: List[Tuple[int, str]] = []
        for qubit, idle in gaps:
            for ev in noise.sample_idle_error(qubit, idle, rng):
                events.append(_dense_event(ev, compact.hw_to_dense))
        for ev in noise.sample_gate_error(
                gate, rng,
                concurrent_neighbors=compact.concurrent_neighbors[i]):
            events.append(_dense_event(ev, compact.hw_to_dense))
        if events:
            any_error = True
        plan.append(events)
    return plan, any_error
