"""The ``"stabilizer"`` engine and the ``"auto"`` Clifford router."""

from __future__ import annotations

import warnings
from typing import Optional, Set

import numpy as np

from repro.backend.engines import (
    ExecutionEngine,
    get_engine,
    register_engine,
)
from repro.exceptions import SimulationError
from repro.simulator.stabilizer.clifford import first_non_clifford
from repro.simulator.stabilizer.program import (
    sample_stabilizer_counts,
    stabilizer_program,
)
from repro.simulator.trace import CompactProgram, ProgramTrace


def _lowered_trace(compiled, calibration, noise, trace_cache):
    """The (cached) flat error-site lowering — the *same* trace the
    batched engine builds, so engine-comparison sweeps share one
    ``TraceCache`` entry per (program, noise, snapshot) triple."""
    trace = (trace_cache.get(compiled, noise, calibration)
             if trace_cache is not None else None)
    if trace is None:
        compact = CompactProgram(compiled.physical.circuit,
                                 compiled.physical.times,
                                 topology=calibration.topology)
        trace = ProgramTrace(compact, noise)
        if trace_cache is not None:
            trace_cache.put(compiled, noise, calibration, trace)
    return trace


@register_engine
class StabilizerEngine(ExecutionEngine):
    """Polynomial-time noisy sampling for Clifford programs.

    Lowers the program through the same :class:`ProgramTrace` error-
    site table as the batched engine, then runs the one-shot symbolic
    CHP pass (:mod:`repro.simulator.stabilizer.program`) instead of
    any dense statevector — cost is polynomial in qubits, so 100-qubit
    programs sample in seconds. All RNG draws are host numpy under the
    repo's sampling law (occurrence matrix, conditional Pauli choices,
    shared readout-flip sequence), so counts are deterministic per
    seed and bit-identical across serial/parallel sweeps.

    Raises :class:`SimulationError` on non-Clifford programs; use
    ``engine="auto"`` to fall back to dense automatically.
    """

    name = "stabilizer"
    uses_probability_accessors = True
    fallback = "trial"
    family = "stabilizer"

    def capacity_note(self) -> str:
        return "hundreds of qubits (Clifford-only)"

    def run(self, compiled, calibration, noise, *, trials: int, seed: int,
            expected: Optional[str] = None, trace_cache=None):
        from repro.simulator.executor import ExecutionResult

        gate = first_non_clifford(compiled.physical.circuit)
        if gate is not None:
            raise SimulationError(
                f"engine='stabilizer' is exact only for Clifford "
                f"circuits, but the compiled program contains "
                f"{gate.name!r} on qubits {gate.qubits}; use "
                f"engine='auto' to route non-Clifford programs to a "
                f"dense engine")
        rng = np.random.default_rng(seed)
        trace = _lowered_trace(compiled, calibration, noise, trace_cache)
        counts = sample_stabilizer_counts(trace, trials, rng)
        ideal = stabilizer_program(trace).ideal_distribution(trace)
        return ExecutionResult(counts=counts, trials=trials,
                               expected=expected,
                               ideal_distribution=ideal)


#: Non-Clifford gate names the router has already explained once.
_WARNED_NON_CLIFFORD: Set[str] = set()


def _warn_dense_routing(gate) -> None:
    if gate.name in _WARNED_NON_CLIFFORD:
        return
    _WARNED_NON_CLIFFORD.add(gate.name)
    warnings.warn(
        f"engine='auto': gate {gate.name!r} is not Clifford; routing "
        f"this (and further such) programs to the dense "
        f"engine='batched', which is exponential in qubits.",
        RuntimeWarning, stacklevel=5)


@register_engine
class AutoEngine(ExecutionEngine):
    """Per-circuit router: Clifford -> stabilizer, else dense.

    Checks the *compiled physical* circuit with
    :func:`~repro.simulator.stabilizer.clifford.is_clifford` and
    delegates to the registered ``"stabilizer"`` or ``"batched"``
    engine — same trace cache, same seeds, so the result is
    bit-identical to naming the chosen engine explicitly. The dense
    fallback is announced once per offending gate name (it silently
    changes the scaling class, which is easy to misattribute in sweep
    timings).
    """

    name = "auto"
    uses_probability_accessors = True
    fallback = "trial"
    accepts_array_backend = True
    family = "router"

    def capacity_note(self) -> str:
        return "Clifford -> stabilizer, else dense"

    def run(self, compiled, calibration, noise, *, trials: int, seed: int,
            expected: Optional[str] = None, trace_cache=None,
            array_backend=None):
        gate = first_non_clifford(compiled.physical.circuit)
        if gate is None:
            return get_engine("stabilizer").run(
                compiled, calibration, noise, trials=trials, seed=seed,
                expected=expected, trace_cache=trace_cache)
        _warn_dense_routing(gate)
        return get_engine("batched").run(
            compiled, calibration, noise, trials=trials, seed=seed,
            expected=expected, trace_cache=trace_cache,
            array_backend=array_backend)
