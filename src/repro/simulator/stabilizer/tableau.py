"""Aaronson–Gottesman CHP tableau with symbolic GF(2)-affine phases.

A standard CHP tableau tracks ``2n`` Pauli rows (destabilizers then
stabilizers) as x/z bit matrices plus a sign bit per row. This variant
generalizes the sign bit to a **vector over GF(2)**: column 0 is the
concrete sign, and every further column is the coefficient of one
symbolic Bernoulli variable — a measurement coin, or one Pauli choice
of one error site. The payoff is that Pauli error injection only flips
phase coefficients (never x/z), and CHP's control flow (measurement
pivots, rowsum ``g``-exponents) depends only on x/z — so **one**
symbolic pass serves every error plan, and sampling a trial reduces to
GF(2) dot products between the fired-variable assignment and the
recorded measurement expressions (:mod:`.program` does that part,
vectorized over all trials).

Rules implemented (phase flips go to the constant column unless noted):

* ``h(q)``: ``r ^= x_q & z_q``, then swap the ``x_q``/``z_q`` columns;
* ``s(q)``: ``r ^= x_q & z_q``; ``z_q ^= x_q``;
* ``sdg(q)``: ``r ^= x_q & ~z_q``; ``z_q ^= x_q`` (``s`` cubed);
* ``x/y/z(q)``: phase-only — the conjugation masks ``z_q``,
  ``x_q ^ z_q``, ``x_q`` respectively (also the Pauli-injection masks,
  applied to a symbolic column instead of the constant);
* ``cx(c, t)``: ``r ^= x_c & z_t & ~(x_t ^ z_c)``; ``x_t ^= x_c``;
  ``z_c ^= z_t``;
* ``cz``/``swap``: composed from ``h``+``cx`` / column swaps;
* ``rowsum(h, i)``: ``row_h <- row_i * row_h`` with the phase
  correction ``[sum_j g_j mod 4 == 2]`` — ``g`` depends only on x/z,
  and the symbolic phase vectors XOR.

Measurements follow CHP exactly, except the random branch's fresh
coin is a new symbolic column (not an RNG call): the returned outcome
expression stays affine in the coins and choices.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Pauli name -> which x/z columns mask its conjugation phase flip.
_PAULI_MASKS = {"x": "z", "z": "x", "y": "xz"}


class SymbolicTableau:
    """A 2n-row CHP tableau whose phases are GF(2)-affine expressions.

    Args:
        n_qubits: Dense qubit count (rows ``0..n-1`` are destabilizers,
            ``n..2n-1`` stabilizers; the initial state is ``|0...0>``).
        n_columns: Width of the phase vectors — ``1`` (constant) plus
            one column per symbolic variable the caller will use.
    """

    def __init__(self, n_qubits: int, n_columns: int) -> None:
        self.n = n_qubits
        self.n_columns = n_columns
        self.x = np.zeros((2 * n_qubits, n_qubits), dtype=np.uint8)
        self.z = np.zeros((2 * n_qubits, n_qubits), dtype=np.uint8)
        for q in range(n_qubits):
            self.x[q, q] = 1            # destabilizer X_q
            self.z[n_qubits + q, q] = 1  # stabilizer  Z_q
        self.r = np.zeros((2 * n_qubits, n_columns), dtype=np.uint8)

    # -- gate updates --------------------------------------------------
    def apply_gate(self, name: str, qubits: Tuple[int, ...]) -> None:
        """Apply one Clifford generator by name (dense qubit indices)."""
        if name == "h":
            self._h(qubits[0])
        elif name == "s":
            self._s(qubits[0])
        elif name == "sdg":
            self._sdg(qubits[0])
        elif name in _PAULI_MASKS:
            self.r[:, 0] ^= self.pauli_mask(qubits[0], name)
        elif name == "cx":
            self._cx(qubits[0], qubits[1])
        elif name == "cz":
            self._h(qubits[1])
            self._cx(qubits[0], qubits[1])
            self._h(qubits[1])
        elif name == "swap":
            a, b = qubits
            self.x[:, [a, b]] = self.x[:, [b, a]]
            self.z[:, [a, b]] = self.z[:, [b, a]]
        elif name != "id":
            raise ValueError(f"not a Clifford generator: {name!r}")

    def _h(self, q: int) -> None:
        xq = self.x[:, q].copy()
        self.r[:, 0] ^= xq & self.z[:, q]
        self.x[:, q] = self.z[:, q]
        self.z[:, q] = xq

    def _s(self, q: int) -> None:
        self.r[:, 0] ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def _sdg(self, q: int) -> None:
        self.r[:, 0] ^= self.x[:, q] & (self.z[:, q] ^ 1)
        self.z[:, q] ^= self.x[:, q]

    def _cx(self, c: int, t: int) -> None:
        self.r[:, 0] ^= (self.x[:, c] & self.z[:, t]
                         & (self.x[:, t] ^ self.z[:, c] ^ 1))
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    # -- symbolic Pauli injection --------------------------------------
    def pauli_mask(self, q: int, pauli: str) -> np.ndarray:
        """Which rows anticommute with *pauli* on qubit *q* — the phase
        flip its conjugation applies across the tableau."""
        kind = _PAULI_MASKS[pauli]
        if kind == "z":
            return self.z[:, q]
        if kind == "x":
            return self.x[:, q]
        return self.x[:, q] ^ self.z[:, q]

    def inject_pauli(self, q: int, pauli: str, column: int) -> None:
        """Record a *conditional* Pauli on qubit *q*: rows that
        anticommute with it pick up the symbolic variable *column*."""
        self.r[:, column] ^= self.pauli_mask(q, pauli)

    # -- rowsum --------------------------------------------------------
    @staticmethod
    def _phase_exponent(x1: np.ndarray, z1: np.ndarray,
                        x2: np.ndarray, z2: np.ndarray) -> int:
        """CHP's ``sum_j g(x1, z1, x2, z2)`` for one row pair."""
        x1 = x1.astype(np.int8)
        z1 = z1.astype(np.int8)
        x2 = x2.astype(np.int8)
        z2 = z2.astype(np.int8)
        g = np.where(x1 & z1, z2 - x2,
                     np.where(x1 == 1, z2 * (2 * x2 - 1),
                              np.where(z1 == 1, x2 * (1 - 2 * z2), 0)))
        return int(g.sum())

    def rowsum(self, h: int, i: int) -> None:
        """``row_h <- row_i * row_h`` (left-multiply, CHP's rowsum)."""
        exponent = self._phase_exponent(self.x[i], self.z[i],
                                        self.x[h], self.z[h])
        self.r[h] ^= self.r[i]
        self.r[h, 0] ^= (exponent % 4) >> 1
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def _rowsum_into(self, xs: np.ndarray, zs: np.ndarray,
                     rs: np.ndarray, i: int) -> None:
        """Rowsum accumulating into a scratch (x, z, r) row triple."""
        exponent = self._phase_exponent(self.x[i], self.z[i], xs, zs)
        rs ^= self.r[i]
        rs[0] ^= (exponent % 4) >> 1
        xs ^= self.x[i]
        zs ^= self.z[i]

    # -- measurement ---------------------------------------------------
    def measure(self, q: int, coin_column: int) -> Tuple[np.ndarray, bool]:
        """Z-measure qubit *q*; return its symbolic outcome expression.

        Returns ``(expression, used_coin)``: the ``(n_columns,)``
        GF(2)-affine outcome (column 0 is the constant term), and
        whether the outcome was random — in which case it equals the
        fresh coin *coin_column* and the tableau collapsed onto the
        corresponding eigenstate (with that symbolic sign), exactly as
        CHP collapses onto a concrete coin flip.
        """
        n = self.n
        stab = np.nonzero(self.x[n:, q])[0]
        if stab.size:
            # Random outcome: some stabilizer anticommutes with Z_q.
            p = int(stab[0]) + n
            for i in np.nonzero(self.x[:, q])[0]:
                if int(i) != p:
                    self.rowsum(int(i), p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            self.r[p] = 0
            self.r[p, coin_column] = 1
            return self.r[p].copy(), True
        # Deterministic: Z_q is in the stabilizer group. Accumulate the
        # product of the stabilizers flagged by the destabilizers that
        # anticommute with Z_q; its phase is the outcome.
        xs = np.zeros(n, dtype=np.uint8)
        zs = np.zeros(n, dtype=np.uint8)
        rs = np.zeros(self.n_columns, dtype=np.uint8)
        for i in np.nonzero(self.x[:n, q])[0]:
            self._rowsum_into(xs, zs, rs, int(i) + n)
        return rs, False
