"""CHP-style stabilizer simulation subsystem (Aaronson–Gottesman).

Polynomial-time noisy sampling for Clifford programs, lowered from the
same :class:`~repro.simulator.trace.ProgramTrace` error-site table the
dense engines consume:

* :mod:`~repro.simulator.stabilizer.clifford` — the ``is_clifford``
  analysis pass (single source of truth for the tracked gate set);
* :mod:`~repro.simulator.stabilizer.tableau` — a CHP tableau whose
  phases are symbolic GF(2)-affine expressions, so one pass covers
  every error plan;
* :mod:`~repro.simulator.stabilizer.program` — the per-trace symbolic
  lowering plus the vectorized host-numpy trial sampler;
* :mod:`~repro.simulator.stabilizer.engine` — the registered
  ``"stabilizer"`` engine and the ``"auto"`` Clifford router.
"""

from repro.simulator.stabilizer.clifford import (
    CLIFFORD_GATES,
    first_non_clifford,
    is_clifford,
)
from repro.simulator.stabilizer.engine import AutoEngine, StabilizerEngine
from repro.simulator.stabilizer.program import (
    StabilizerProgram,
    sample_stabilizer_counts,
    stabilizer_program,
)
from repro.simulator.stabilizer.tableau import SymbolicTableau

__all__ = [
    "AutoEngine",
    "CLIFFORD_GATES",
    "StabilizerEngine",
    "StabilizerProgram",
    "SymbolicTableau",
    "first_non_clifford",
    "is_clifford",
    "sample_stabilizer_counts",
    "stabilizer_program",
]
