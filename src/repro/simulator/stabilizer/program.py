"""Symbolic stabilizer lowering of a :class:`ProgramTrace`.

The dense engines re-simulate per distinct error plan. A Clifford
program doesn't need that: conjugating a Pauli error through Clifford
gates only flips measurement *signs*, so the whole (program, noise)
pair lowers **once** into GF(2)-affine outcome expressions and every
trial becomes bit algebra:

``outcome_m = const_m XOR <coins, coin_m> XOR <fired choices, choice_m>``

where the symbolic variables are (a) one fair coin per random
measurement and (b) one indicator per (error site, Pauli choice) of
the trace's flat error-site table. :class:`StabilizerProgram` runs the
:class:`~repro.simulator.stabilizer.tableau.SymbolicTableau` pass that
produces those coefficient matrices; :func:`sample_stabilizer_counts`
draws all trials vectorized in host numpy.

The error-occurrence law mirrors the batched engine exactly — the same
``(trials, sites)`` Bernoulli matrix against ``trace.site_prob``, the
same one-uniform-per-fired-site conditional Pauli choice against
``trace.site_cum`` — and readout flips go through the shared
:func:`~repro.simulator.batch.render_readout_bits` helper, so the
stabilizer engine honors the full noise lowering (idle windows,
crosstalk-adjusted gate channels, asymmetric readout) with zero dense
simulation. Measurements are deferred to the end of the gate walk, in
program order: the dense engines read the *final* state's joint
distribution, so end-of-walk measurement is exactly their law (all
measures are terminal per qubit by ``CompactProgram`` validation).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.simulator.batch import render_readout_bits
from repro.simulator.stabilizer.clifford import first_non_clifford
from repro.simulator.stabilizer.tableau import SymbolicTableau
from repro.simulator.trace import ProgramTrace

#: Enumerate the exact ideal distribution only while ``2**n_coins``
#: stays trivial; past this the engine reports an empty distribution
#: (overlap-style metrics need the dense engines anyway).
_IDEAL_COIN_CAP = 12


class StabilizerProgram:
    """One-shot symbolic tableau pass over a lowered Clifford program.

    Attributes:
        n_coins: Random measurements encountered (fair-coin variables).
        n_choices: Total (error site, Pauli choice) indicator count.
        choice_offset: ``(S,)`` first indicator index of each site.
        meas_const: ``(M,)`` constant outcome bit per measure.
        meas_coin: ``(M, n_coins)`` coin coefficients per measure.
        meas_choice: ``(n_choices, M)`` choice coefficients, indicator-
            major so fired-indicator rows gather contiguously.
    """

    def __init__(self, trace: ProgramTrace) -> None:
        compact = trace.compact
        gate = first_non_clifford(compact.gates)
        if gate is not None:
            raise SimulationError(
                f"stabilizer lowering requires a Clifford circuit, but "
                f"gate {gate.name!r} on qubits {gate.qubits} is not in "
                f"the Clifford set; use engine='auto' to route such "
                f"programs to a dense engine")
        n = trace.n_qubits
        n_measures = trace.n_measures
        # Column layout: [constant | coins | choice indicators]. Every
        # measurement could be random, and each site contributes one
        # indicator per Pauli choice.
        site_widths = [len(events) for events in trace.site_events]
        self.choice_offset = np.concatenate(
            ([0], np.cumsum(site_widths[:-1]))).astype(np.int64) \
            if site_widths else np.zeros(0, dtype=np.int64)
        self.n_choices = int(sum(site_widths))
        coin_base = 1
        choice_base = coin_base + n_measures
        width = choice_base + self.n_choices

        tableau = SymbolicTableau(n, width)
        # Error sites are ordered by gate; walk them with one cursor.
        site = 0
        for i, gate in enumerate(compact.gates):
            if gate.name != "barrier" and not gate.is_measure:
                dense = tuple(compact.hw_to_dense[q] for q in gate.qubits)
                tableau.apply_gate(gate.name, dense)
            while site < trace.n_sites and trace.site_gate[site] == i:
                for c, events in enumerate(trace.site_events[site]):
                    column = choice_base + int(self.choice_offset[site]) + c
                    for dense_q, pauli in events:
                        tableau.inject_pauli(dense_q, pauli, column)
                site += 1
        # Deferred measurement, in program (= measure-table) order.
        expressions = np.zeros((n_measures, width), dtype=np.uint8)
        self.n_coins = 0
        for m, (_, dense_q, _) in enumerate(trace.measures):
            expr, used_coin = tableau.measure(
                dense_q, coin_base + self.n_coins)
            expressions[m] = expr
            if used_coin:
                self.n_coins += 1

        self.meas_const = expressions[:, 0].copy()
        self.meas_coin = expressions[
            :, coin_base:coin_base + self.n_coins].copy()
        self.meas_choice = np.ascontiguousarray(
            expressions[:, choice_base:].T)
        self._ideal: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    def measured_bits(self, coins: np.ndarray,
                      fired_trial: np.ndarray, fired_site: np.ndarray,
                      fired_choice: np.ndarray, trials: int) -> np.ndarray:
        """Evaluate all outcome expressions for a batch of trials.

        Args:
            coins: ``(trials, n_coins)`` 0/1 coin assignment.
            fired_trial: ``(F,)`` trial index per fired error site,
                nondecreasing (row-major ``np.nonzero`` order).
            fired_site / fired_choice: ``(F,)`` the site and its drawn
                Pauli choice.
            trials: Batch size.

        Returns:
            ``(trials, n_measures)`` 0/1 measured values.
        """
        bits = np.broadcast_to(
            self.meas_const, (trials, self.meas_const.size)).copy()
        if self.n_coins:
            # uint8 matmul wraps mod 256, which preserves parity.
            bits ^= (coins.astype(np.uint8) @ self.meas_coin.T) & 1
        if fired_trial.size and self.n_choices:
            rows = self.meas_choice[
                self.choice_offset[fired_site] + fired_choice]
            # Per-trial XOR of a ragged set of rows. ``reduceat``
            # mishandles *empty* segments, so reduce only over the
            # trials that fired at least one site: their first-
            # occurrence offsets (``fired_trial`` is sorted) delimit
            # all-non-empty segments, and the folded rows scatter back
            # by XOR.
            present, segment_starts = np.unique(fired_trial,
                                                return_index=True)
            folded = np.bitwise_xor.reduceat(rows, segment_starts,
                                             axis=0)
            bits[present] ^= folded
        return bits

    # ------------------------------------------------------------------
    def ideal_distribution(self, trace: ProgramTrace) -> Dict[str, float]:
        """Exact noise-free outcome distribution, when small.

        Noise-free outcomes are affine in the coins alone, so the
        distribution is uniform over the affine image of ``2**n_coins``
        coin patterns. Enumerated only while ``n_coins`` is within
        :data:`_IDEAL_COIN_CAP` (GHZ/BV/repetition-style benchmarks
        have 0 or 1 coins); larger coin counts return an empty dict —
        the honest "not computed" the result object already tolerates.
        """
        if self._ideal is not None:
            return self._ideal
        if self.n_coins > _IDEAL_COIN_CAP:
            self._ideal = {}
            return self._ideal
        patterns = ((np.arange(1 << self.n_coins)[:, np.newaxis]
                     >> np.arange(max(1, self.n_coins))) & 1
                    ).astype(np.uint8)[:, :self.n_coins]
        bits = self.meas_const[np.newaxis, :] \
            ^ ((patterns @ self.meas_coin.T) & 1)
        p = 1.0 / (1 << self.n_coins)
        distribution: Dict[str, float] = {}
        for row in bits:
            string = _render_string(trace, row)
            distribution[string] = distribution.get(string, 0.0) + p
        self._ideal = distribution
        return distribution


def stabilizer_program(trace: ProgramTrace) -> StabilizerProgram:
    """The trace's memoized symbolic lowering (one pass per trace;
    ``rescaled`` clones share it — the symbolic structure depends only
    on the circuit and the site table's shape, not the probabilities)."""
    program = trace.__dict__.get("_stabilizer_program")
    if program is None:
        program = StabilizerProgram(trace)
        trace.__dict__["_stabilizer_program"] = program
    return program


def sample_stabilizer_counts(trace: ProgramTrace, trials: int,
                             rng: np.random.Generator) -> Dict[str, int]:
    """Sample *trials* noisy shots from the symbolic lowering.

    The draw order is the engine's defined law (all host numpy): the
    ``(trials, sites)`` occurrence matrix, one uniform per fired site
    for its conditional Pauli choice, the measurement coins, then the
    shared readout-flip sequence.
    """
    program = stabilizer_program(trace)
    if trace.n_sites:
        occurred = rng.random((trials, trace.n_sites)) < \
            trace.site_prob[np.newaxis, :]
        fired_trial, fired_site = np.nonzero(occurred)
        uniforms = rng.random(fired_trial.size)
        fired_choice = (uniforms[:, np.newaxis]
                        >= trace.site_cum[fired_site, :]).sum(axis=1) \
            .astype(np.int64)
    else:
        fired_trial = fired_site = np.zeros(0, dtype=np.int64)
        fired_choice = np.zeros(0, dtype=np.int64)
    if program.n_coins:
        coins = (rng.random((trials, program.n_coins)) < 0.5
                 ).astype(np.uint8)
    else:
        coins = np.zeros((trials, 0), dtype=np.uint8)
    bits = program.measured_bits(coins, fired_trial, fired_site,
                                 fired_choice, trials)
    rendered = render_readout_bits(trace, bits, rng)
    return _count_slot_bits(trace, rendered.astype(np.uint8))


def _count_slot_bits(trace: ProgramTrace,
                     rendered: np.ndarray) -> Dict[str, int]:
    """Collapse ``(trials, n_slots)`` rendered cbit rows to counts."""
    unique, counts = np.unique(rendered, axis=0, return_counts=True)
    out: Dict[str, int] = {}
    for row, count in zip(unique, counts):
        chars = ["0"] * trace.n_cbits
        for j, cbit in enumerate(trace.measured_cbits):
            if row[j]:
                chars[cbit] = "1"
        out["".join(chars)] = int(count)
    return out


def _render_string(trace: ProgramTrace, measured: np.ndarray) -> str:
    """Noise-free classical string from per-measure bits (last writer
    wins on aliased cbits, matching ``pattern_string``)."""
    chars = ["0"] * trace.n_cbits
    for j, cbit in enumerate(trace.measured_cbits):
        if measured[trace.last_measure_for_cbit[j]]:
            chars[cbit] = "1"
    return "".join(chars)
