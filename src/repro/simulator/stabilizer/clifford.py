"""Clifford-circuit analysis pass.

The stabilizer engine is exact only for programs built from the
Clifford group generators the tableau can track; this module is the
single source of truth for that gate set. ``engine="auto"`` routes on
:func:`is_clifford`, and the stabilizer engine refuses anything
:func:`first_non_clifford` flags.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate

#: Unitary gate names the tableau simulates natively. T/Tdg and the
#: parametric rotations are the non-Clifford remainder of the IR's
#: gate set; ``reset`` is non-unitary and unsupported by every
#: Monte-Carlo engine, so it is deliberately absent here too.
CLIFFORD_GATES = frozenset(
    {"id", "h", "x", "y", "z", "s", "sdg", "cx", "cz", "swap"})

#: Non-unitary operations every engine handles outside the gate law.
_NON_GATE_OPS = frozenset({"measure", "barrier"})


def first_non_clifford(circuit: Union[Circuit, Iterable[Gate]]
                       ) -> Optional[Gate]:
    """The first gate outside the Clifford set, or ``None``.

    Accepts a :class:`~repro.ir.circuit.Circuit` (or any iterable of
    gates, e.g. a ``CompactProgram.gates`` list). Measurements and
    barriers are not gates and never disqualify a circuit.
    """
    gates = getattr(circuit, "gates", circuit)
    for gate in gates:
        if gate.name not in CLIFFORD_GATES and gate.name not in _NON_GATE_OPS:
            return gate
    return None


def is_clifford(circuit: Union[Circuit, Iterable[Gate]]) -> bool:
    """Whether every unitary in *circuit* is a Clifford generator."""
    return first_non_clifford(circuit) is None
