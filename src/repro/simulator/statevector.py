"""Dense statevector simulation engine.

A minimal, numpy-backed statevector with 1- and 2-qubit gate
application and outcome sampling — enough to execute the compiled
physical programs of the paper's benchmarks (at most 16 qubits on
IBMQ16) exactly.

Qubit *q* occupies axis *q* of the reshaped ``(2,) * n`` tensor, i.e.
bit *q* of a flattened outcome index is
``(index >> (n - 1 - q)) & 1``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.ir.gates import gate_matrix


@lru_cache(maxsize=4096)
def cached_unitary(name: str, param: Optional[float] = None) -> np.ndarray:
    """Read-only complex matrix of a named gate, cached per (name, param).

    Gate applications are hot enough that re-allocating the 2x2/4x4
    matrix per call shows up in profiles; callers must not mutate the
    returned array (it is marked non-writeable). The cache is bounded
    so sweeps over many distinct rotation angles cannot grow memory
    without limit.
    """
    matrix = np.array(gate_matrix(name, param), dtype=np.complex128)
    matrix.setflags(write=False)
    return matrix


class StateVector:
    """State of *n_qubits* qubits, initialized to |0...0>."""

    def __init__(self, n_qubits: int) -> None:
        if n_qubits < 1:
            raise SimulationError("need at least one qubit")
        if n_qubits > 24:
            raise SimulationError(
                f"{n_qubits} qubits exceeds the dense-simulation limit")
        self.n_qubits = n_qubits
        self.amplitudes = np.zeros((2,) * n_qubits, dtype=np.complex128)
        self.amplitudes[(0,) * n_qubits] = 1.0

    def copy(self) -> "StateVector":
        out = StateVector.__new__(StateVector)
        out.n_qubits = self.n_qubits
        out.amplitudes = self.amplitudes.copy()
        return out

    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray,
                     qubits: Sequence[int]) -> None:
        """Apply a unitary to *qubits* (2x2 for one, 4x4 for two)."""
        qs = tuple(qubits)
        for q in qs:
            if not 0 <= q < self.n_qubits:
                raise SimulationError(f"qubit {q} out of range")
        if len(qs) == 1:
            self._apply_1q(np.asarray(matrix, dtype=np.complex128), qs[0])
        elif len(qs) == 2:
            self._apply_2q(np.asarray(matrix, dtype=np.complex128), qs)
        else:
            raise SimulationError("only 1- and 2-qubit unitaries supported")

    def apply_gate(self, name: str, qubits: Sequence[int],
                   param: Optional[float] = None) -> None:
        """Apply a named IR gate."""
        self.apply_matrix(cached_unitary(name, param), qubits)

    def _apply_1q(self, matrix: np.ndarray, q: int) -> None:
        state = np.tensordot(matrix, self.amplitudes, axes=([1], [q]))
        self.amplitudes = np.moveaxis(state, 0, q)

    def _apply_2q(self, matrix: np.ndarray, qs: Tuple[int, int]) -> None:
        gate = matrix.reshape(2, 2, 2, 2)
        state = np.tensordot(gate, self.amplitudes,
                             axes=([2, 3], [qs[0], qs[1]]))
        self.amplitudes = np.moveaxis(state, (0, 1), (qs[0], qs[1]))

    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Flat outcome-probability vector of length 2**n."""
        flat = np.abs(self.amplitudes.reshape(-1)) ** 2
        total = flat.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise SimulationError(f"state norm drifted to {total:.6f}")
        return flat / total

    def sample(self, rng: np.random.Generator) -> Tuple[int, ...]:
        """Sample one measurement outcome; returns per-qubit bits."""
        probs = self.probabilities()
        index = int(rng.choice(len(probs), p=probs))
        return self.bits_of(index)

    def bits_of(self, index: int) -> Tuple[int, ...]:
        """Per-qubit bits of a flat outcome index."""
        n = self.n_qubits
        return tuple((index >> (n - 1 - q)) & 1 for q in range(n))

    def fidelity_with(self, other: "StateVector") -> float:
        """|<self|other>|^2 (diagnostic)."""
        if other.n_qubits != self.n_qubits:
            raise SimulationError("qubit-count mismatch")
        inner = np.vdot(self.amplitudes.reshape(-1),
                        other.amplitudes.reshape(-1))
        return float(np.abs(inner) ** 2)
