"""Noisy hardware executor (the IBMQ16 substitute).

Execution is Monte-Carlo over stochastic Pauli errors. Two engines
sample the same law: the default vectorized batched engine
(:mod:`repro.simulator.trace` + :mod:`repro.simulator.batch`) and the
legacy per-trial loop (``execute(..., engine="trial")``). The batched
engine's statevector contraction runs on a pluggable array backend
(:mod:`repro.simulator.xp`: numpy always, torch/cupy when installed)
with host-side RNG, so counts are bit-identical across backends;
``execute(engine="gpu")`` picks the best accelerated one. Clifford
programs additionally have a polynomial-time path:
``execute(engine="stabilizer")`` runs the symbolic CHP tableau
subsystem (:mod:`repro.simulator.stabilizer`) over the same lowered
trace, and ``engine="auto"`` routes each circuit to stabilizer or
dense automatically.
"""

from repro.simulator.analytic import AnalyticEstimate, estimate_success_analytic
from repro.simulator.batch import run_batched
from repro.simulator.xp import (
    ArrayBackend,
    array_backend_available,
    array_backend_status,
    best_accelerated_backend,
    default_array_backend,
    get_array_backend,
    register_array_backend,
    registered_array_backends,
    resolve_array_backend,
    set_default_array_backend,
)
from repro.simulator.executor import ExecutionResult, execute
from repro.simulator.stabilizer import (
    CLIFFORD_GATES,
    SymbolicTableau,
    first_non_clifford,
    is_clifford,
    sample_stabilizer_counts,
    stabilizer_program,
)
from repro.simulator.noise import (
    IdleRates,
    NoiseModel,
    PauliEvent,
    ideal_noise_model,
    noise_content_key,
)
from repro.simulator.statevector import StateVector, cached_unitary
from repro.simulator.trace import CompactProgram, ProgramTrace
from repro.simulator.success import (
    distribution_overlap,
    empirical_distribution,
    success_rate,
    total_variation_distance,
)

__all__ = [
    "AnalyticEstimate",
    "CLIFFORD_GATES",
    "CompactProgram",
    "ExecutionResult",
    "ProgramTrace",
    "SymbolicTableau",
    "estimate_success_analytic",
    "IdleRates",
    "NoiseModel",
    "PauliEvent",
    "StateVector",
    "cached_unitary",
    "distribution_overlap",
    "empirical_distribution",
    "execute",
    "first_non_clifford",
    "ideal_noise_model",
    "is_clifford",
    "noise_content_key",
    "run_batched",
    "sample_stabilizer_counts",
    "stabilizer_program",
    "success_rate",
    "total_variation_distance",
]
