"""Noisy hardware executor (the IBMQ16 substitute).

Execution is Monte-Carlo over stochastic Pauli errors. Two engines
sample the same law: the default vectorized batched engine
(:mod:`repro.simulator.trace` + :mod:`repro.simulator.batch`) and the
legacy per-trial loop (``execute(..., engine="trial")``).
"""

from repro.simulator.analytic import AnalyticEstimate, estimate_success_analytic
from repro.simulator.batch import run_batched
from repro.simulator.executor import ExecutionResult, execute
from repro.simulator.noise import (
    IdleRates,
    NoiseModel,
    PauliEvent,
    ideal_noise_model,
    noise_content_key,
)
from repro.simulator.statevector import StateVector, cached_unitary
from repro.simulator.trace import CompactProgram, ProgramTrace
from repro.simulator.success import (
    distribution_overlap,
    empirical_distribution,
    success_rate,
    total_variation_distance,
)

__all__ = [
    "AnalyticEstimate",
    "CompactProgram",
    "ExecutionResult",
    "ProgramTrace",
    "estimate_success_analytic",
    "IdleRates",
    "NoiseModel",
    "PauliEvent",
    "StateVector",
    "cached_unitary",
    "distribution_overlap",
    "empirical_distribution",
    "execute",
    "ideal_noise_model",
    "noise_content_key",
    "run_batched",
    "success_rate",
    "total_variation_distance",
]
