"""Noisy hardware executor (the IBMQ16 substitute)."""

from repro.simulator.analytic import AnalyticEstimate, estimate_success_analytic
from repro.simulator.executor import ExecutionResult, execute
from repro.simulator.noise import (
    IdleRates,
    NoiseModel,
    PauliEvent,
    ideal_noise_model,
)
from repro.simulator.statevector import StateVector
from repro.simulator.success import (
    distribution_overlap,
    empirical_distribution,
    success_rate,
    total_variation_distance,
)

__all__ = [
    "AnalyticEstimate",
    "ExecutionResult",
    "estimate_success_analytic",
    "IdleRates",
    "NoiseModel",
    "PauliEvent",
    "StateVector",
    "distribution_overlap",
    "empirical_distribution",
    "execute",
    "ideal_noise_model",
    "success_rate",
    "total_variation_distance",
]
