"""Success metrics for noisy executions.

The paper's metric is the fraction of trials returning the correct
answer; :func:`distribution_overlap` generalizes it to benchmarks with
non-deterministic ideal outputs (the two coincide for deterministic
programs).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.exceptions import SimulationError


def success_rate(counts: Mapping[str, int], expected: str) -> float:
    """Fraction of trials measuring *expected*."""
    total = sum(counts.values())
    if total == 0:
        raise SimulationError("no trials recorded")
    return counts.get(expected, 0) / total


def empirical_distribution(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalize counts into a probability distribution."""
    total = sum(counts.values())
    if total == 0:
        raise SimulationError("no trials recorded")
    return {o: c / total for o, c in counts.items()}


def distribution_overlap(ideal: Mapping[str, float],
                         measured: Mapping[str, float]) -> float:
    """``sum_o min(p_ideal(o), p_measured(o))`` in [0, 1]."""
    return sum(min(p, measured.get(o, 0.0)) for o, p in ideal.items())


def total_variation_distance(p: Mapping[str, float],
                             q: Mapping[str, float]) -> float:
    """TVD = 1/2 sum |p - q| over the union of supports."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(o, 0.0) - q.get(o, 0.0)) for o in support)
