"""Vectorized batched Monte-Carlo sampling over a precompiled trace.

Executes all trials of a noisy run as array-level operations instead
of a per-trial Python loop:

1. the full ``(trials, sites)`` Bernoulli occurrence matrix is drawn in
   one RNG call against the trace's per-site firing probabilities;
2. every error-free trial is routed through a **single** vectorized
   draw from the ideal output distribution;
3. the noisy trials' Pauli choices are drawn in one batch and the
   trials are grouped by identical error plans, so each *distinct*
   noisy trajectory is simulated exactly once and the group's outcomes
   are drawn from its cached distribution in one call. The distinct
   trajectories themselves are simulated **batched**: every plan shares
   the same gate sequence, so each gate is applied to a
   ``(plans, 2, ..., 2)`` state tensor in one tensordot, with the
   sampled Pauli insertions scattered onto the affected rows;
4. readout bit flips are applied as one vectorized operation over the
   whole ``(trials, measures)`` outcome array.

The statevector contraction of step 3 runs on a pluggable
:class:`~repro.simulator.xp.ArrayBackend` (numpy by default; torch or
cupy when installed) — all RNG draws stay in numpy on the host, so
counts are **bit-identical** across array backends for the same seeds.
Chunking is sized by the backend's device-memory-aware
:meth:`~repro.simulator.xp.ArrayBackend.amplitude_budget` (64 MiB of
complex128 on host backends, a fraction of free device memory on CUDA,
``REPRO_CHUNK_MIB`` override everywhere) instead of the fixed
``1 << 22`` amplitude constant it replaced.

Each step matches the per-trial engine's sampling law exactly (two
conditionally independent trials with the same error plan are i.i.d.
draws from the same trajectory distribution), so the batched engine is
distribution-identical to ``engine="trial"`` while replacing O(trials)
statevector runs with one batched run over the distinct noisy plans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.simulator.statevector import cached_unitary
from repro.simulator.trace import DenseEvent, ProgramTrace
from repro.simulator.xp import ArrayBackend, resolve_array_backend

#: What run_batched/batch_plan_probabilities accept as a backend
#: selector: a registered name, an instance, or None (process default).
ArrayBackendLike = Union[str, ArrayBackend, None]


def run_batched(trace: ProgramTrace, trials: int,
                rng: np.random.Generator,
                array_backend: ArrayBackendLike = None) -> Dict[str, int]:
    """Sample *trials* shots from *trace*; returns string counts.

    Args:
        trace: The lowered program.
        trials: Shot count.
        rng: Host RNG — every draw comes from it, whatever the array
            backend, which is what makes counts backend-independent.
        array_backend: Registered array-backend name (or instance) for
            the statevector contraction; ``None`` uses the process
            default (numpy unless
            :func:`~repro.simulator.xp.set_default_array_backend`
            says otherwise). Unavailable backends warn once and fall
            back to numpy.
    """
    xb = resolve_array_backend(array_backend)
    codes = np.zeros(trials, dtype=np.int64)
    if trace.n_sites:
        occurred = rng.random((trials, trace.n_sites)) < \
            trace.site_prob[np.newaxis, :]
        noisy = occurred.any(axis=1)
    else:
        occurred = None
        noisy = np.zeros(trials, dtype=bool)

    clean_rows = np.nonzero(~noisy)[0]
    if clean_rows.size:
        draws = rng.choice(trace.ideal_codes.size, size=clean_rows.size,
                           p=trace.ideal_probs)
        codes[clean_rows] = trace.ideal_codes[draws]

    noisy_rows = np.nonzero(noisy)[0]
    if noisy_rows.size:
        _sample_noisy(trace, occurred[noisy_rows], noisy_rows, codes, rng,
                      xb)

    rendered = _apply_readout_flips(trace, codes, rng)
    outcomes, counts = np.unique(rendered, return_counts=True)
    return {trace.outcome_string(int(c)): int(n)
            for c, n in zip(outcomes, counts)}


def _sample_noisy(trace: ProgramTrace, occurred: np.ndarray,
                  noisy_rows: np.ndarray, codes: np.ndarray,
                  rng: np.random.Generator, xb: ArrayBackend) -> None:
    """Fill ``codes[noisy_rows]`` by deduplicated trajectory simulation."""
    trial_idx, site_idx = np.nonzero(occurred)  # row-major: sorted by trial
    uniforms = rng.random(trial_idx.size)
    choices = (uniforms[:, np.newaxis]
               >= trace.site_cum[site_idx, :]).sum(axis=1).astype(np.int64)
    # Each noisy trial occupies a contiguous run of events; dedup trials
    # with identical (site, choice) plans.
    starts = np.searchsorted(trial_idx, np.arange(occurred.shape[0] + 1))
    plan_index: Dict[bytes, int] = {}
    plans: List[Dict[int, List[DenseEvent]]] = []
    plan_rows: List[List[int]] = []
    for row in range(occurred.shape[0]):
        lo, hi = starts[row], starts[row + 1]
        key = site_idx[lo:hi].tobytes() + b"|" + choices[lo:hi].tobytes()
        index = plan_index.get(key)
        if index is None:
            index = plan_index[key] = len(plans)
            plans.append(plan_events(trace, site_idx[lo:hi], choices[lo:hi]))
            plan_rows.append([])
        plan_rows[index].append(row)
    patterns = batch_plan_probabilities(trace, plans, array_backend=xb)
    # One vectorized row-normalize instead of a per-plan divide: each
    # row's sum is the same contiguous pairwise reduction the per-plan
    # `probs / probs.sum()` performed, so the draws are bit-identical.
    patterns /= patterns.sum(axis=1, keepdims=True)
    for index, rows in enumerate(plan_rows):
        drawn = rng.choice(patterns.shape[1], size=len(rows),
                           p=patterns[index])
        codes[noisy_rows[np.asarray(rows)]] = drawn


def plan_events(trace: ProgramTrace, sites: np.ndarray,
                choices: np.ndarray) -> Dict[int, List[DenseEvent]]:
    """Expand (site, choice) pairs into per-gate Pauli event lists."""
    by_gate: Dict[int, List[DenseEvent]] = {}
    for s, c in zip(sites, choices):
        gate = int(trace.site_gate[s])
        by_gate.setdefault(gate, []).extend(trace.site_events[s][int(c)])
    return by_gate


def batch_plan_probabilities(trace: ProgramTrace,
                             plans: List[Dict[int, List[DenseEvent]]],
                             array_backend: ArrayBackendLike = None,
                             chunk: Optional[int] = None) -> np.ndarray:
    """Measured-pattern distributions of many error plans, batched.

    Returns a ``(len(plans), 2**n_measures)`` matrix; row *p* is the
    outcome distribution of the trajectory with error plan ``plans[p]``
    (identical to :meth:`ProgramTrace.plan_probabilities` on that plan).

    Args:
        trace: The lowered program.
        plans: Per-plan gate-index -> Pauli-event maps.
        array_backend: Backend for the contraction (name, instance, or
            ``None`` for the process default).
        chunk: Plans per simulation chunk. Defaults to the backend's
            :meth:`~repro.simulator.xp.ArrayBackend.amplitude_budget`
            divided by the state size; the result is invariant to the
            chunk size (chunks only bound peak memory), which the test
            suite pins at chunk sizes 1, 3, and default.
    """
    xb = resolve_array_backend(array_backend)
    total = len(plans)
    width = 1 << trace.n_measures
    out = np.empty((total, width), dtype=np.float64)
    if chunk is None:
        chunk = max(1, xb.amplitude_budget() >> trace.n_qubits)
    elif chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    for lo in range(0, total, chunk):
        part = plans[lo:lo + chunk]
        out[lo:lo + len(part)] = _simulate_plans(trace, part, xb)
    return out


def _simulate_plans(trace: ProgramTrace,
                    plans: List[Dict[int, List[DenseEvent]]],
                    xb: ArrayBackend) -> np.ndarray:
    """One batched statevector pass over all *plans* trajectories."""
    batch = len(plans)
    n = trace.n_qubits
    state = xb.zeros((batch,) + (2,) * n)
    state[(slice(None),) + (0,) * n] = 1.0
    # Invert the plans: gate index -> {event tuple -> plan rows}.
    per_gate: Dict[int, Dict[Tuple[DenseEvent, ...], List[int]]] = {}
    for row, plan in enumerate(plans):
        for gate, events in plan.items():
            per_gate.setdefault(gate, {}).setdefault(
                tuple(events), []).append(row)
    for i, op in enumerate(trace.ops):
        if op is not None:
            matrix, dense = op
            if len(dense) == 1:
                state = _apply_1q(xb, state, xb.stage(matrix), dense[0])
            else:
                state = _apply_2q(xb, state, xb.stage(matrix), dense)
        injections = per_gate.get(i)
        if injections:
            for events, rows in injections.items():
                idx = np.asarray(rows)
                sub = xb.take_rows(state, idx)
                for dense_q, pauli in events:
                    sub = _apply_1q(xb, sub,
                                    xb.stage(cached_unitary(pauli)),
                                    dense_q)
                xb.put_rows(state, idx, sub)
    # Measured qubits are distinct, so after ordering the basis by
    # pattern code every code owns an equal contiguous block: collapse
    # to pattern distributions with one reshape+sum (the chunk's single
    # device-to-host transfer).
    return xb.pattern_reduce(state, trace.pattern_order,
                             1 << trace.n_measures)


def _apply_1q(xb: ArrayBackend, state, matrix, q: int):
    """Apply a 2x2 unitary to qubit *q* of a batched state tensor."""
    out = xb.tensordot(matrix, state, axes=([1], [q + 1]))
    return xb.moveaxis(out, 0, q + 1)


def _apply_2q(xb: ArrayBackend, state, matrix, qs: Tuple[int, int]):
    """Apply a 4x4 unitary to qubits *qs* of a batched state tensor."""
    gate = xb.reshape(matrix, (2, 2, 2, 2))
    out = xb.tensordot(gate, state,
                       axes=([2, 3], [qs[0] + 1, qs[1] + 1]))
    return xb.moveaxis(out, (0, 1), (qs[0] + 1, qs[1] + 1))


def render_readout_bits(trace: ProgramTrace, bits: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
    """Flip measured bits with the calibrated asymmetric probabilities.

    Args:
        trace: The lowered program.
        bits: ``(trials, n_measures)`` 0/1 array of true measured
            values (column *m* = measure *m*'s outcome).
        rng: Host RNG; the draw sequence (one ``rng.random(trials)``
            per measure, grouped by cbit slot in slot order) is the
            readout law shared by every trace-consuming engine.

    Returns:
        ``(trials, n_slots)`` rendered classical bits (column *j* =
        final value of ``trace.measured_cbits[j]``). Each classical
        bit starts from its last writer's measured value, then every
        measure aliasing that cbit flips it in program order against
        the *current* value — matching the per-trial engine even when
        measures share a cbit.
    """
    trials = bits.shape[0]
    rendered = np.zeros((trials, len(trace.measured_cbits)),
                        dtype=np.int64)
    for j in range(len(trace.measured_cbits)):
        bit = bits[:, trace.last_measure_for_cbit[j]].astype(np.int64)
        for m in trace.measures_for_cbit[j]:
            flip_p = np.where(bit == 1, trace.readout_p1[m],
                              trace.readout_p0[m])
            bit = bit ^ (rng.random(bit.shape) < flip_p)
        rendered[:, j] = bit
    return rendered


def _apply_readout_flips(trace: ProgramTrace, codes: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
    """Readout law over pattern *codes* (the dense engines' encoding).

    Unpacks the codes into a measured-bit matrix, applies
    :func:`render_readout_bits` (bit-identical RNG sequence to the
    pre-refactor in-place loop), and repacks into rendered-cbit codes
    (bit *j* = final value of ``trace.measured_cbits[j]``).
    """
    bits = (codes[:, np.newaxis]
            >> np.arange(trace.n_measures, dtype=np.int64)) & 1
    rendered_bits = render_readout_bits(trace, bits, rng)
    shifts = np.arange(rendered_bits.shape[1], dtype=np.int64)
    return (rendered_bits << shifts).sum(axis=1, dtype=np.int64)
