"""Vectorized batched Monte-Carlo sampling over a precompiled trace.

Executes all trials of a noisy run as array-level numpy operations
instead of a per-trial Python loop:

1. the full ``(trials, sites)`` Bernoulli occurrence matrix is drawn in
   one RNG call against the trace's per-site firing probabilities;
2. every error-free trial is routed through a **single** vectorized
   draw from the ideal output distribution;
3. the noisy trials' Pauli choices are drawn in one batch and the
   trials are grouped by identical error plans, so each *distinct*
   noisy trajectory is simulated exactly once and the group's outcomes
   are drawn from its cached distribution in one call. The distinct
   trajectories themselves are simulated **batched**: every plan shares
   the same gate sequence, so each gate is applied to a
   ``(plans, 2, ..., 2)`` state tensor in one tensordot, with the
   sampled Pauli insertions scattered onto the affected rows;
4. readout bit flips are applied as one vectorized operation over the
   whole ``(trials, measures)`` outcome array.

Each step matches the per-trial engine's sampling law exactly (two
conditionally independent trials with the same error plan are i.i.d.
draws from the same trajectory distribution), so the batched engine is
distribution-identical to ``engine="trial"`` while replacing O(trials)
statevector runs with one batched run over the distinct noisy plans.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.simulator.statevector import cached_unitary
from repro.simulator.trace import DenseEvent, ProgramTrace

#: Amplitude budget per simulation chunk (64 MiB of complex128).
_CHUNK_AMPLITUDES = 1 << 22


def run_batched(trace: ProgramTrace, trials: int,
                rng: np.random.Generator) -> Dict[str, int]:
    """Sample *trials* shots from *trace*; returns string counts."""
    codes = np.zeros(trials, dtype=np.int64)
    if trace.n_sites:
        occurred = rng.random((trials, trace.n_sites)) < \
            trace.site_prob[np.newaxis, :]
        noisy = occurred.any(axis=1)
    else:
        occurred = None
        noisy = np.zeros(trials, dtype=bool)

    clean_rows = np.nonzero(~noisy)[0]
    if clean_rows.size:
        draws = rng.choice(trace.ideal_codes.size, size=clean_rows.size,
                           p=trace.ideal_probs)
        codes[clean_rows] = trace.ideal_codes[draws]

    noisy_rows = np.nonzero(noisy)[0]
    if noisy_rows.size:
        _sample_noisy(trace, occurred[noisy_rows], noisy_rows, codes, rng)

    rendered = _apply_readout_flips(trace, codes, rng)
    outcomes, counts = np.unique(rendered, return_counts=True)
    return {trace.outcome_string(int(c)): int(n)
            for c, n in zip(outcomes, counts)}


def _sample_noisy(trace: ProgramTrace, occurred: np.ndarray,
                  noisy_rows: np.ndarray, codes: np.ndarray,
                  rng: np.random.Generator) -> None:
    """Fill ``codes[noisy_rows]`` by deduplicated trajectory simulation."""
    trial_idx, site_idx = np.nonzero(occurred)  # row-major: sorted by trial
    uniforms = rng.random(trial_idx.size)
    choices = (uniforms[:, np.newaxis]
               >= trace.site_cum[site_idx, :]).sum(axis=1).astype(np.int64)
    # Each noisy trial occupies a contiguous run of events; dedup trials
    # with identical (site, choice) plans.
    starts = np.searchsorted(trial_idx, np.arange(occurred.shape[0] + 1))
    plan_index: Dict[bytes, int] = {}
    plans: List[Dict[int, List[DenseEvent]]] = []
    plan_rows: List[List[int]] = []
    for row in range(occurred.shape[0]):
        lo, hi = starts[row], starts[row + 1]
        key = site_idx[lo:hi].tobytes() + b"|" + choices[lo:hi].tobytes()
        index = plan_index.get(key)
        if index is None:
            index = plan_index[key] = len(plans)
            plans.append(plan_events(trace, site_idx[lo:hi], choices[lo:hi]))
            plan_rows.append([])
        plan_rows[index].append(row)
    patterns = batch_plan_probabilities(trace, plans)
    for index, rows in enumerate(plan_rows):
        probs = patterns[index]
        probs = probs / probs.sum()
        drawn = rng.choice(probs.size, size=len(rows), p=probs)
        codes[noisy_rows[np.asarray(rows)]] = drawn


def plan_events(trace: ProgramTrace, sites: np.ndarray,
                choices: np.ndarray) -> Dict[int, List[DenseEvent]]:
    """Expand (site, choice) pairs into per-gate Pauli event lists."""
    by_gate: Dict[int, List[DenseEvent]] = {}
    for s, c in zip(sites, choices):
        gate = int(trace.site_gate[s])
        by_gate.setdefault(gate, []).extend(trace.site_events[s][int(c)])
    return by_gate


def batch_plan_probabilities(trace: ProgramTrace,
                             plans: List[Dict[int, List[DenseEvent]]]
                             ) -> np.ndarray:
    """Measured-pattern distributions of many error plans, batched.

    Returns a ``(len(plans), 2**n_measures)`` matrix; row *p* is the
    outcome distribution of the trajectory with error plan ``plans[p]``
    (identical to :meth:`ProgramTrace.plan_probabilities` on that plan).
    """
    total = len(plans)
    width = 1 << trace.n_measures
    out = np.empty((total, width), dtype=np.float64)
    chunk = max(1, _CHUNK_AMPLITUDES >> trace.n_qubits)
    for lo in range(0, total, chunk):
        part = plans[lo:lo + chunk]
        out[lo:lo + len(part)] = _simulate_plans(trace, part)
    return out


def _simulate_plans(trace: ProgramTrace,
                    plans: List[Dict[int, List[DenseEvent]]]) -> np.ndarray:
    """One batched statevector pass over all *plans* trajectories."""
    batch = len(plans)
    n = trace.n_qubits
    state = np.zeros((batch,) + (2,) * n, dtype=np.complex128)
    state[(slice(None),) + (0,) * n] = 1.0
    # Invert the plans: gate index -> {event tuple -> plan rows}.
    per_gate: Dict[int, Dict[Tuple[DenseEvent, ...], List[int]]] = {}
    for row, plan in enumerate(plans):
        for gate, events in plan.items():
            per_gate.setdefault(gate, {}).setdefault(
                tuple(events), []).append(row)
    for i, op in enumerate(trace.ops):
        if op is not None:
            matrix, dense = op
            if len(dense) == 1:
                state = _apply_1q(state, matrix, dense[0])
            else:
                state = _apply_2q(state, matrix, dense)
        injections = per_gate.get(i)
        if injections:
            for events, rows in injections.items():
                idx = np.asarray(rows)
                sub = state[idx]
                for dense_q, pauli in events:
                    sub = _apply_1q(sub, cached_unitary(pauli), dense_q)
                state[idx] = sub
    probs = np.abs(state.reshape(batch, -1)) ** 2
    # Measured qubits are distinct, so after ordering the basis by
    # pattern code every code owns an equal contiguous block: collapse
    # to pattern distributions with one reshape+sum.
    return probs[:, trace.pattern_order].reshape(
        batch, 1 << trace.n_measures, -1).sum(axis=2)


def _apply_1q(state: np.ndarray, matrix: np.ndarray, q: int) -> np.ndarray:
    """Apply a 2x2 unitary to qubit *q* of a batched state tensor."""
    out = np.tensordot(matrix, state, axes=([1], [q + 1]))
    return np.moveaxis(out, 0, q + 1)


def _apply_2q(state: np.ndarray, matrix: np.ndarray,
              qs: Tuple[int, int]) -> np.ndarray:
    """Apply a 4x4 unitary to qubits *qs* of a batched state tensor."""
    gate = matrix.reshape(2, 2, 2, 2)
    out = np.tensordot(gate, state, axes=([2, 3], [qs[0] + 1, qs[1] + 1]))
    return np.moveaxis(out, (0, 1), (qs[0] + 1, qs[1] + 1))


def _apply_readout_flips(trace: ProgramTrace, codes: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
    """Flip measured bits with the calibrated asymmetric probabilities.

    Returns per-trial rendered-cbit codes (bit *j* = final value of
    ``trace.measured_cbits[j]``). Each classical bit starts from its
    last writer's measured value, then every measure aliasing that cbit
    flips it in program order against the *current* value — matching
    the per-trial engine even when measures share a cbit.
    """
    rendered = np.zeros(codes.shape, dtype=np.int64)
    for j in range(len(trace.measured_cbits)):
        bit = (codes >> trace.last_measure_for_cbit[j]) & 1
        for m in trace.measures_for_cbit[j]:
            flip_p = np.where(bit == 1, trace.readout_p1[m],
                              trace.readout_p0[m])
            bit = bit ^ (rng.random(bit.shape) < flip_p)
        rendered |= bit << j
    return rendered
