"""Stochastic noise model derived from calibration data.

Three error mechanisms, matching the failure modes the paper's compiler
optimizes against (§2, §3):

* **Gate errors** — after each physical gate, with the calibrated error
  probability (per-edge for CNOTs, per-qubit for 1q gates), a uniformly
  random non-identity Pauli hits the participating qubits (depolarizing
  approximation).
* **Idle decoherence** — while a qubit waits between operations, it
  suffers Pauli noise with probabilities from the T1/T2 exponentials
  (the standard Pauli-twirl of amplitude/phase damping):
  ``p_x = p_y = (1 - exp(-t/T1)) / 4``,
  ``p_z = (1 - exp(-t/T2)) / 2 - p_x``.
* **Readout errors** — each measured bit flips with the qubit's
  calibrated readout error probability, optionally skewed by the
  calibration's readout asymmetry (|1> misreads more often than |0>).

An optional **crosstalk** extension (off by default; the paper's §9 /
follow-up direction) inflates a two-qubit gate's error rate when other
two-qubit gates run concurrently on adjacent couplings:
``p' = min(p * (1 + crosstalk_factor * n_concurrent), 0.5)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.calibration import TIMESLOT_NS, Calibration
from repro.ir.gates import Gate

_PAULIS_1Q = ("x", "y", "z")
#: Non-identity two-qubit Pauli pairs (15 of them).
_PAULIS_2Q = tuple((a, b)
                   for a in ("i", "x", "y", "z")
                   for b in ("i", "x", "y", "z")
                   if not (a == "i" and b == "i"))


@dataclass(frozen=True)
class PauliEvent:
    """One sampled error: apply Pauli *name* to hardware qubit *qubit*."""

    qubit: int
    name: str


@dataclass(frozen=True)
class IdleRates:
    """Pauli-twirl rates for one qubit idling for some duration."""

    p_x: float
    p_y: float
    p_z: float

    @property
    def total(self) -> float:
        return self.p_x + self.p_y + self.p_z


class NoiseModel:
    """Samples error events for a physical program under a calibration.

    Args:
        calibration: The machine snapshot the program was compiled for
            (and is "executed" on).
        gate_errors: Include stochastic gate errors.
        decoherence: Include idle decoherence.
        readout_errors: Include measurement bit flips.

    Subclassing notes:
        Prefer overriding the **probability accessors**
        (:meth:`gate_error_probability`, :meth:`idle_rates`,
        :meth:`readout_flip_probability`) — the batched engine lowers
        its execution trace from them, so such subclasses keep the
        fast path. Overriding the per-trial ``sample_*`` hooks instead
        forces :func:`~repro.simulator.execute` to fall back to the
        slow ``engine="trial"`` loop (it warns once per class when it
        does). Either way, an exotic subclass is **bypassed by the
        trace cache** unless it defines the escape hatch::

            def trace_key(self):
                # hashable tuple covering every attribute that shapes
                # the model's probabilities (or None = don't cache)
                return ("my-model", self.calibration.content_id(), ...)

        Two models whose ``trace_key()`` values are equal must produce
        identical probabilities for every (program, calibration) pair —
        the cache serves one model's lowered trace for the other.

        The same contract extends to custom execution engines
        registered through
        :func:`repro.backend.engines.register_engine`: the
        ``trace_cache`` handed to an engine stores lowered
        :class:`~repro.simulator.trace.ProgramTrace` objects keyed
        through :func:`noise_content_key` (which honors
        ``trace_key()``), so an engine that consumes that same
        lowering may share it — one escape hatch serves every such
        engine. An engine caching a *different* artifact type must
        keep its own store: the shared cache's keys carry no engine
        component, so a foreign artifact under the same (program,
        noise, calibration) triple would collide with the trace.
    """

    def __init__(self, calibration: Calibration, gate_errors: bool = True,
                 decoherence: bool = True, readout_errors: bool = True,
                 crosstalk_factor: float = 0.0) -> None:
        if crosstalk_factor < 0.0:
            raise ValueError("crosstalk factor must be non-negative")
        self.calibration = calibration
        self.gate_errors = gate_errors
        self.decoherence = decoherence
        self.readout_errors = readout_errors
        self.crosstalk_factor = crosstalk_factor

    # ------------------------------------------------------------------
    def gate_error_probability(self, gate: Gate,
                               concurrent_neighbors: int = 0) -> float:
        """Calibrated error probability of one physical gate.

        Args:
            concurrent_neighbors: Number of two-qubit gates overlapping
                this gate in time on adjacent couplings (crosstalk).
        """
        if not self.gate_errors or gate.is_measure or gate.name == "barrier":
            return 0.0
        if gate.is_two_qubit:
            a, b = gate.qubits
            p = self.calibration.cnot_error(a, b)
            if self.crosstalk_factor > 0.0 and concurrent_neighbors > 0:
                p = min(p * (1.0 + self.crosstalk_factor
                             * concurrent_neighbors), 0.5)
            return p
        return self.calibration.qubit(gate.qubits[0]).single_qubit_error

    def sample_gate_error(self, gate: Gate, rng: np.random.Generator,
                          concurrent_neighbors: int = 0
                          ) -> List[PauliEvent]:
        """Pauli events following *gate* (empty list = no error)."""
        p = self.gate_error_probability(gate, concurrent_neighbors)
        if p <= 0.0 or rng.random() >= p:
            return []
        if gate.is_two_qubit:
            pa, pb = _PAULIS_2Q[rng.integers(len(_PAULIS_2Q))]
            events = []
            if pa != "i":
                events.append(PauliEvent(gate.qubits[0], pa))
            if pb != "i":
                events.append(PauliEvent(gate.qubits[1], pb))
            return events
        name = _PAULIS_1Q[rng.integers(len(_PAULIS_1Q))]
        return [PauliEvent(gate.qubits[0], name)]

    # ------------------------------------------------------------------
    def idle_rates(self, qubit: int, idle_slots: float) -> IdleRates:
        """Pauli-twirl rates for *qubit* idling *idle_slots* timeslots."""
        if not self.decoherence or idle_slots <= 0.0:
            return IdleRates(0.0, 0.0, 0.0)
        record = self.calibration.qubit(qubit)
        t_us = idle_slots * TIMESLOT_NS / 1000.0
        p_relax = 1.0 - math.exp(-t_us / record.t1_us)
        p_dephase = 1.0 - math.exp(-t_us / record.t2_us)
        p_x = p_relax / 4.0
        p_z = max(p_dephase / 2.0 - p_x, 0.0)
        return IdleRates(p_x=p_x, p_y=p_x, p_z=p_z)

    def sample_idle_error(self, qubit: int, idle_slots: float,
                          rng: np.random.Generator) -> List[PauliEvent]:
        """Pauli events for an idle window (at most one event)."""
        rates = self.idle_rates(qubit, idle_slots)
        if rates.total <= 0.0:
            return []
        u = rng.random()
        if u < rates.p_x:
            return [PauliEvent(qubit, "x")]
        if u < rates.p_x + rates.p_y:
            return [PauliEvent(qubit, "y")]
        if u < rates.total:
            return [PauliEvent(qubit, "z")]
        return []

    # ------------------------------------------------------------------
    def readout_flip_probability(self, qubit: int, bit: int = 0) -> float:
        """Probability of misreporting the measured *bit* of *qubit*."""
        if not self.readout_errors:
            return 0.0
        return self.calibration.qubit(qubit).readout_flip_probability(bit)

    def sample_readout_flip(self, qubit: int, rng: np.random.Generator,
                            bit: int = 0) -> bool:
        """Whether the measured *bit* of *qubit* is misreported."""
        if not self.readout_errors:
            return False
        return rng.random() < self.readout_flip_probability(qubit, bit)


def ideal_noise_model(calibration: Calibration) -> NoiseModel:
    """A noise model with every mechanism disabled (ideal executor)."""
    return NoiseModel(calibration, gate_errors=False, decoherence=False,
                      readout_errors=False)


def noise_content_key(noise: NoiseModel) -> Optional[tuple]:
    """Hashable content key of a model's probability behavior, or ``None``.

    The single keying rule shared by the trace cache
    (:class:`repro.runtime.cache.TraceCache`) and by wrappers that
    derive their own key from a base model's (e.g.
    :class:`repro.mitigation.zne.ScaledNoiseModel`): a subclass's
    ``trace_key()`` when it defines one (``None`` from it means
    "don't cache"), the full constructor state for a plain
    :class:`NoiseModel`, and ``None`` — uncacheable — for subclasses
    without the escape hatch, whose behavior this function cannot see.
    """
    custom = getattr(type(noise), "trace_key", None)
    if custom is not None:
        return noise.trace_key()
    if type(noise) is NoiseModel:
        return (noise.calibration.content_id(), noise.gate_errors,
                noise.decoherence, noise.readout_errors,
                noise.crosstalk_factor)
    return None
