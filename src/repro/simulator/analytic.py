"""Analytic success-rate prediction.

A closed-form counterpart to the Monte-Carlo executor: treat every
error mechanism as an independent chance of spoiling the run, so the
predicted success rate is the product of

* per-physical-gate success ``(1 - error)`` (CNOT errors dominate);
* per-idle-window no-decoherence probability from the Pauli-twirl
  rates;
* per-readout success ``(1 - readout_error)``.

This is the machinery behind the paper's reliability score (§3.1),
extended with the schedule-aware decoherence term, and it evaluates in
microseconds — useful for mapping-quality triage without simulation.
It is *pessimistic* in one respect (an error event is counted as fatal
even when it cannot reach any measured qubit) and *optimistic* in
another (two errors can cancel); on the paper's benchmarks it tracks
the Monte-Carlo executor within a few percent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.backend.engines import ExecutionEngine, register_engine
from repro.compiler.compile import CompiledProgram
from repro.exceptions import SimulationError
from repro.hardware.calibration import Calibration
from repro.simulator.noise import NoiseModel


@dataclass(frozen=True)
class AnalyticEstimate:
    """Factorized success prediction for a compiled program.

    Attributes:
        success: Overall predicted success probability.
        gate_factor: Product of per-gate success terms.
        decoherence_factor: Product of idle no-error terms.
        readout_factor: Product of readout success terms.
    """

    success: float
    gate_factor: float
    decoherence_factor: float
    readout_factor: float


def estimate_success_analytic(program: CompiledProgram,
                              calibration: Calibration,
                              noise_model: Optional[NoiseModel] = None
                              ) -> AnalyticEstimate:
    """Predict the executor's success rate analytically.

    Args:
        program: A compiled program (physical circuit + timing).
        calibration: The snapshot to execute under.
        noise_model: Optional override (mechanism toggles are honored).
    """
    noise = noise_model or NoiseModel(calibration)
    gate_factor = 1.0
    readout_factor = 1.0
    log_decoherence = 0.0

    last_finish = {}
    for gate, (start, duration) in zip(program.physical.circuit.gates,
                                       program.physical.times):
        for q in gate.qubits:
            previous = last_finish.get(q)
            if previous is not None and start > previous + 1e-9:
                rates = noise.idle_rates(q, start - previous)
                log_decoherence += math.log(max(1.0 - rates.total, 1e-12))
            last_finish[q] = start + duration
        if gate.is_measure:
            if noise.readout_errors:
                readout_factor *= 1.0 - calibration.readout_error(
                    gate.qubits[0])
        else:
            p = noise.gate_error_probability(gate)
            gate_factor *= 1.0 - p

    decoherence_factor = math.exp(log_decoherence)
    return AnalyticEstimate(
        success=gate_factor * decoherence_factor * readout_factor,
        gate_factor=gate_factor,
        decoherence_factor=decoherence_factor,
        readout_factor=readout_factor,
    )


#: Above this many classical bits the analytic engine would enumerate
#: an unreasonably large outcome set; it is meant for small exact-check
#: runs (the Monte-Carlo engines have no such limit).
_MAX_ANALYTIC_CBITS = 16


@register_engine
class AnalyticEngine(ExecutionEngine):
    """Deterministic closed-form "execution" for small exact checks.

    Registered here — not in ``executor.py`` — as the in-tree proof
    that :func:`~repro.backend.engines.register_engine` admits engines
    from outside the executor module.

    The engine evaluates :func:`estimate_success_analytic` and renders
    the prediction as an :class:`~repro.simulator.ExecutionResult`
    under the simplest failure model consistent with it: with
    probability ``s`` (the analytic success factor) the run is clean
    and draws from the ideal distribution; otherwise the output is
    fully depolarized (uniform over classical strings). Counts are
    apportioned by largest remainder, so they sum to ``trials``
    exactly, are reproducible, and are *seed-independent* — the seed
    is deliberately ignored. Useful to sanity-check a mapping's
    predicted ranking in microseconds, without sampling noise.

    Declares ``uses_probability_accessors`` (the estimate reads only
    the accessors) with no fallback: a noise model overriding the
    per-trial ``sample_*`` hooks gets a once-per-class warning that
    its custom sampling cannot influence a closed-form estimate.
    """

    name = "analytic"
    uses_probability_accessors = True
    fallback = None
    family = "estimate"

    def capacity_note(self) -> str:
        return f"<= {_MAX_ANALYTIC_CBITS} cbits (string enumeration)"

    def run(self, compiled: CompiledProgram, calibration: Calibration,
            noise: NoiseModel, *, trials: int, seed: int,
            expected: Optional[str] = None, trace_cache=None):
        # Imported at call time: the executor imports the engine
        # registry this class registers into, so a module-level import
        # back into it would be cyclic.
        from repro.simulator.executor import (
            ExecutionResult,
            _ideal_distribution,
        )
        from repro.simulator.trace import CompactProgram

        compact = CompactProgram(compiled.physical.circuit,
                                 compiled.physical.times,
                                 topology=calibration.topology)
        if compact.n_cbits > _MAX_ANALYTIC_CBITS:
            raise SimulationError(
                f"the analytic engine enumerates all 2^n classical "
                f"strings and is limited to n <= {_MAX_ANALYTIC_CBITS} "
                f"bits (program has {compact.n_cbits}); use a "
                f"Monte-Carlo engine")
        ideal = _ideal_distribution(compact)
        success = estimate_success_analytic(
            compiled, calibration, noise_model=noise).success
        uniform = (1.0 - success) / (1 << compact.n_cbits)
        probabilities: Dict[str, float] = {
            format(index, f"0{compact.n_cbits}b"): uniform
            for index in range(1 << compact.n_cbits)}
        for outcome, p in ideal.items():
            probabilities[outcome] = probabilities.get(outcome, uniform) \
                + success * p
        counts = _largest_remainder_counts(probabilities, trials)
        return ExecutionResult(counts=counts, trials=trials,
                               expected=expected, ideal_distribution=ideal)


def _largest_remainder_counts(probabilities: Dict[str, float],
                              trials: int) -> Dict[str, int]:
    """Deterministic integer apportionment of *trials* shots.

    Floors every share, then hands the remaining shots to the largest
    fractional parts (ties broken lexicographically), so the counts
    sum to *trials* and are a pure function of the distribution.
    """
    shares = [(outcome, probabilities[outcome] * trials)
              for outcome in sorted(probabilities)]
    counts = {outcome: int(share) for outcome, share in shares}
    remaining = trials - sum(counts.values())
    for outcome, _ in sorted(shares, key=lambda kv: (-(kv[1] % 1.0), kv[0])):
        if remaining <= 0:
            break
        counts[outcome] += 1
        remaining -= 1
    return {outcome: count for outcome, count in counts.items() if count}
