"""Analytic success-rate prediction.

A closed-form counterpart to the Monte-Carlo executor: treat every
error mechanism as an independent chance of spoiling the run, so the
predicted success rate is the product of

* per-physical-gate success ``(1 - error)`` (CNOT errors dominate);
* per-idle-window no-decoherence probability from the Pauli-twirl
  rates;
* per-readout success ``(1 - readout_error)``.

This is the machinery behind the paper's reliability score (§3.1),
extended with the schedule-aware decoherence term, and it evaluates in
microseconds — useful for mapping-quality triage without simulation.
It is *pessimistic* in one respect (an error event is counted as fatal
even when it cannot reach any measured qubit) and *optimistic* in
another (two errors can cancel); on the paper's benchmarks it tracks
the Monte-Carlo executor within a few percent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.compiler.compile import CompiledProgram
from repro.hardware.calibration import Calibration
from repro.simulator.noise import NoiseModel


@dataclass(frozen=True)
class AnalyticEstimate:
    """Factorized success prediction for a compiled program.

    Attributes:
        success: Overall predicted success probability.
        gate_factor: Product of per-gate success terms.
        decoherence_factor: Product of idle no-error terms.
        readout_factor: Product of readout success terms.
    """

    success: float
    gate_factor: float
    decoherence_factor: float
    readout_factor: float


def estimate_success_analytic(program: CompiledProgram,
                              calibration: Calibration,
                              noise_model: Optional[NoiseModel] = None
                              ) -> AnalyticEstimate:
    """Predict the executor's success rate analytically.

    Args:
        program: A compiled program (physical circuit + timing).
        calibration: The snapshot to execute under.
        noise_model: Optional override (mechanism toggles are honored).
    """
    noise = noise_model or NoiseModel(calibration)
    gate_factor = 1.0
    readout_factor = 1.0
    log_decoherence = 0.0

    last_finish = {}
    for gate, (start, duration) in zip(program.physical.circuit.gates,
                                       program.physical.times):
        for q in gate.qubits:
            previous = last_finish.get(q)
            if previous is not None and start > previous + 1e-9:
                rates = noise.idle_rates(q, start - previous)
                log_decoherence += math.log(max(1.0 - rates.total, 1e-12))
            last_finish[q] = start + duration
        if gate.is_measure:
            if noise.readout_errors:
                readout_factor *= 1.0 - calibration.readout_error(
                    gate.qubits[0])
        else:
            p = noise.gate_error_probability(gate)
            gate_factor *= 1.0 - p

    decoherence_factor = math.exp(log_decoherence)
    return AnalyticEstimate(
        success=gate_factor * decoherence_factor * readout_factor,
        gate_factor=gate_factor,
        decoherence_factor=decoherence_factor,
        readout_factor=readout_factor,
    )
