"""Precompiled execution traces for the batched Monte-Carlo engine.

The per-trial executor re-derives everything stochastic from the
:class:`~repro.simulator.noise.NoiseModel` on every shot: idle rates,
gate error probabilities, Pauli choices. This module lowers a compiled
program **once** into flat numpy arrays so that the batched engine
(:mod:`repro.simulator.batch`) can sample the entire ``trials x sites``
Bernoulli matrix in a handful of vectorized RNG calls:

* :class:`CompactProgram` — the physical program restricted to the
  hardware qubits it touches, with per-gate idle windows and the
  crosstalk exposure counts (computed with a start-time-sorted interval
  sweep rather than an O(G^2) pair scan);
* :class:`ProgramTrace` — the flattened *error-site* table. Each site
  is one independent Bernoulli error source (an idle window on one
  qubit before a gate, or the gate's own depolarizing channel) with a
  precomputed firing probability, the cumulative boundaries of its
  conditional Pauli-choice distribution, and the concrete Pauli events
  each choice applies. The trace also caches the per-gate unitaries,
  the dense-qubit measure map, the ideal output distribution, and the
  per-measure readout flip probabilities.

Sampling a trial from the trace is identical in law to the per-trial
path: an idle window that fires with probability ``p_x + p_y + p_z``
and then picks X/Y/Z proportionally is the same two-stage process the
legacy sampler performs with a single uniform draw.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.ir.circuit import Circuit
from repro.simulator.noise import _PAULIS_1Q, _PAULIS_2Q, NoiseModel
from repro.simulator.statevector import StateVector, cached_unitary

#: Ideal-distribution probability cutoff (matches the per-trial engine).
_PROB_CUTOFF = 1e-12

#: One Pauli event: (dense qubit, pauli name).
DenseEvent = Tuple[int, str]


class CompactProgram:
    """Physical program restricted to the hardware qubits it touches."""

    def __init__(self, circuit: Circuit,
                 times: Sequence[Tuple[float, float]],
                 topology=None) -> None:
        used = circuit.used_qubits()
        if not used:
            raise SimulationError("program touches no qubits")
        self.hw_to_dense = {h: i for i, h in enumerate(used)}
        self.used = used
        self.n_qubits = len(used)
        self.gates = list(circuit.gates)
        self.times = list(times)
        self.n_cbits = circuit.n_cbits
        # Measurement map: dense qubit -> cbit; validated terminal.
        self.measures: List[Tuple[int, int, int]] = []  # (hw, dense, cbit)
        seen_measure = set()
        for gate in self.gates:
            for q in gate.qubits:
                if q in seen_measure and gate.name != "barrier":
                    raise SimulationError(
                        f"operation on qubit {q} after its measurement")
            if gate.is_measure:
                hw = gate.qubits[0]
                self.measures.append((hw, self.hw_to_dense[hw], gate.cbit))
                seen_measure.add(hw)
        # Idle window preceding each gate, per participating qubit.
        last_finish: Dict[int, float] = {}
        self.idle_before: List[Tuple[Tuple[int, float], ...]] = []
        for gate, (start, duration) in zip(self.gates, self.times):
            gaps = []
            for q in gate.qubits:
                previous = last_finish.get(q)
                if previous is not None and start > previous + 1e-9:
                    gaps.append((q, start - previous))
                last_finish[q] = start + duration
            self.idle_before.append(tuple(gaps))
        # Crosstalk exposure: for each two-qubit gate, how many other
        # two-qubit gates overlap it in time on an adjacent coupling.
        # Start-time-sorted interval sweep: only gates whose interval is
        # still open when the next one starts are candidate partners.
        self.concurrent_neighbors: List[int] = [0] * len(self.gates)
        two_q = [(i, frozenset(g.qubits), s, s + d)
                 for i, (g, (s, d)) in enumerate(zip(self.gates, self.times))
                 if g.is_two_qubit]
        two_q.sort(key=lambda entry: (entry[2], entry[0]))
        active: List[Tuple[int, frozenset, float, float]] = []
        for entry in two_q:
            i, qs1, s1, _ = entry
            active = [a for a in active if a[3] > s1 + 1e-9]
            for j, qs2, _, _ in active:
                if qs1 & qs2:
                    continue  # same gate chain, not crosstalk
                if topology is not None and not any(
                        topology.is_adjacent(a, b)
                        for a in qs1 for b in qs2):
                    continue  # spatially remote couplings
                self.concurrent_neighbors[i] += 1
                self.concurrent_neighbors[j] += 1
            active.append(entry)


def _build_ops(compact: CompactProgram) -> List:
    """Unitary schedule: (cached matrix, dense qubits) per gate, or
    ``None`` for barriers and measurements."""
    ops: List = []
    for gate in compact.gates:
        if gate.name == "barrier" or gate.is_measure:
            ops.append(None)
        else:
            dense = tuple(compact.hw_to_dense[q] for q in gate.qubits)
            ops.append((cached_unitary(gate.name, gate.param), dense))
    return ops


class ProgramTrace:
    """Flat-array lowering of one (program, noise model) pair.

    Attributes:
        site_gate: ``(S,)`` gate index each error site belongs to.
        site_prob: ``(S,)`` Bernoulli firing probability per site.
        site_cum: ``(S, 14)`` interior cumulative boundaries of each
            site's conditional Pauli-choice distribution, padded with
            1.0 (a uniform draw lands left of the padding).
        site_events: per site, a tuple of choices; each choice is a
            tuple of :data:`DenseEvent` to apply after the gate.
    """

    def __init__(self, compact: CompactProgram, noise: NoiseModel) -> None:
        self.compact = compact
        self.n_qubits = compact.n_qubits
        self.n_cbits = compact.n_cbits
        self.measures = list(compact.measures)
        self.n_measures = len(self.measures)

        # Unitary schedule: (cached matrix, dense qubits) or None for
        # barriers and measurements.
        self.ops = _build_ops(compact)

        # Error-site table, in the order the per-trial sampler visits
        # sites: for each gate, its idle windows first, then the gate's
        # own error channel. Zero-probability sites are dropped.
        site_gate: List[int] = []
        site_prob: List[float] = []
        cum_rows: List[np.ndarray] = []
        self.site_events: List[Tuple[Tuple[DenseEvent, ...], ...]] = []
        for i, (gate, gaps) in enumerate(zip(compact.gates,
                                             compact.idle_before)):
            for qubit, idle in gaps:
                rates = noise.idle_rates(qubit, idle)
                if rates.total <= 0.0:
                    continue
                dense = compact.hw_to_dense[qubit]
                site_gate.append(i)
                site_prob.append(rates.total)
                cum_rows.append(np.array(
                    [rates.p_x, rates.p_x + rates.p_y]) / rates.total)
                self.site_events.append(
                    tuple(((dense, p),) for p in _PAULIS_1Q))
            p = noise.gate_error_probability(
                gate, concurrent_neighbors=compact.concurrent_neighbors[i])
            if p <= 0.0:
                continue
            site_gate.append(i)
            site_prob.append(p)
            if gate.is_two_qubit:
                da, db = (compact.hw_to_dense[q] for q in gate.qubits)
                choices = []
                for pa, pb in _PAULIS_2Q:
                    events = []
                    if pa != "i":
                        events.append((da, pa))
                    if pb != "i":
                        events.append((db, pb))
                    choices.append(tuple(events))
                self.site_events.append(tuple(choices))
                cum_rows.append(np.arange(1, len(_PAULIS_2Q))
                                / float(len(_PAULIS_2Q)))
            else:
                dense = compact.hw_to_dense[gate.qubits[0]]
                self.site_events.append(
                    tuple(((dense, p),) for p in _PAULIS_1Q))
                cum_rows.append(np.array([1.0, 2.0]) / 3.0)
        self.n_sites = len(site_gate)
        self.site_gate = np.asarray(site_gate, dtype=np.int64)
        self.site_prob = np.asarray(site_prob, dtype=np.float64)
        max_bounds = len(_PAULIS_2Q) - 1
        self.site_cum = np.ones((self.n_sites, max_bounds), dtype=np.float64)
        for s, row in enumerate(cum_rows):
            self.site_cum[s, :len(row)] = row

        self._index_cbits()

        # Readout flip probabilities per measure, conditioned on the
        # true measured bit.
        self.readout_p0 = np.array(
            [noise.readout_flip_probability(hw, 0)
             for hw, _, _ in self.measures], dtype=np.float64)
        self.readout_p1 = np.array(
            [noise.readout_flip_probability(hw, 1)
             for hw, _, _ in self.measures], dtype=np.float64)

        self._strings: Dict[int, str] = {}
        self._outcome_strings: Dict[int, str] = {}

    def _index_cbits(self) -> None:
        """Classical-bit bookkeeping. Distinct measures may alias the
        same cbit (last write wins, like the per-trial engine); group
        measures per cbit so readout flips can chain in measure order.
        """
        self.measured_cbits: List[int] = []
        self.measures_for_cbit: List[List[int]] = []
        cbit_to_slot: Dict[int, int] = {}
        for m, (_, _, cbit) in enumerate(self.measures):
            slot = cbit_to_slot.get(cbit)
            if slot is None:
                slot = cbit_to_slot[cbit] = len(self.measured_cbits)
                self.measured_cbits.append(cbit)
                self.measures_for_cbit.append([])
            self.measures_for_cbit[slot].append(m)
        self.last_measure_for_cbit = [ms[-1]
                                      for ms in self.measures_for_cbit]

    # ------------------------------------------------------------------
    # Compact serialization (the sweep runtime's disk trace tier).
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the trace into plain numpy arrays (npz-serializable).

        Everything a fresh process needs to rebuild the trace without
        re-lowering is captured: the physical gate/time table (from
        which :class:`CompactProgram` and the unitary schedule are
        reconstructed — unitaries themselves live in the process-wide
        :func:`cached_unitary` cache, not the file), the error-site
        table, readout flip probabilities, and — only if already
        computed — the ideal output distribution, whose dense
        statevector simulation is the expensive part of lowering. No
        object arrays: the format round-trips with
        ``np.load(allow_pickle=False)``.
        """
        compact = self.compact
        gates = compact.gates
        arity = max((len(g.qubits) for g in gates), default=1)
        gate_qubits = np.full((len(gates), arity), -1, dtype=np.int64)
        for i, g in enumerate(gates):
            gate_qubits[i, :len(g.qubits)] = g.qubits
        site_pair = np.full((self.n_sites, 2), -1, dtype=np.int64)
        for s, choices in enumerate(self.site_events):
            # Single-qubit sites carry 3 one-event choices on one dense
            # qubit; two-qubit sites the 15 non-identity Pauli pairs,
            # the last of which is (da, "z"), (db, "z").
            if len(choices) == len(_PAULIS_1Q):
                site_pair[s, 0] = choices[0][0][0]
            else:
                site_pair[s, 0] = choices[-1][0][0]
                site_pair[s, 1] = choices[-1][1][0]
        # The physical register size is not retained by CompactProgram
        # (it keeps only used qubits); any size covering the gate
        # indices rebuilds an equivalent compact program.
        n_hw = max((q for g in gates for q in g.qubits), default=0) + 1
        data: Dict[str, np.ndarray] = {
            "circuit_shape": np.array([n_hw, compact.n_cbits],
                                      dtype=np.int64),
            "gate_names": np.array([g.name for g in gates]),
            "gate_qubits": gate_qubits,
            "gate_params": np.array(
                [np.nan if g.param is None else g.param for g in gates],
                dtype=np.float64),
            "gate_cbits": np.array(
                [-1 if g.cbit is None else g.cbit for g in gates],
                dtype=np.int64),
            "gate_times": np.asarray(compact.times, dtype=np.float64
                                     ).reshape(len(gates), 2),
            "concurrent": np.asarray(compact.concurrent_neighbors,
                                     dtype=np.int64),
            "site_gate": self.site_gate,
            "site_prob": self.site_prob,
            "site_cum": self.site_cum,
            "site_pair": site_pair,
            "readout_p0": self.readout_p0,
            "readout_p1": self.readout_p1,
        }
        if "_ideal" in self.__dict__:
            codes, probs, distribution = self._ideal
            data["ideal_codes"] = np.asarray(codes, dtype=np.int64)
            data["ideal_probs"] = np.asarray(probs, dtype=np.float64)
            data["ideal_strings"] = np.array(list(distribution.keys()))
            data["ideal_values"] = np.array(list(distribution.values()),
                                            dtype=np.float64)
        return data

    @classmethod
    def from_arrays(cls, data: Dict[str, np.ndarray]) -> "ProgramTrace":
        """Rebuild a trace from :meth:`to_arrays` output.

        The result is functionally identical to the originally lowered
        trace: same arrays, same unitary schedule (re-fetched from the
        unitary cache), same lazily-computable dense members. Raises on
        malformed input (missing keys, shape mismatches) — the disk
        tier treats any exception as a cache miss and re-lowers.
        """
        from repro.ir.circuit import Circuit
        from repro.ir.gates import Gate

        n_hw, n_cbits = (int(x) for x in data["circuit_shape"])
        circuit = Circuit(n_hw, n_cbits=n_cbits, name="trace")
        params = data["gate_params"]
        cbits = data["gate_cbits"]
        for i, name in enumerate(data["gate_names"]):
            qubits = tuple(int(q) for q in data["gate_qubits"][i]
                           if q >= 0)
            param = None if np.isnan(params[i]) else float(params[i])
            cbit = None if cbits[i] < 0 else int(cbits[i])
            circuit.append(Gate(str(name), qubits, param=param,
                                cbit=cbit))
        times = [(float(s), float(d)) for s, d in data["gate_times"]]
        compact = CompactProgram(circuit, times)
        # The crosstalk sweep above ran without a topology; restore the
        # counts the original lowering computed (they feed error
        # probabilities, which are already baked into site_prob, but a
        # consumer re-lowering from this compact should see the truth).
        compact.concurrent_neighbors = [int(c)
                                        for c in data["concurrent"]]

        trace = object.__new__(cls)
        trace.compact = compact
        trace.n_qubits = compact.n_qubits
        trace.n_cbits = compact.n_cbits
        trace.measures = list(compact.measures)
        trace.n_measures = len(trace.measures)
        trace.ops = _build_ops(compact)
        trace.site_gate = np.asarray(data["site_gate"], dtype=np.int64)
        trace.site_prob = np.asarray(data["site_prob"], dtype=np.float64)
        trace.site_cum = np.asarray(data["site_cum"], dtype=np.float64)
        trace.n_sites = len(trace.site_gate)
        site_events: List[Tuple[Tuple[DenseEvent, ...], ...]] = []
        for da, db in data["site_pair"]:
            da = int(da)
            if db < 0:
                site_events.append(
                    tuple(((da, p),) for p in _PAULIS_1Q))
            else:
                db = int(db)
                choices = []
                for pa, pb in _PAULIS_2Q:
                    events = []
                    if pa != "i":
                        events.append((da, pa))
                    if pb != "i":
                        events.append((db, pb))
                    choices.append(tuple(events))
                site_events.append(tuple(choices))
        trace.site_events = site_events
        trace._index_cbits()
        trace.readout_p0 = np.asarray(data["readout_p0"],
                                      dtype=np.float64)
        trace.readout_p1 = np.asarray(data["readout_p1"],
                                      dtype=np.float64)
        trace._strings = {}
        trace._outcome_strings = {}
        if "ideal_codes" in data:
            distribution = {
                str(s): float(v)
                for s, v in zip(data["ideal_strings"],
                                data["ideal_values"])}
            trace.__dict__["_ideal"] = (
                np.asarray(data["ideal_codes"], dtype=np.int64),
                np.asarray(data["ideal_probs"], dtype=np.float64),
                distribution)
        return trace

    # ------------------------------------------------------------------
    # Dense-basis members. These are exponential in n_qubits, so they
    # are computed lazily: only the dense engines touch them, and the
    # stabilizer engine shares cached traces with programs far beyond
    # any dense budget. The values are byte-identical to the eager
    # computation they replaced (same construction, same ordering), and
    # ``rescaled`` clones share them via ``__dict__.update``.

    @cached_property
    def basis_codes(self) -> np.ndarray:
        """Dense-basis index -> measured-bit pattern code (bit m of the
        code is the measured value of measure m)."""
        basis = np.arange(1 << self.n_qubits, dtype=np.int64)
        codes = np.zeros(basis.shape, dtype=np.int64)
        for m, (_, dense, _) in enumerate(self.measures):
            codes |= ((basis >> (self.n_qubits - 1 - dense)) & 1) << m
        return codes

    @cached_property
    def pattern_order(self) -> np.ndarray:
        """Measured qubits are distinct, so every pattern code covers
        exactly ``2**(n_qubits - n_measures)`` basis states; sorting by
        code lets the batch collapse basis probabilities to pattern
        distributions with one reshape+sum instead of per-row
        bincounts."""
        return np.argsort(self.basis_codes, kind="stable")

    @cached_property
    def _ideal(self) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
        """Ideal (noise-free) output distribution over pattern codes."""
        pattern = self.plan_probabilities({})
        keep = np.nonzero(pattern > _PROB_CUTOFF)[0]
        probs = pattern[keep]
        # Aliased cbits can render distinct pattern codes to the same
        # string: accumulate, don't overwrite.
        distribution: Dict[str, float] = {}
        for c, p in zip(keep, probs):
            string = self.pattern_string(int(c))
            distribution[string] = distribution.get(string, 0.0) + float(p)
        return keep, probs / probs.sum(), distribution

    @property
    def ideal_codes(self) -> np.ndarray:
        return self._ideal[0]

    @property
    def ideal_probs(self) -> np.ndarray:
        return self._ideal[1]

    @property
    def ideal_distribution(self) -> Dict[str, float]:
        return self._ideal[2]

    # ------------------------------------------------------------------
    def rescaled(self, scale: float,
                 scale_readout: bool = False) -> "ProgramTrace":
        """A copy of this trace with error probabilities times *scale*.

        The cheap noise-amplification path of zero-noise extrapolation
        (:mod:`repro.mitigation.zne`): only the flat ``site_prob``
        array (and, on request, the readout flip arrays) is rebuilt —
        everything structural (unitary schedule, Pauli-choice
        cumulatives, ideal distribution, measure maps) is shared with
        the original, so rescaling costs one clipped numpy multiply
        instead of a full lowering. Because lowering multiplies each
        site's firing probability uniformly (conditional Pauli choices
        are scale-invariant), the result is array-identical to freshly
        lowering the same program under a
        :class:`~repro.mitigation.zne.ScaledNoiseModel` for any
        ``scale > 0`` — same sites, same RNG stream, same counts.
        (At ``scale = 0`` a fresh lowering would also *drop* the
        now-impossible sites; the rescaled copy keeps them at
        probability zero — identical in law, different RNG stream.)

        Args:
            scale: Non-negative multiplier; probabilities clip at 1.
            scale_readout: Also scale the per-measure readout flip
                probabilities.
        """
        if scale < 0.0:
            raise SimulationError("noise scale must be non-negative")
        clone = object.__new__(ProgramTrace)
        clone.__dict__.update(self.__dict__)
        clone.site_prob = np.minimum(self.site_prob * scale, 1.0)
        if scale_readout:
            clone.readout_p0 = np.minimum(self.readout_p0 * scale, 1.0)
            clone.readout_p1 = np.minimum(self.readout_p1 * scale, 1.0)
        return clone

    # ------------------------------------------------------------------
    def plan_probabilities(self, plan: Dict[int, List[DenseEvent]]
                           ) -> np.ndarray:
        """Measured-pattern distribution after executing one error plan.

        Args:
            plan: Gate index -> Pauli events to inject after that gate
                (empty dict = noise-free run).

        Returns:
            Length ``2**n_measures`` probability vector over pattern
            codes.
        """
        state = StateVector(self.n_qubits)
        for i, op in enumerate(self.ops):
            if op is not None:
                matrix, dense = op
                state.apply_matrix(matrix, dense)
            for dense_q, pauli in plan.get(i, ()):
                state.apply_matrix(cached_unitary(pauli), (dense_q,))
        probs = state.probabilities()
        return np.bincount(self.basis_codes, weights=probs,
                           minlength=1 << self.n_measures)

    def pattern_string(self, code: int) -> str:
        """Classical output string for a measured-bit pattern code."""
        cached = self._strings.get(code)
        if cached is None:
            chars = ["0"] * self.n_cbits
            for m, (_, _, cbit) in enumerate(self.measures):
                chars[cbit] = "1" if (code >> m) & 1 else "0"
            cached = self._strings[code] = "".join(chars)
        return cached

    def outcome_string(self, code: int) -> str:
        """Classical output string for a rendered-cbit code (bit *j* of
        the code is the final value of ``measured_cbits[j]``)."""
        cached = self._outcome_strings.get(code)
        if cached is None:
            chars = ["0"] * self.n_cbits
            for j, cbit in enumerate(self.measured_cbits):
                chars[cbit] = "1" if (code >> j) & 1 else "0"
            cached = self._outcome_strings[code] = "".join(chars)
        return cached
