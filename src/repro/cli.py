"""Command-line interface.

Entry points (also available as ``python -m repro``):

* ``repro compile``     — compile a benchmark or ScaffIR/QASM file and
  print the optimized OpenQASM (the paper's toolflow output);
* ``repro run``         — compile and execute on the noisy simulator,
  reporting the measured success rate;
* ``repro calibration`` — print (or save) a day's calibration snapshot;
* ``repro experiment``  — regenerate one of the paper's figures/tables
  (``--workers N`` fans the underlying sweep out over N processes);
* ``repro sweep``       — run a declarative (benchmark x variant x
  calibration-day x seed) scenario grid on the sweep runtime, with
  ``--workers`` parallelism and cross-cell compile/trace caching;
* ``repro mitigate``    — compile, execute, and apply an
  error-mitigation strategy (zero-noise extrapolation, readout
  inversion, or a stack), reporting raw vs mitigated success;
* ``repro serve``       — run the compile service daemon: accepts
  ``repro submit`` grids over a length-prefixed JSON socket protocol
  with admission control (bounded queue, per-tenant caps, coalescing),
  graceful SIGTERM drain, and a ``--health`` probe;
* ``repro submit``      — submit a sweep grid to a running ``repro
  serve`` daemon with per-request deadlines, exponential backoff, and
  idempotent retry — the served counterpart of ``repro sweep``;
* ``repro backends``    — list the registered machine targets
  (:mod:`repro.backend` presets plus any third-party registrations);
* ``repro passes``      — list the registered compiler passes and
  mapper variants behind the pass-manager pipeline;
* ``repro benchmarks``  — list the registered Table-2 benchmarks.

Every executing subcommand takes ``--device`` (a registered backend
name; ``repro sweep`` accepts several and runs the grid per device),
and ``repro run`` takes ``--engine`` (any registered execution
engine). ``repro run``, ``repro sweep`` and ``repro mitigate`` accept
``--cache-dir DIR`` to persist the compile/stage cache on disk, so
repeated invocations reuse compilations across processes.

``repro sweep`` runs on the fault-tolerant runtime: failed cells are
reported, not fatal (``--strict`` restores abort-on-first-error with a
non-zero exit), ``--resume`` skips cells already checkpoint-journaled
in ``--cache-dir``, and ``--max-retries``/``--batch-timeout`` tune the
supervised pool's worker-death retry and watchdog policies. Setting
``REPRO_FAULTS=1`` with a ``REPRO_FAULT_SPEC`` arms the
fault-injection harness (:mod:`repro.runtime.faults`) for chaos
drills.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.backend import get_backend, registered_backends, \
    registered_engines
from repro.compiler import CompilerOptions, build_pipeline
from repro.exceptions import ReproError
from repro.hardware import device_calibration
from repro.ir import parse_scaffir, qasm_to_circuit
# Importing the mitigation package also registers its "fold" pass with
# the compiler pass registry (visible in `repro passes`).
from repro.mitigation import strategy_from_spec
from repro.programs import benchmark_names, expected_output, get_benchmark
from repro.simulator import execute

_VARIANT_CHOICES = ("qiskit", "t-smt", "t-smt*", "r-smt*", "greedyv*",
                    "greedye*")

_EXPERIMENTS = ("fig1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
                "fig10", "fig11", "mitigation")

_STRATEGY_CHOICES = ("zne", "readout", "readout+zne")


def _nonnegative_int(text: str) -> int:
    """Argparse type: an int >= 0 (workers, retries, days, seeds)."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type: an int >= 1 (capacities, trials)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type: a float > 0 (timeouts, deadlines, windows)."""
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be positive, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noise-adaptive compiler mappings for NISQ computers "
                    "(ASPLOS 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--device", default="ibmq16",
                       help="registered backend (default: ibmq16; see "
                            "`repro backends`)")
        p.add_argument("--day", type=int, default=0,
                       help="calibration day (default: 0)")
        p.add_argument("--calibration-seed", type=int, default=None,
                       help="calibration generator seed (default: the "
                            "backend's own)")

    def add_compile_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--variant", default="r-smt*",
                       choices=_VARIANT_CHOICES)
        p.add_argument("--routing", default=None,
                       choices=("rr", "1bp", "best", "shortest"),
                       help="routing policy (default: variant's own)")
        p.add_argument("--omega", type=float, default=0.5,
                       help="readout weight for r-smt* (default: 0.5)")
        p.add_argument("--time-limit", type=float, default=60.0,
                       help="solver time limit in seconds")
        p.add_argument("--solver-workers", type=_positive_int, default=1,
                       help="processes for the portfolio branch-and-bound "
                            "(r-smt*); results are bit-identical to "
                            "serial (default: 1)")
        p.add_argument("--peephole", action="store_true",
                       help="apply adjacent-inverse cancellation")
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("--benchmark",
                           choices=benchmark_names(include_large_n=True),
                           help="a registered benchmark (Table 2 or the "
                                "large-n Clifford tier)")
        group.add_argument("--scaffir", type=Path,
                           help="path to a ScaffIR program")
        group.add_argument("--qasm", type=Path,
                           help="path to an OpenQASM 2.0 program")

    compile_p = sub.add_parser("compile", help="compile to OpenQASM")
    add_machine_args(compile_p)
    add_compile_args(compile_p)
    compile_p.add_argument("--output", type=Path, default=None,
                           help="write QASM here instead of stdout")
    compile_p.add_argument("--verify", action="store_true",
                           help="append the verify pass to the pipeline")
    compile_p.add_argument("--timing", action="store_true",
                           help="print a per-pass timing breakdown")

    profile_p = sub.add_parser(
        "profile",
        help="compile under the profiler and report per-pass wall time, "
             "allocations, and solver search counters")
    add_machine_args(profile_p)
    add_compile_args(profile_p)
    profile_p.add_argument("--no-alloc", action="store_true",
                           help="skip allocation tracing (tracemalloc "
                                "slows the compile it measures)")
    profile_p.add_argument("--json", action="store_true",
                           help="emit the profile as JSON instead of a "
                                "table")

    def add_cache_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", type=Path, default=None,
                       help="persist the compile/stage cache in this "
                            "directory (reused across invocations)")

    def add_array_backend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--array-backend", default=None, metavar="NAME",
                       help="array backend for the statevector "
                            "contraction (numpy/torch/cupy; see `repro "
                            "engines`). Counts are bit-identical across "
                            "backends; unavailable ones warn and fall "
                            "back to numpy")
        p.add_argument("--chunk-mib", type=_positive_int, default=None,
                       metavar="MIB",
                       help="cap the per-chunk statevector buffer at "
                            "this many MiB of complex128 (sets "
                            "REPRO_CHUNK_MIB; default: 64 MiB on host "
                            "backends, a fraction of free device memory "
                            "on CUDA). Results are chunk-invariant")

    run_p = sub.add_parser("run", help="compile and simulate")
    add_machine_args(run_p)
    add_compile_args(run_p)
    run_p.add_argument("--trials", type=int, default=1024)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--engine", default=None,
                       help="execution engine (default: the backend's "
                            "own; registered: batched, trial, analytic, "
                            "gpu, stabilizer, auto, plus third-party "
                            "registrations)")
    run_p.add_argument("--expected", default=None,
                       help="expected outcome string (default: the "
                            "benchmark's registered answer)")
    add_array_backend_args(run_p)
    add_cache_dir(run_p)

    cal_p = sub.add_parser("calibration", help="print calibration data")
    add_machine_args(cal_p)
    cal_p.add_argument("--output", type=Path, default=None,
                       help="write JSON here instead of a summary")

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper figure/table")
    exp_p.add_argument("name", choices=_EXPERIMENTS)
    exp_p.add_argument("--trials", type=int, default=1024)
    exp_p.add_argument("--days", type=int, default=None,
                       help="days for fig1/fig6")
    exp_p.add_argument("--device", default=None,
                       help="run the study on this registered backend "
                            "instead of the paper's IBMQ16 (ignored by "
                            "the device-independent table2/fig11)")
    exp_p.add_argument("--workers", type=_nonnegative_int, default=0,
                       help="sweep worker processes (0 = in-process; "
                            "ignored by fig1/table2)")
    add_array_backend_args(exp_p)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a scenario grid on the parallel sweep runtime",
        description="Execute a (device x benchmark x variant x "
                    "calibration-day x seed) grid through the sweep "
                    "runtime. Cells sharing a configuration reuse one "
                    "compilation and one lowered execution trace (cache "
                    "keys are scoped per device, so cross-device cells "
                    "never alias); --workers >= 2 fans the grid out "
                    "over a process pool with results bit-identical to "
                    "the serial run.")
    sweep_p.add_argument("--device", nargs="+", default=["ibmq16"],
                         metavar="NAME",
                         help="registered backends to sweep — the same "
                              "grid runs per device (default: ibmq16)")
    sweep_p.add_argument("--calibration-seed", type=int, default=None,
                         help="calibration generator seed (default: "
                              "each backend's own)")
    sweep_p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                         default=["BV4", "HS6", "Toffoli"],
                         choices=benchmark_names(include_large_n=True),
                         help="benchmarks to sweep (default: BV4 HS6 "
                              "Toffoli)")
    sweep_p.add_argument("--variants", nargs="+", metavar="VARIANT",
                         default=["t-smt*", "r-smt*"],
                         choices=_VARIANT_CHOICES,
                         help="compiler variants (default: t-smt* r-smt*)")
    sweep_p.add_argument("--routing", default=None,
                         choices=("rr", "1bp", "best", "shortest"),
                         help="routing policy override (default: each "
                              "variant's own)")
    sweep_p.add_argument("--days", type=int, default=1,
                         help="calibration days 0..N-1 (default: 1)")
    sweep_p.add_argument("--seeds", type=int, default=1,
                         help="executor seeds per configuration "
                              "(default: 1)")
    sweep_p.add_argument("--seed", type=int, default=7,
                         help="base executor seed (default: 7)")
    sweep_p.add_argument("--trials", type=int, default=1024)
    sweep_p.add_argument("--engine", default=None,
                         help="execution engine for every cell "
                              "(default: each backend's own; "
                              "stabilizer/auto unlock the large-n "
                              "Clifford tier)")
    sweep_p.add_argument("--omega", type=float, default=0.5,
                         help="readout weight for r-smt* (default: 0.5)")
    sweep_p.add_argument("--workers", type=_nonnegative_int,
                         default=0,
                         help="worker processes (0 = in-process serial)")
    sweep_p.add_argument("--strict", action="store_true",
                         help="abort on the first failed cell (non-zero "
                              "exit) instead of reporting partial "
                              "results plus a failure report")
    sweep_p.add_argument("--resume", action="store_true",
                         help="skip cells already checkpoint-journaled "
                              "in --cache-dir (resume an interrupted "
                              "sweep; bit-identical to an uninterrupted "
                              "run)")
    sweep_p.add_argument("--max-retries", type=_nonnegative_int,
                         default=2,
                         help="worker-death retries per cell before the "
                              "suspect cell is quarantined as failed "
                              "(default: 2)")
    sweep_p.add_argument("--batch-timeout", type=_positive_float,
                         default=None,
                         metavar="SECONDS",
                         help="watchdog: kill and resubmit a worker "
                              "making no progress for this long "
                              "(default: disabled)")
    add_array_backend_args(sweep_p)
    add_cache_dir(sweep_p)

    mit_p = sub.add_parser(
        "mitigate",
        help="execute with an error-mitigation strategy",
        description="Compile the selected benchmarks, execute them on "
                    "the noisy simulator, and apply an error-mitigation "
                    "strategy — zero-noise extrapolation (zne), "
                    "readout-confusion inversion (readout), or a '+' "
                    "stack — reporting raw vs mitigated success "
                    "probability per benchmark. Scaled-noise executions "
                    "share the compiled program and its lowered trace; "
                    "nothing is recompiled.")
    add_machine_args(mit_p)
    mit_p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                       default=["BV4", "BV6", "HS2", "Toffoli"],
                       choices=benchmark_names(include_large_n=True),
                       help="benchmarks to mitigate (default: BV4 BV6 "
                            "HS2 Toffoli)")
    mit_p.add_argument("--variant", default="r-smt*",
                       choices=_VARIANT_CHOICES)
    mit_p.add_argument("--omega", type=float, default=0.5,
                       help="readout weight for r-smt* (default: 0.5)")
    mit_p.add_argument("--strategy", default="zne",
                       choices=_STRATEGY_CHOICES,
                       help="mitigation strategy or '+' stack "
                            "(default: zne)")
    mit_p.add_argument("--scales", nargs="+", type=float, default=None,
                       metavar="S",
                       help="ZNE noise scales (default: 1 1.5 2)")
    mit_p.add_argument("--fit", default="linear",
                       choices=("linear", "richardson", "exp"),
                       help="ZNE extrapolation fit (default: linear)")
    mit_p.add_argument("--amplifier", default="trace",
                       choices=("trace", "fold"),
                       help="ZNE noise amplifier: scale the lowered "
                            "trace (no recompilation) or fold gates "
                            "through the pipeline (default: trace)")
    mit_p.add_argument("--trials", type=int, default=1024)
    mit_p.add_argument("--seed", type=int, default=7)
    mit_p.add_argument("--workers", type=_nonnegative_int, default=0,
                       help="worker processes (0 = in-process serial)")
    add_cache_dir(mit_p)

    serve_p = sub.add_parser(
        "serve",
        help="run the compile service daemon (or probe its health)",
        description="Start a long-lived compilation-as-a-service "
                    "daemon: clients submit sweep cells over a "
                    "length-prefixed JSON socket protocol; admitted "
                    "cells are batched through the fault-tolerant "
                    "sweep runtime and each result is streamed back "
                    "to every client waiting on its fingerprint. "
                    "Admission control bounds the queue and each "
                    "tenant's in-flight requests, shedding the excess "
                    "with Retry-After hints; identical submissions "
                    "coalesce onto one execution. SIGTERM drains "
                    "gracefully: in-flight cells finish and are "
                    "journaled, new work is refused, the process "
                    "exits 0. With --health, probe a running server "
                    "and print its health report instead.")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default: loopback; "
                              "the protocol carries pickled payloads — "
                              "bind trusted interfaces only)")
    serve_p.add_argument("--port", type=int, default=7781,
                         help="TCP port (default: 7781; 0 = OS-picked, "
                              "announced on stderr)")
    serve_p.add_argument("--health", action="store_true",
                         help="query a running server's health and "
                              "exit (0 healthy, 1 unreachable)")
    serve_p.add_argument("--workers", type=_nonnegative_int, default=0,
                         help="sweep pool width per batch (0 = "
                              "in-process; >= 2 enables supervised "
                              "worker-death recovery)")
    serve_p.add_argument("--queue-capacity", type=_positive_int,
                         default=64, metavar="K",
                         help="max distinct queued cells before "
                              "shedding (default: 64)")
    serve_p.add_argument("--tenant-cap", type=_positive_int, default=16,
                         metavar="M",
                         help="max outstanding requests per tenant "
                              "(default: 16)")
    serve_p.add_argument("--batch-window", type=_positive_float,
                         default=0.05, metavar="SECONDS",
                         help="burst-coalescing window per executor "
                              "batch (default: 0.05)")
    serve_p.add_argument("--batch-max", type=_positive_int, default=32,
                         help="max distinct cells per executor batch "
                              "(default: 32)")
    serve_p.add_argument("--max-retries", type=_nonnegative_int,
                         default=2,
                         help="worker-death retries per cell "
                              "(default: 2)")
    serve_p.add_argument("--batch-timeout", type=_positive_float,
                         default=None, metavar="SECONDS",
                         help="watchdog: kill and resubmit a worker "
                              "making no progress for this long "
                              "(default: disabled)")
    add_cache_dir(serve_p)

    submit_p = sub.add_parser(
        "submit",
        help="submit a scenario grid to a running compile service",
        description="The client side of `repro serve`: build the same "
                    "(device x benchmark x variant x day x seed) grid "
                    "as `repro sweep` and submit it cell by cell over "
                    "the socket protocol, with per-request deadlines, "
                    "exponential backoff with jitter, idempotent "
                    "resubmission, and a circuit breaker. Results are "
                    "bit-identical to running the grid in-process.")
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=7781)
    submit_p.add_argument("--tenant", default="cli",
                          help="admission-control identity "
                               "(default: cli)")
    submit_p.add_argument("--deadline", type=_positive_float,
                          default=None, metavar="SECONDS",
                          help="per-request wall-clock budget "
                               "(default: none)")
    submit_p.add_argument("--max-attempts", type=_positive_int,
                          default=8,
                          help="tries per request, first included "
                               "(default: 8)")
    submit_p.add_argument("--device", nargs="+", default=["ibmq16"],
                          metavar="NAME",
                          help="registered backends — the same grid "
                               "runs per device (default: ibmq16)")
    submit_p.add_argument("--calibration-seed", type=int, default=None)
    submit_p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                          default=["BV4", "HS6", "Toffoli"],
                          choices=benchmark_names(include_large_n=True))
    submit_p.add_argument("--variants", nargs="+", metavar="VARIANT",
                          default=["t-smt*", "r-smt*"],
                          choices=_VARIANT_CHOICES)
    submit_p.add_argument("--routing", default=None,
                          choices=("rr", "1bp", "best", "shortest"))
    submit_p.add_argument("--days", type=_positive_int, default=1)
    submit_p.add_argument("--seeds", type=_positive_int, default=1)
    submit_p.add_argument("--seed", type=int, default=7)
    submit_p.add_argument("--trials", type=_positive_int, default=1024)
    submit_p.add_argument("--engine", default=None,
                          help="execution engine for every cell "
                               "(default: each backend's own)")
    submit_p.add_argument("--omega", type=float, default=0.5)

    sub.add_parser("backends",
                   help="list registered machine targets")

    sub.add_parser("engines",
                   help="list execution engines and array backends")

    sub.add_parser("passes",
                   help="list registered compiler passes and variants")

    sub.add_parser("benchmarks", help="list registered benchmarks")
    return parser


def _load_circuit(args: argparse.Namespace):
    if args.benchmark:
        return (get_benchmark(args.benchmark).build(),
                expected_output(args.benchmark))
    if args.scaffir:
        return parse_scaffir(args.scaffir.read_text(),
                             name=args.scaffir.stem), None
    return qasm_to_circuit(args.qasm.read_text(), name=args.qasm.stem), None


def _variant_options(variant: str, omega: float,
                     routing: Optional[str] = None) -> CompilerOptions:
    """The CLI-wide variant name -> CompilerOptions map (one source of
    truth for ``compile``, ``run`` and ``sweep``)."""
    defaults = {
        "qiskit": CompilerOptions.qiskit(),
        "t-smt": CompilerOptions.t_smt(),
        "t-smt*": CompilerOptions.t_smt_star(),
        "r-smt*": CompilerOptions.r_smt_star(omega=omega),
        "greedyv*": CompilerOptions.greedy_v(),
        "greedye*": CompilerOptions.greedy_e(),
    }
    options = defaults[variant]
    if routing is not None:
        options = options.with_(routing=routing)
    return options


def _options(args: argparse.Namespace) -> CompilerOptions:
    return _variant_options(args.variant, args.omega, args.routing).with_(
        solver_time_limit=args.time_limit, peephole=args.peephole,
        solver_workers=getattr(args, "solver_workers", 1))


def _cmd_compile(args: argparse.Namespace, out) -> int:
    circuit, _ = _load_circuit(args)
    calibration = device_calibration(args.device, day=args.day,
                                     seed=args.calibration_seed)
    options = _options(args)
    pipeline = build_pipeline(options, verify=args.verify)
    program = pipeline.run(circuit, calibration, options)
    print(program.summary(), file=sys.stderr)
    if args.verify:
        print(f"verification OK "
              f"({len(program.verification.checks_run)} checks)",
              file=sys.stderr)
    if args.timing:
        print(program.timing_report(), file=sys.stderr)
    text = program.qasm()
    if args.output:
        args.output.write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        out.write(text)
    return 0


def _cmd_profile(args: argparse.Namespace, out) -> int:
    import json as _json

    from repro.profiling import Profiler

    circuit, _ = _load_circuit(args)
    calibration = device_calibration(args.device, day=args.day,
                                     seed=args.calibration_seed)
    options = _options(args)
    pipeline = build_pipeline(options)
    with Profiler(trace_allocations=not args.no_alloc) as profiler:
        program = pipeline.run(circuit, calibration, options,
                               profiler=profiler)
    solver_stats = program.mapping.stats if program.mapping else None
    if args.json:
        out.write(_json.dumps({"passes": profiler.as_dict(),
                               "solver": solver_stats,
                               "compile_time": program.compile_time},
                              indent=2) + "\n")
        return 0
    print(program.summary(), file=sys.stderr)
    out.write(profiler.report(solver_stats=solver_stats) + "\n")
    return 0


def _compile_cache(args: argparse.Namespace):
    """The compile cache an invocation should use (disk-backed when
    ``--cache-dir`` was given, fresh in-memory otherwise)."""
    from repro.runtime import make_compile_cache

    return make_compile_cache(getattr(args, "cache_dir", None))


def _array_backend_setup(args: argparse.Namespace) -> Optional[str]:
    """Apply ``--chunk-mib``/``--array-backend`` and return the
    validated array-backend name (``None`` when unset).

    An unknown backend name fails in milliseconds (did-you-mean), not
    after the SMT solve; an unavailable one warns here — once per
    process — and the run proceeds on numpy with identical counts.
    """
    from repro.simulator import resolve_array_backend

    chunk_mib = getattr(args, "chunk_mib", None)
    if chunk_mib is not None:
        os.environ["REPRO_CHUNK_MIB"] = str(chunk_mib)
    name = getattr(args, "array_backend", None)
    if name is not None:
        resolve_array_backend(name)
    return name


def _cmd_run(args: argparse.Namespace, out) -> int:
    from repro.backend import get_engine

    circuit, registered_answer = _load_circuit(args)
    backend = get_backend(args.device)
    # Resolve the engine before compiling: an engine typo should fail
    # in milliseconds, not after the SMT solve.
    engine = args.engine or backend.default_engine
    get_engine(engine)
    array_backend = _array_backend_setup(args)
    if args.calibration_seed is not None:
        backend = backend.with_(calibration_seed=args.calibration_seed)
    calibration = backend.calibration(args.day)
    program, cache_hit = _compile_cache(args).get_or_compile(
        circuit, calibration, _options(args), backend=backend)
    if cache_hit:
        print("compilation served from cache", file=sys.stderr)
    expected = args.expected or registered_answer
    result = execute(program, calibration, trials=args.trials,
                     seed=args.seed, expected=expected, engine=engine,
                     array_backend=array_backend)
    out.write(program.summary() + "\n")
    if expected is not None:
        out.write(f"success rate: {result.success_rate:.4f} "
                  f"({result.counts.get(expected, 0)}/{result.trials} "
                  f"trials correct)\n")
    out.write(f"distribution overlap: {result.overlap:.4f}\n")
    top = sorted(result.counts.items(), key=lambda kv: -kv[1])[:5]
    out.write("top outcomes: "
              + ", ".join(f"{o}:{c}" for o, c in top) + "\n")
    return 0


def _cmd_calibration(args: argparse.Namespace, out) -> int:
    calibration = device_calibration(args.device, day=args.day,
                                     seed=args.calibration_seed)
    if args.output:
        args.output.write_text(calibration.to_json())
        print(f"wrote {args.output}", file=sys.stderr)
        return 0
    out.write(f"{calibration.topology.name} {calibration.label}\n")
    out.write(f"mean CNOT error:    {calibration.mean_cnot_error():.4f}\n")
    out.write(f"mean readout error: {calibration.mean_readout_error():.4f}\n")
    out.write(f"mean CNOT duration: "
              f"{calibration.mean_cnot_duration():.2f} slots\n")
    out.write(f"worst coherence:    "
              f"{calibration.worst_coherence_slots():.0f} slots\n")
    return 0


def _cmd_experiment(args: argparse.Namespace, out) -> int:
    from repro import experiments
    from repro.simulator import set_default_array_backend

    # The harnesses build their own sweeps internally, so the selection
    # travels as the process-wide default (inherited by fork-spawned
    # pool workers) instead of per-harness plumbing.
    set_default_array_backend(_array_backend_setup(args))
    name = args.name
    workers = args.workers
    device = args.device
    if device is not None and name in ("table2", "fig11"):
        print(f"note: {name} is device-independent; --device ignored",
              file=sys.stderr)
    if name == "fig1":
        result = experiments.run_fig1(days=args.days or 25, backend=device)
    elif name == "table2":
        result = experiments.run_table2()
    elif name == "fig5":
        result = experiments.run_fig5(trials=args.trials, workers=workers,
                                      backend=device)
    elif name == "fig6":
        result = experiments.run_fig6(days=args.days or 7,
                                      trials=args.trials, workers=workers,
                                      backend=device)
    elif name == "fig7":
        result = experiments.run_fig7(trials=args.trials, workers=workers,
                                      backend=device)
    elif name == "fig8":
        result = experiments.run_fig8(workers=workers, backend=device)
    elif name == "fig9":
        result = experiments.run_fig9(workers=workers, backend=device)
    elif name == "fig10":
        result = experiments.run_fig10(trials=args.trials, workers=workers,
                                       backend=device)
    elif name == "mitigation":
        result = experiments.run_mitigation_study(trials=args.trials,
                                                  workers=workers,
                                                  backend=device)
    else:
        result = experiments.run_fig11(workers=workers)
    out.write(result.to_text() + "\n")
    return 0


def _grid_cells(args: argparse.Namespace):
    """The (device x benchmark x variant x day x seed) grid both
    ``repro sweep`` (in-process) and ``repro submit`` (served) build —
    one source of truth, so the bit-identity contract between the two
    paths is a property of the runtime, not of argument plumbing."""
    from repro.runtime import SweepCell

    backends = []
    for name in args.device:
        backend = get_backend(name)
        if args.calibration_seed is not None:
            backend = backend.with_(
                calibration_seed=args.calibration_seed)
        backends.append(backend)
    specs = {name: get_benchmark(name) for name in args.benchmarks}
    circuits = {name: spec.build() for name, spec in specs.items()}
    # `repro submit` has no --array-backend (the server picks its own
    # arrays), hence the getattr; either way the choice stays out of
    # cell fingerprints, so journals are shared across backends.
    array_backend = getattr(args, "array_backend", None)
    return [SweepCell(circuit=circuits[bench],
                      backend=backend, day=day,
                      options=_variant_options(variant, args.omega,
                                               args.routing),
                      expected=specs[bench].expected_output,
                      trials=args.trials, seed=args.seed + s,
                      engine=getattr(args, "engine", None),
                      array_backend=array_backend,
                      key=(backend.name, bench, variant, day,
                           args.seed + s))
            for backend in backends
            for day in range(args.days)
            for bench in args.benchmarks
            for variant in args.variants
            for s in range(args.seeds)]


def _grid_table(results, out) -> None:
    """Render per-cell grid results (shared by sweep and submit)."""
    from repro.experiments.common import format_table

    rows = []
    for result in results:
        device, bench, variant, day, seed = result.key
        if result.ok:
            rows.append([device, bench, variant, day, seed,
                         result.success_rate,
                         result.compiled.swap_count,
                         f"{result.compiled.duration:.0f}"])
        else:
            rows.append([device, bench, variant, day, seed,
                         "FAILED", "-", "-"])
    out.write(format_table(
        ["device", "benchmark", "variant", "day", "seed", "success",
         "swaps", "duration"], rows) + "\n")


def _cmd_sweep(args: argparse.Namespace, out) -> int:
    from repro.runtime import FaultPlan, run_sweep

    _array_backend_setup(args)
    cells = _grid_cells(args)
    sweep = run_sweep(cells, workers=args.workers,
                      cache_dir=args.cache_dir, strict=args.strict,
                      resume=args.resume, max_retries=args.max_retries,
                      batch_timeout=args.batch_timeout,
                      faults=FaultPlan.from_env())
    _grid_table(sweep, out)
    out.write(sweep.summary() + "\n")
    if not sweep.ok:
        out.write(sweep.failure_report() + "\n")
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from repro.runtime import FaultPlan
    from repro.service import ServerConfig, ServiceClient
    from repro.service.server import serve

    if args.health:
        with ServiceClient(args.host, args.port) as client:
            report = client.health()
        for field in ("status", "uptime", "queue_depth", "in_flight",
                      "capacity", "tenant_cap", "served", "resumed",
                      "failed", "quarantined", "coalesced", "shed",
                      "degraded", "redeemed", "journal", "workers",
                      "batches"):
            out.write(f"{field}: {report.get(field)}\n")
        return 0 if report.get("status") in ("ok", "draining") else 1
    config = ServerConfig(
        host=args.host, port=args.port, cache_dir=args.cache_dir,
        workers=args.workers, queue_capacity=args.queue_capacity,
        tenant_cap=args.tenant_cap, batch_window=args.batch_window,
        batch_max=args.batch_max, max_retries=args.max_retries,
        batch_timeout=args.batch_timeout)

    def announce(host: str, port: int) -> None:
        print(f"repro serve: listening on {host}:{port} "
              f"(queue={args.queue_capacity}, tenant-cap="
              f"{args.tenant_cap}, workers={args.workers}, journal="
              f"{'on' if args.cache_dir else 'off'})",
              file=sys.stderr, flush=True)

    return serve(config, faults=FaultPlan.from_env(), announce=announce)


def _cmd_submit(args: argparse.Namespace, out) -> int:
    from repro.service import RetryPolicy, ServiceClient

    cells = _grid_cells(args)
    retry = RetryPolicy(max_attempts=args.max_attempts)
    with ServiceClient(args.host, args.port, tenant=args.tenant,
                       deadline=args.deadline, retry=retry) as client:
        results = client.submit_many(cells)
        stats = dict(client.stats)
    _grid_table(results, out)
    failures = [r for r in results if not r.ok]
    out.write(f"{len(results)} cells served by {args.host}:{args.port} "
              f"({stats['retries']} retries, {stats['sheds']} sheds, "
              f"{stats['transport_failures']} transport failures, "
              f"{stats['coalesced']} coalesced, "
              f"{stats['journal_hits']} journal hits)\n")
    if stats["degraded_responses"]:
        out.write("warning: server reported memory-only cache "
                  "degradation\n")
    if failures:
        out.write(f"{len(failures)}/{len(results)} cells failed "
                  f"server-side:\n")
        for result in failures:
            out.write("  " + result.failure.describe() + "\n")
        return 1
    return 0


def _cmd_mitigate(args: argparse.Namespace, out) -> int:
    from repro.experiments.common import format_table
    from repro.runtime import SweepCell, run_sweep

    backend = get_backend(args.device)
    if args.calibration_seed is not None:
        backend = backend.with_(calibration_seed=args.calibration_seed)
    options = _variant_options(args.variant, args.omega)
    strategy = strategy_from_spec(args.strategy,
                                  scales=args.scales or (),
                                  fit=args.fit, amplifier=args.amplifier)
    specs = {name: get_benchmark(name) for name in args.benchmarks}
    cells = [SweepCell(circuit=specs[name].build(), backend=backend,
                       day=args.day, options=options,
                       expected=specs[name].expected_output,
                       trials=args.trials, seed=args.seed,
                       mitigation=strategy, key=name)
             for name in args.benchmarks]
    sweep = run_sweep(cells, workers=args.workers,
                      cache_dir=args.cache_dir)

    rows = []
    improved = 0
    for result in sweep:
        outcome = result.mitigation
        rows.append([result.key, outcome.raw_success,
                     outcome.mitigated_success, outcome.gain,
                     outcome.executions])
        if outcome.gain > 0.0:
            improved += 1
    out.write(format_table(
        ["benchmark", "raw", "mitigated", "gain", "extra execs"],
        rows) + "\n")
    mean_raw = sum(r.mitigation.raw_success for r in sweep) / len(sweep)
    mean_mit = sum(r.mitigation.mitigated_success
                   for r in sweep) / len(sweep)
    out.write(f"strategy {strategy.fingerprint()}: mean success "
              f"{mean_raw:.4f} -> {mean_mit:.4f}, improved on "
              f"{improved}/{len(sweep)} benchmarks\n")
    out.write(sweep.summary() + "\n")
    return 0


def _cmd_backends(out) -> int:
    out.write(f"{'name':10s} {'qubits':>6} {'grid':>6} {'cal.seed':>8} "
              f"{'engine':>8}  description\n")
    for name in registered_backends():
        backend = get_backend(name)
        grid = f"{backend.topology.mx}x{backend.topology.my}"
        out.write(f"{name:10s} {backend.n_qubits:>6} {grid:>6} "
                  f"{backend.calibration_seed:>8} "
                  f"{backend.default_engine:>8}  {backend.description}\n")
    out.write("\nregistered execution engines: "
              + ", ".join(registered_engines()) + "\n")
    return 0


def _cmd_engines(out) -> int:
    from repro.backend import get_engine
    from repro.simulator import array_backend_status

    out.write("registered execution engines:\n")
    out.write(f"  {'name':10s} {'family':10s} {'arrays':>6s}  "
              f"{'capacity':34s} description\n")
    for name in registered_engines():
        engine = get_engine(name)
        doc = (type(engine).__doc__ or "").strip()
        first_line = doc.splitlines()[0] if doc else ""
        arrays = "yes" if engine.accepts_array_backend else "-"
        out.write(f"  {name:10s} {engine.family:10s} {arrays:>6s}  "
                  f"{engine.capacity_note():34s} {first_line}\n")
    out.write("\narray backends (statevector contraction; counts are "
              "bit-identical across them):\n")
    for name, status in array_backend_status().items():
        out.write(f"  {name:10s} {status}\n")
    return 0


def _cmd_passes(out) -> int:
    from repro.compiler import (
        make_pass,
        mapper_for,
        registered_passes,
        registered_variants,
    )

    probe = CompilerOptions.r_smt_star()
    out.write("registered passes (canonical pipeline order):\n")
    for name in registered_passes():
        doc = (type(make_pass(name, probe)).__doc__ or "").strip()
        first_line = doc.splitlines()[0] if doc else ""
        out.write(f"  {name:12s} {first_line}\n")
    out.write("\nregistered mapping variants:\n")
    for variant in registered_variants():
        mapper = mapper_for(probe.with_(variant=variant))
        out.write(f"  {variant:10s} -> {type(mapper).__name__}\n")
    return 0


def _cmd_benchmarks(out) -> int:
    out.write(f"{'name':10s} {'qubits':>6} {'gates':>6} {'CNOTs':>6} "
              f"{'answer':>10}\n")
    for name in benchmark_names(include_large_n=True):
        spec = get_benchmark(name)
        circuit = spec.build()
        answer = spec.expected_output
        if len(answer) > 10:
            answer = answer[:7] + "..."
        out.write(f"{name:10s} {circuit.n_qubits:>6} "
                  f"{circuit.gate_count():>6} {circuit.cnot_count():>6} "
                  f"{answer:>10}\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "compile":
            return _cmd_compile(args, out)
        if args.command == "profile":
            return _cmd_profile(args, out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "calibration":
            return _cmd_calibration(args, out)
        if args.command == "experiment":
            return _cmd_experiment(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        if args.command == "mitigate":
            return _cmd_mitigate(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "submit":
            return _cmd_submit(args, out)
        if args.command == "backends":
            return _cmd_backends(out)
        if args.command == "engines":
            return _cmd_engines(out)
        if args.command == "passes":
            return _cmd_passes(out)
        return _cmd_benchmarks(out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
