"""Deterministic fault-injection harness for the sweep runtime.

Robust recovery paths that are never exercised rot silently, so the
supervised pool's failure handling (worker death, poison cells,
watchdog timeouts, journal corruption) is driven by an explicit,
seedable :class:`FaultPlan` threaded through
:func:`~repro.runtime.sweep.run_cell_guarded` and the pool's worker
entry point. The chaos test suite (``tests/test_faults.py``) and the
CI chaos job prove each path against it.

Two safety properties:

* **Env gate** — a plan only fires while the ``REPRO_FAULTS``
  environment variable is set to a truthy value. A plan object leaking
  into a production call site is inert; arming is an explicit,
  process-wide decision (inherited by pool workers).
* **Determinism** — faults are addressed by *grid index* (the cell's
  position in the sweep), and attempt-scoped: a kill or delay fault
  declares how many attempts it affects, so a retried cell observes
  the fault deterministically ("die on the first attempt, succeed on
  the second") instead of probabilistically. :meth:`FaultPlan.random`
  derives a plan from a seed for randomized chaos sweeps that are
  still replayable.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import FaultInjected, ReproError

#: Environment variable arming the harness. Unset/empty/"0" = inert.
FAULTS_ENV = "REPRO_FAULTS"

#: Optional environment fault-plan spec parsed by :meth:`FaultPlan.from_env`.
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

#: Exit status a kill-worker fault dies with (``os._exit``), chosen to
#: be distinguishable from Python's generic failure exit in logs.
KILL_EXIT_CODE = 86


def faults_armed() -> bool:
    """Whether the process-wide fault gate (``REPRO_FAULTS``) is set."""
    return os.environ.get(FAULTS_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected failures, by grid index.

    Attributes:
        raise_in: Cell indexes whose execution raises
            :class:`~repro.exceptions.FaultInjected` (a poison cell the
            per-cell isolation layer must capture, every attempt).
        kill_on: Cell index → number of attempts on which reaching the
            cell kills the whole worker process via ``os._exit``
            (``None`` = every attempt, i.e. a poison cell the
            supervisor must quarantine; ``1`` = a transient crash the
            retry path must absorb).
        delay: Cell index → seconds slept before the cell runs, on the
            first ``delay_times`` attempts — stalls a worker so the
            watchdog's kill-and-resubmit path can be exercised.
        delay_times: Attempts affected by each ``delay`` entry.
        interrupt_in: Cell indexes raising ``KeyboardInterrupt`` —
            simulates Ctrl-C mid-sweep for checkpoint/resume tests.
        corrupt_journal: Cell indexes whose checkpoint-journal entry is
            overwritten with garbage right after being written, so
            resume must degrade to re-execution.
        conn_drop: *Request sequence numbers* (the compile service's
            arrival order of submit requests, 0-based) whose response
            is never sent — the connection is closed instead, so the
            client observes a clean EOF and must resubmit.
        conn_trunc: Request sequence numbers whose response frame is
            cut off mid-message (half the bytes, then close) — the
            client's length-prefixed reader must reject the torn frame
            as a transport failure, never parse a partial payload.
        conn_delay: Request sequence number → seconds slept before the
            response is sent — stalls a response so client-side
            deadlines and timeouts can be exercised.
        kill_server_on: Request sequence numbers after whose result is
            journaled the whole server process dies via ``os._exit`` —
            the dirty-shutdown drill: a restarted server must resume
            from the journal and resubmitting clients must converge.
    """

    raise_in: Tuple[int, ...] = ()
    kill_on: Mapping[int, Optional[int]] = field(default_factory=dict)
    delay: Mapping[int, float] = field(default_factory=dict)
    delay_times: int = 1
    interrupt_in: Tuple[int, ...] = ()
    corrupt_journal: Tuple[int, ...] = ()
    conn_drop: Tuple[int, ...] = ()
    conn_trunc: Tuple[int, ...] = ()
    conn_delay: Mapping[int, float] = field(default_factory=dict)
    kill_server_on: Tuple[int, ...] = ()

    @property
    def armed(self) -> bool:
        """Whether this plan fires (the process-wide env gate)."""
        return faults_armed()

    def before_cell(self, index: int, attempts: int = 0,
                    in_worker: bool = False) -> None:
        """Fire any fault scheduled for *index* about to run.

        Args:
            index: The cell's grid index.
            attempts: Prior worker-death attempts charged to the cell —
                attempt-scoped faults (kill, delay) compare against it.
            in_worker: True inside a pool worker process. Kill faults
                outside one would take down the caller's interpreter,
                so the serial path turns them into a loud
                :class:`~repro.exceptions.FaultInjected` instead.
        """
        if not self.armed:
            return
        seconds = self.delay.get(index)
        if seconds is not None and attempts < self.delay_times:
            time.sleep(seconds)
        if index in self.kill_on:
            times = self.kill_on[index]
            if times is None or attempts < times:
                if in_worker:
                    os._exit(KILL_EXIT_CODE)
                raise FaultInjected(
                    f"kill-worker fault on cell {index} reached in-process"
                    " (serial path); kill faults need workers >= 2")
        if index in self.interrupt_in:
            raise KeyboardInterrupt(f"injected interrupt on cell {index}")
        if index in self.raise_in:
            raise FaultInjected(f"injected failure on cell {index} "
                                f"(attempt {attempts + 1})")

    def after_journal(self, index: int, journal, fingerprint: str) -> None:
        """Corrupt the journal entry just written for *index*, if
        scheduled — the resume path must treat it as a miss."""
        if not self.armed or index not in self.corrupt_journal:
            return
        path = journal.entry_path(fingerprint)
        try:
            path.write_bytes(b"deadbeef\ncorrupted-by-fault-plan\n")
        except OSError:
            pass  # store already degraded; nothing left to corrupt

    def on_response(self, seq: int) -> Optional[str]:
        """The connection fault scheduled for submit request *seq*
        about to be answered, or ``None``.

        Applies any ``conn_delay`` in place (sleeps), then returns
        ``"drop"`` (close without responding) or ``"trunc"`` (send a
        torn frame) for the server's response path to enact. Sequence
        numbers are the service's global submit-arrival order, so a
        single-client drill observes its faults deterministically.
        """
        if not self.armed:
            return None
        seconds = self.conn_delay.get(seq)
        if seconds is not None:
            time.sleep(seconds)
        if seq in self.conn_drop:
            return "drop"
        if seq in self.conn_trunc:
            return "trunc"
        return None

    def maybe_kill_server(self, seq: int) -> None:
        """Die (``os._exit``) if a kill-server fault is scheduled for
        submit request *seq* — fired by the server *after* the result
        is journaled, so a restart can serve it from the checkpoint."""
        if self.armed and seq in self.kill_server_on:
            os._exit(KILL_EXIT_CODE)

    @classmethod
    def random(cls, seed: int, n_cells: int, raise_rate: float = 0.0,
               kill_rate: float = 0.0, delay_rate: float = 0.0,
               delay_seconds: float = 0.1,
               transient: bool = True) -> "FaultPlan":
        """A seed-derived plan: same seed, same faults, replayable.

        Each cell independently draws whether it raises, kills its
        worker (transiently — first attempt only — unless *transient*
        is False, which makes kills poison), or stalls.
        """
        rng = random.Random(seed)
        raise_in = []
        kill_on: Dict[int, Optional[int]] = {}
        delay: Dict[int, float] = {}
        for index in range(n_cells):
            if rng.random() < raise_rate:
                raise_in.append(index)
            elif rng.random() < kill_rate:
                kill_on[index] = 1 if transient else None
            elif rng.random() < delay_rate:
                delay[index] = delay_seconds
        return cls(raise_in=tuple(raise_in), kill_on=kill_on, delay=delay)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan described by ``REPRO_FAULT_SPEC``, or ``None``.

        Spec grammar (comma-separated tokens; cell faults address grid
        positions, connection faults address submit-request sequence
        numbers): ``raise:IDX``, ``kill:IDX`` (first attempt),
        ``kill:IDXx3`` (three attempts), ``kill:IDXx*`` (poison),
        ``delay:IDX=SECONDS``, ``interrupt:IDX``, ``corrupt:IDX``,
        ``conn-drop:SEQ``, ``conn-trunc:SEQ``,
        ``conn-delay:SEQ=SECONDS``, ``kill-server:SEQ``.
        Returns ``None`` when the gate is closed or no spec is set —
        the CLI calls this unconditionally.
        """
        spec = os.environ.get(FAULT_SPEC_ENV, "").strip()
        if not spec or not faults_armed():
            return None
        raise_in, interrupt_in, corrupt = [], [], []
        conn_drop, conn_trunc, kill_server = [], [], []
        kill_on: Dict[int, Optional[int]] = {}
        delay: Dict[int, float] = {}
        conn_delay: Dict[int, float] = {}
        for token in spec.split(","):
            kind, _, arg = token.strip().partition(":")
            try:
                if kind == "raise":
                    raise_in.append(int(arg))
                elif kind == "interrupt":
                    interrupt_in.append(int(arg))
                elif kind == "corrupt":
                    corrupt.append(int(arg))
                elif kind == "conn-drop":
                    conn_drop.append(int(arg))
                elif kind == "conn-trunc":
                    conn_trunc.append(int(arg))
                elif kind == "kill-server":
                    kill_server.append(int(arg))
                elif kind == "delay":
                    index, _, seconds = arg.partition("=")
                    delay[int(index)] = float(seconds)
                elif kind == "conn-delay":
                    index, _, seconds = arg.partition("=")
                    conn_delay[int(index)] = float(seconds)
                elif kind == "kill":
                    index, _, times = arg.partition("x")
                    kill_on[int(index)] = (None if times == "*"
                                           else int(times) if times else 1)
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except ValueError as exc:
                raise ReproError(
                    f"bad {FAULT_SPEC_ENV} token {token!r}: {exc}") from exc
        return cls(raise_in=tuple(raise_in), kill_on=kill_on, delay=delay,
                   interrupt_in=tuple(interrupt_in),
                   corrupt_journal=tuple(corrupt),
                   conn_drop=tuple(conn_drop),
                   conn_trunc=tuple(conn_trunc), conn_delay=conn_delay,
                   kill_server_on=tuple(kill_server))
