"""Scenario-sweep runtime: declarative grids, process-pool execution,
and content-addressed compile/trace caching.

The experiment harnesses (``repro.experiments``) and the ``repro
sweep`` CLI subcommand express their (benchmark x variant x calibration
x seed) grids as :class:`SweepCell` lists and execute them through
:func:`run_sweep`; see :mod:`repro.runtime.sweep` for the determinism
and caching contract.
"""

from repro.runtime.cache import (
    CacheStats,
    CompileCache,
    CompileKey,
    PrefixKey,
    StageCache,
    TraceCache,
    compile_key,
    machine_id,
    mapping_prefix_key,
)
from repro.runtime.diskcache import (
    DiskStore,
    PersistentCompileCache,
    PersistentStageCache,
    ResultJournal,
    StoreStats,
    make_compile_cache,
)
from repro.runtime.faults import FaultPlan, faults_armed
from repro.runtime.sweep import (
    DEFAULT_TRIALS,
    CellFailure,
    CellResult,
    SweepCell,
    SweepResult,
    cell_fingerprint,
    run_cell,
    run_cell_guarded,
    run_sweep,
)

__all__ = [
    "CacheStats",
    "CellFailure",
    "CellResult",
    "CompileCache",
    "CompileKey",
    "DEFAULT_TRIALS",
    "DiskStore",
    "FaultPlan",
    "PersistentCompileCache",
    "PersistentStageCache",
    "PrefixKey",
    "ResultJournal",
    "StageCache",
    "StoreStats",
    "SweepCell",
    "SweepResult",
    "TraceCache",
    "cell_fingerprint",
    "compile_key",
    "faults_armed",
    "machine_id",
    "make_compile_cache",
    "mapping_prefix_key",
    "run_cell",
    "run_cell_guarded",
    "run_sweep",
]
