"""Persistent on-disk compile/stage cache.

The in-process caches of :mod:`repro.runtime.cache` die with the
process, so every CLI invocation used to recompile from scratch. This
module layers a small **content-addressed directory store** underneath
them: compiled programs and pipeline stage artifacts are pickled into
``<cache-dir>/compile/`` and ``<cache-dir>/stage/`` under the sha256 of
their content key, so a repeated ``repro run``/``repro sweep``/``repro
mitigate`` (or a mitigation sweep's folded pipeline variants) reuses
compilations across processes.

Design points:

* **Content addressing** — the filename *is* the hashed content key
  (circuit fingerprint x calibration id x options fingerprint for
  whole programs; the pipeline's stage-prefix chain key for stage
  artifacts), so a different *input* is always a different file. Keys
  cover inputs, not compiler code, so the store layout is additionally
  namespaced by a digest of the installed package's source: entries
  written by one version of the code are invisible to an edited one,
  rather than served stale after a pass's behavior changes.
* **Eviction-free with an integrity check on load** — the store never
  deletes; every entry embeds the sha256 of its pickled payload plus
  the full (unhashed) content key, and a load that fails either check
  (torn write, bit rot, hash collision) is treated as a miss and
  recompiled, never trusted.
* **Concurrency-safe writes** — entries are written to a temp file and
  published with an atomic :func:`os.replace`, so parallel sweep
  workers sharing one directory race benignly (last writer wins with
  an identical artifact).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional

import repro
from repro.runtime.cache import (CompileCache, CompileKey, StageCache,
                                 TraceCache)

#: Consecutive failed writes after which a store flips to memory-only.
DEGRADE_AFTER = 3


@dataclass
class StoreStats:
    """Per-tier counters of one persistent store kind.

    Counts only the *disk* tier's traffic: a ``load`` is attempted
    only after the in-memory tier missed, so ``hits`` here are
    compilations served across process boundaries (and ``misses``
    are first-ever computations or integrity-check rejections).
    ``write_errors`` counts failed publishes (full/read-only disk);
    ``degraded`` reports the owning store having given up on the
    filesystem entirely (see :attr:`DiskStore.degraded`), and
    ``redeemed`` how many times it *recovered* — a successful
    :meth:`DiskStore.redeem` probe flipped it back to persistent mode
    after a transient outage (long-lived servers retry periodically).
    """

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    write_errors: int = 0
    degraded: bool = False
    redeemed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def merge(self, other: "StoreStats") -> None:
        """Fold another counter (e.g. a pool worker's) into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.write_errors += other.write_errors
        self.degraded = self.degraded or other.degraded
        # Like ``degraded``, redemption is store *state* stamped onto
        # every tier's snapshot, not per-tier traffic: merging views of
        # the same store must not multiply-count it.
        self.redeemed = max(self.redeemed, other.redeemed)

    def minus(self, baseline: "StoreStats") -> "StoreStats":
        """The traffic since *baseline* (an earlier snapshot of the
        same counter) — how a sweep isolates its own share of a reused
        cache's cumulative totals. ``degraded`` and ``redeemed`` are
        current state, not traffic, and carry through undiffed."""
        return StoreStats(hits=self.hits - baseline.hits,
                          misses=self.misses - baseline.misses,
                          bytes_read=self.bytes_read - baseline.bytes_read,
                          bytes_written=self.bytes_written
                          - baseline.bytes_written,
                          write_errors=self.write_errors
                          - baseline.write_errors,
                          degraded=self.degraded, redeemed=self.redeemed)

    def describe(self) -> str:
        """Compact ``hits/lookups hit, read/written`` rendering."""
        text = (f"{self.hits}/{self.lookups} hit, "
                f"{_format_bytes(self.bytes_read)} read, "
                f"{_format_bytes(self.bytes_written)} written")
        if self.write_errors:
            text += f", {self.write_errors} write errors"
        if self.degraded:
            text += ", DEGRADED (memory-only)"
        if self.redeemed:
            text += f", redeemed x{self.redeemed}"
        return text


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}B" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{n}B"  # pragma: no cover — unreachable

#: Entry-format tag; bump on layout changes.
_FORMAT = "v1"

_layout_cache: Optional[str] = None


def _layout() -> str:
    """Store namespace, part of every entry path.

    Content keys hash a compilation's *inputs*, not the compiler's
    code, so the namespace carries a digest of the installed package's
    source: editing any ``repro`` module moves the whole store to a
    fresh directory rather than serving artifacts computed by old
    code. Deliberately conservative — a docstring edit also
    invalidates — because a stale compiled program is silent and a
    recompile is cheap. Computed once per process.
    """
    global _layout_cache
    if _layout_cache is None:
        hasher = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            hasher.update(str(path.relative_to(package_root)).encode())
            hasher.update(path.read_bytes())
        _layout_cache = f"{_FORMAT}-{hasher.hexdigest()[:16]}"
    return _layout_cache


class DiskStore:
    """Content-addressed pickle store under one root directory.

    Args:
        root: Cache directory (created on first write).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        #: Per-kind (``"compile"``/``"stage"``/``"cell"``) counters.
        self.stats: Dict[str, StoreStats] = {}
        #: True once repeated write failures flipped the store to
        #: memory-only mode (reads still work; writes are skipped).
        self.degraded = False
        #: Times :meth:`redeem` successfully lifted a degradation.
        self.redemptions = 0
        self._consecutive_write_failures = 0

    def stats_for(self, kind: str) -> StoreStats:
        stats = self.stats.get(kind)
        if stats is None:
            stats = self.stats[kind] = StoreStats()
        return stats

    def _path(self, kind: str, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()
        return self.root / _layout() / kind / digest[:2] / digest

    def entry_path(self, kind: str, key: str) -> Path:
        """Where *key*'s entry lives on disk (it may not exist yet).

        Exposed for the fault-injection harness, which corrupts
        entries in place to prove loads degrade to recomputation.
        """
        return self._path(kind, key)

    def _note_write_failure(self, kind: str) -> None:
        """Account a failed publish; repeatedly failing writes flip
        the store to memory-only instead of hammering a dead disk on
        every artifact for the rest of the sweep."""
        self.stats_for(kind).write_errors += 1
        self._consecutive_write_failures += 1
        if (self._consecutive_write_failures >= DEGRADE_AFTER
                and not self.degraded):
            self.degraded = True
            warnings.warn(
                f"disk store {self.root} degraded to memory-only after "
                f"{self._consecutive_write_failures} consecutive write "
                f"failures (disk full or read-only?); compilations stay "
                f"cached in-process but will not persist",
                RuntimeWarning, stacklevel=4)

    def redeem(self) -> bool:
        """Attempt to lift a memory-only degradation.

        A degraded store never retries the filesystem on the hot path
        (every artifact write probing a dead disk is exactly what
        degradation exists to stop), but a *transient* outage — disk
        briefly full, NFS blip — would otherwise pin a long-lived
        server in memory-only mode forever. ``redeem`` is the explicit,
        cheap recovery probe: one small atomic write. On success the
        store returns to persistent mode with a fresh failure streak
        (and the recovery is surfaced as ``redeemed`` in every tier's
        :class:`StoreStats` snapshot); on failure the store stays
        degraded, silently — callers poll this at their own cadence
        (the compile service probes between batches).

        Returns True when the store is persistent again (including
        when it never degraded).
        """
        if not self.degraded:
            return True
        probe = self.root / _layout() / "redeem.probe"
        try:
            probe.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=probe.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(b"redeem-probe")
                os.replace(tmp, probe)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.degraded = False
        self._consecutive_write_failures = 0
        self.redemptions += 1
        return True

    def load_blob(self, kind: str, key: str) -> Optional[bytes]:
        """The stored raw payload for *key*, or ``None``.

        Missing entries, payloads whose embedded digest no longer
        matches, and entries recorded under a different full key
        (digest collision) all return ``None`` — the caller recomputes;
        nothing is ever served unverified. A returned payload counts as
        a hit even if the caller's decode subsequently rejects it.
        """
        stats = self.stats_for(kind)
        try:
            blob = self._path(kind, key).read_bytes()
        except OSError:
            stats.misses += 1
            return None
        stats.bytes_read += len(blob)
        digest, _, rest = blob.partition(b"\n")
        stored_key, _, payload = rest.partition(b"\n")
        if stored_key.decode("utf-8", errors="replace") != key:
            stats.misses += 1
            return None
        if hashlib.sha256(payload).hexdigest() != digest.decode(
                "ascii", errors="replace"):
            stats.misses += 1
            return None
        stats.hits += 1
        return payload

    def load(self, kind: str, key: str) -> Optional[object]:
        """The stored (pickled) object for *key*, or ``None``.

        On top of :meth:`load_blob`'s integrity checks, an unpicklable
        payload also loads as ``None`` (counted back as a miss)."""
        stats = self.stats_for(kind)
        payload = self.load_blob(kind, key)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            stats.hits -= 1
            stats.misses += 1
            return None

    def store_blob(self, kind: str, key: str, payload: bytes) -> None:
        """Persist raw *payload* under *key* (atomic publish; errors
        ignored).

        A full disk degrades to in-memory caching rather than failing
        the sweep; after :data:`DEGRADE_AFTER` consecutive ``OSError``
        publishes the whole store flips to memory-only mode (warn-once
        ``RuntimeWarning``, surfaced in :class:`StoreStats`) instead of
        retrying the filesystem on every artifact.
        """
        if self.degraded:
            return
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            digest = hashlib.sha256(payload).hexdigest()
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(digest.encode("ascii"))
                    handle.write(b"\n")
                    handle.write(key.encode("utf-8"))
                    handle.write(b"\n")
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self._note_write_failure(kind)
            return
        self._consecutive_write_failures = 0
        self.stats_for(kind).bytes_written += \
            len(payload) + len(digest) + len(key) + 2

    def store(self, kind: str, key: str, obj: object) -> None:
        """Pickle and persist *obj* under *key* (see :meth:`store_blob`;
        an unpicklable artifact is silently kept memory-only)."""
        try:
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        self.store_blob(kind, key, payload)


def _compile_key_string(key: CompileKey) -> str:
    return "|".join(key)


class ResultJournal:
    """Checkpoint journal of completed sweep-cell results.

    A thin view over a :class:`DiskStore`'s ``"cell"`` kind: completed
    :class:`~repro.runtime.sweep.CellResult` objects are recorded
    content-addressed by their cell's fingerprint
    (:func:`~repro.runtime.sweep.cell_fingerprint`), so
    ``run_sweep(resume=True)`` can skip already-completed cells after a
    crash, a worker loss, or Ctrl-C. The store's integrity check makes
    corrupt entries load as ``None`` — resume then degrades to
    re-executing the cell, never to trusting a torn write. Failed
    cells are deliberately not journaled: a resumed sweep re-attempts
    them.
    """

    KIND = "cell"

    def __init__(self, store: DiskStore) -> None:
        self._store = store

    @property
    def stats(self) -> StoreStats:
        """The journal's disk-tier counters (hits = resumed cells)."""
        return self._store.stats_for(self.KIND)

    def load(self, fingerprint: str):
        """The journaled result for a cell fingerprint, or ``None``."""
        return self._store.load(self.KIND, fingerprint)

    def record(self, fingerprint: str, result) -> None:
        """Journal one completed cell (atomic, idempotent)."""
        self._store.store(self.KIND, fingerprint, result)

    def entry_path(self, fingerprint: str) -> Path:
        """The entry's on-disk path (fault-injection corruption hook)."""
        return self._store.entry_path(self.KIND, fingerprint)


def make_compile_cache(cache_dir=None) -> CompileCache:
    """The one rule for building a compile cache from a ``cache_dir``.

    Used by the serial sweep path, every pool worker, and the CLI, so
    the three can't drift: ``None`` means a fresh in-memory cache, a
    path means the persistent store.
    """
    if cache_dir is None:
        return CompileCache()
    return PersistentCompileCache(cache_dir)


class PersistentStageCache(StageCache):
    """A :class:`StageCache` backed by a :class:`DiskStore`.

    Disk-served artifacts count as hits (the expensive pass run was
    avoided) and are promoted into the in-memory tier for the rest of
    the process.
    """

    def __init__(self, store: DiskStore) -> None:
        super().__init__()
        self._store = store

    def _lookup(self, key: str):
        artifact = self._artifacts.get(key)
        if artifact is None:
            artifact = self._store.load("stage", key)
            if artifact is not None:
                self._artifacts[key] = artifact
        return artifact

    def put(self, key: str, artifact: object) -> None:
        super().put(key, artifact)
        self._store.store("stage", key, artifact)


class PersistentTraceCache(TraceCache):
    """A :class:`TraceCache` with an npz disk tier for lowered traces.

    Lowering a :class:`~repro.simulator.trace.ProgramTrace` includes a
    dense statevector simulation of the whole program (the ideal
    distribution), so for the repeated-trials sweeps it is the dominant
    per-cell cost after compilation. This tier serializes traces to
    compressed ``.npz`` (flat arrays only — see
    ``ProgramTrace.to_arrays``; no pickle on the load path) keyed by
    the same content key the in-memory tier uses, so repeated
    invocations with ``--cache-dir`` skip straight to sampling.

    Only exact ``ProgramTrace`` instances go to disk: the stabilizer
    engine parks its own lowered objects in the same cache under the
    same key contract, and those (or any trace subclass) stay
    memory-only rather than risking a lossy round-trip.
    """

    KIND = "trace"

    def __init__(self, store: DiskStore) -> None:
        super().__init__()
        self._store = store

    def get(self, compiled, noise, calibration, scope=None):
        trace = super().get(compiled, noise, calibration, scope)
        if trace is not None:
            return trace
        key = self._key(compiled, noise, calibration, scope)
        if key is None:
            return None
        blob = self._store.load_blob(self.KIND, repr(key))
        if blob is None:
            return None
        import io

        import numpy as np

        from repro.simulator.trace import ProgramTrace

        try:
            with np.load(io.BytesIO(blob), allow_pickle=False) as data:
                trace = ProgramTrace.from_arrays(dict(data))
        except Exception:
            return None  # malformed entry: treated as a miss, re-lowered
        self._traces[key] = trace
        return trace

    def put(self, compiled, noise, calibration, trace,
            scope=None) -> None:
        super().put(compiled, noise, calibration, trace, scope)
        from repro.simulator.trace import ProgramTrace

        if type(trace) is not ProgramTrace:
            return
        key = self._key(compiled, noise, calibration, scope)
        if key is None:
            return
        import io

        import numpy as np

        buf = io.BytesIO()
        try:
            np.savez_compressed(buf, **trace.to_arrays())
        except Exception:
            return
        self._store.store_blob(self.KIND, repr(key), buf.getvalue())


def make_trace_cache(cache_dir=None, store: Optional[DiskStore] = None
                     ) -> TraceCache:
    """The one rule for building a trace cache from a ``cache_dir``.

    Mirrors :func:`make_compile_cache`: ``None`` means in-memory only,
    a path means the npz-backed persistent tier. Pass ``store`` to
    share an existing :class:`DiskStore` (and its degradation state /
    stats) instead of opening a second one on the same directory.
    """
    if store is not None:
        return PersistentTraceCache(store)
    if cache_dir is None:
        return TraceCache()
    return PersistentTraceCache(DiskStore(cache_dir))


class PersistentCompileCache(CompileCache):
    """A :class:`CompileCache` whose programs and stages persist on disk.

    Drop-in replacement accepted everywhere a ``CompileCache`` is
    (``run_sweep(compile_cache=...)``, ``compile_and_run``); the CLI
    builds one from ``--cache-dir``.

    Args:
        root: Cache directory, shared freely between processes.
    """

    def __init__(self, root) -> None:
        super().__init__()
        self._store = DiskStore(root)
        self.stages = PersistentStageCache(self._store)
        self.journal = ResultJournal(self._store)

    def redeem(self) -> bool:
        """Probe the shared store out of memory-only degradation
        (see :meth:`DiskStore.redeem`)."""
        return self._store.redeem()

    def disk_stats(self) -> Dict[str, StoreStats]:
        """Per-kind disk-tier counters of the shared store.

        Returned as a snapshot (copied counters, current ``degraded``
        state stamped on) of the cache's cumulative totals; callers
        reporting a bounded span (e.g.
        :func:`~repro.runtime.sweep.run_sweep`, whose result describes
        one sweep) take a snapshot before and after and diff with
        :meth:`StoreStats.minus`.
        """
        return {kind: replace(stats, degraded=self._store.degraded,
                              redeemed=self._store.redemptions)
                for kind, stats in self._store.stats.items()}

    def _lookup(self, key: CompileKey):
        program = super()._lookup(key)
        if program is None:
            program = self._store.load("compile", _compile_key_string(key))
            if program is not None:
                self._programs[key] = program
        return program

    def _insert(self, key: CompileKey, program) -> None:
        super()._insert(key, program)
        self._store.store("compile", _compile_key_string(key), program)
