"""Supervised process-pool execution of sweep-cell batches.

The sweep runtime partitions a grid into batches of (index, cell)
pairs — one batch per worker, with all cells sharing a mapping-prefix
key placed in the same batch — and this module fans the batches out
over supervised ``multiprocessing`` processes. Each worker builds its
own :class:`~repro.runtime.cache.CompileCache`/
:class:`~repro.runtime.cache.TraceCache` pair, streams back one
message per completed cell plus a final cache-counter message, and the
parent merges everything.

Unlike the bare ``pool.map`` this replaced, the dispatch loop treats
worker failure as the common case:

* **Worker death** (``os._exit``, segfault, OOM kill) loses only the
  dead worker's *unfinished* cells — completed cells were already
  streamed back (and journaled, when a persistent store is open). The
  unfinished remainder is resubmitted to a fresh worker.
* **Poison cells** are bisected by construction: cells run in batch
  order, so the first unfinished cell is the prime suspect. Each death
  charges an attempt to that cell; past ``max_retries`` it is
  quarantined as a :class:`~repro.runtime.sweep.CellFailure` (stage
  ``"worker"``/``"timeout"``) and the rest of the batch is resubmitted
  without it — one bad cell can no longer pin down its whole batch,
  let alone the sweep.
* **Stuck workers** are killed by a watchdog after ``batch_timeout``
  seconds without progress and handled exactly like a death.

Recovery cannot perturb results: every cell seeds its own RNG, so a
resubmitted cell is bit-identical wherever and whenever it runs. Cache
*counters* under faults may differ from a fault-free run (a dead
worker's counters die with it; a fresh worker recompiles), but in the
fault-free case the dispatch is behaviorally identical to the old
``pool.map`` — same batches, same per-worker caches, same merged
stats.

The ``fork`` start method is preferred (workers inherit the already
imported interpreter state, so startup is milliseconds); platforms
without it fall back to the default context, which works because the
worker entry point is a top-level function and every object crossing
the pipe (cells in, results out) is picklable.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing.connection import wait as _wait_connections
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.cache import CacheStats, TraceCache

#: One unit of pool work: the cell plus its position in the grid.
IndexedCell = Tuple[int, "SweepCell"]  # noqa: F821 — see runtime.sweep

#: Supervisor poll granularity (seconds) — the latency of noticing a
#: silent worker death; message arrival wakes the loop immediately.
_POLL_SECONDS = 0.1


def _worker_main(conn, batch: Sequence[IndexedCell],
                 attempts: Dict[int, int], cache_dir, faults) -> None:
    """Worker entry point: run one batch, streaming results back.

    Sends ``("cell", index, CellResult)`` after each cell and a final
    ``("stats", compile, trace, stage, disk)`` message — the parent
    treats the stats message as the clean-completion marker. With
    *cache_dir*, the worker's compile/stage cache is additionally
    backed by the shared on-disk store (writes are atomic, so workers
    race benignly) and every completed cell is checkpoint-journaled;
    lowered traces stay worker-local either way.
    """
    from repro.runtime.diskcache import make_compile_cache, make_trace_cache
    from repro.runtime.sweep import run_cell_guarded

    try:
        compile_cache = make_compile_cache(cache_dir)
        # Persistent runs share the compile cache's disk store (and its
        # degradation state) for the npz trace tier; otherwise traces
        # stay worker-local in memory.
        trace_cache = make_trace_cache(
            store=getattr(compile_cache, "_store", None))
        for index, cell in batch:
            result = run_cell_guarded(
                index, cell, compile_cache, trace_cache, faults=faults,
                attempts=attempts.get(index, 0),
                journal=compile_cache.journal, in_worker=True)
            conn.send(("cell", index, result))
        conn.send(("stats", compile_cache.stats, trace_cache.stats,
                   compile_cache.stages.stats, compile_cache.disk_stats()))
    except KeyboardInterrupt:
        pass  # the parent is unwinding and will reap us
    finally:
        conn.close()


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used for sweep pools."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context()


class _Supervised:
    """Parent-side bookkeeping for one in-flight worker."""

    __slots__ = ("process", "conn", "batch", "received", "last_progress",
                 "completed_ok", "timed_out", "eof")

    def __init__(self, process, conn, batch: List[IndexedCell]) -> None:
        self.process = process
        self.conn = conn
        self.batch = batch
        self.received = 0          # cells whose results arrived
        self.last_progress = time.monotonic()
        self.completed_ok = False  # final stats message arrived
        self.timed_out = False     # killed by the watchdog
        self.eof = False           # pipe closed by the worker


def run_batches(batches: Sequence[Sequence[IndexedCell]], workers: int,
                cache_dir=None, faults=None, max_retries: int = 2,
                batch_timeout: Optional[float] = None
                ) -> Tuple[list, CacheStats, CacheStats, CacheStats, dict]:
    """Run cell batches across *workers* supervised processes.

    Args:
        batches: Pre-partitioned (index, cell) groups; cells sharing a
            mapping-prefix key (hence also cells sharing a compile key)
            must sit in the same batch for the caches to behave
            deterministically.
        workers: Pool size; capped at the number of batches.
        cache_dir: Optional persistent compile/stage cache directory
            each worker opens (see :mod:`repro.runtime.diskcache`);
            also enables per-cell checkpoint journaling.
        faults: Optional :class:`~repro.runtime.faults.FaultPlan`
            shipped to every worker (inert unless ``REPRO_FAULTS`` is
            set).
        max_retries: Worker-death retries charged to the first
            unfinished cell of a lost batch before that cell is
            quarantined as failed.
        batch_timeout: Seconds without progress before the watchdog
            kills a worker and resubmits its unfinished cells
            (``None`` disables). Must comfortably exceed the slowest
            single cell, or healthy slow cells will be quarantined.

    Returns:
        (flat list of (index, result) pairs, merged compile-cache
        stats, merged trace-cache stats, merged stage-cache stats,
        merged per-tier disk-store stats — empty without *cache_dir*).

    Raises:
        KeyboardInterrupt: re-raised after promptly terminating every
            live worker (no zombie children); cells completed before
            the interrupt were already journaled by their workers, so
            ``resume=True`` picks up from here.
    """
    # Imported lazily (like the worker's imports): sweep.py imports
    # this module back inside run_sweep.
    from repro.runtime.sweep import CellFailure, CellResult

    ctx = pool_context()
    pending = deque(list(batch) for batch in batches)
    workers = max(1, min(workers, len(pending)))
    attempts: Dict[int, int] = {}
    completed: Dict[int, "CellResult"] = {}
    compile_stats = CacheStats()
    trace_stats = CacheStats()
    stage_stats = CacheStats()
    disk_stats: dict = {}
    active: List[_Supervised] = []

    def launch_available() -> None:
        while pending and len(active) < workers:
            batch = pending.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, batch,
                      {index: attempts[index] for index, _ in batch
                       if index in attempts},
                      cache_dir, faults),
                daemon=True)
            process.start()
            child_conn.close()
            active.append(_Supervised(process, parent_conn, batch))

    def drain(sup: _Supervised) -> None:
        while not sup.eof:
            try:
                if not sup.conn.poll():
                    return
                message = sup.conn.recv()
            except (EOFError, OSError):
                sup.eof = True
                return
            sup.last_progress = time.monotonic()
            if message[0] == "cell":
                _, index, result = message
                completed[index] = result
                sup.received += 1
            else:  # ("stats", ...) — the clean-completion marker
                _, cstats, tstats, sstats, dstats = message
                compile_stats.merge(cstats)
                trace_stats.merge(tstats)
                stage_stats.merge(sstats)
                for kind, stats in dstats.items():
                    if kind in disk_stats:
                        disk_stats[kind].merge(stats)
                    else:
                        disk_stats[kind] = stats
                sup.completed_ok = True

    def reap(sup: _Supervised) -> None:
        """Handle a worker that exited: resubmit / quarantine losses."""
        drain(sup)  # messages can still sit in the pipe after death
        sup.process.join()
        sup.conn.close()
        if sup.completed_ok:
            return
        remaining = sup.batch[sup.received:]
        if not remaining:
            # Died between the last cell and the stats message: every
            # result arrived; only this worker's counters are lost.
            return
        # Cells run in batch order, so the first unfinished cell is
        # the prime suspect — charge the death to it.
        head_index, head_cell = remaining[0]
        attempts[head_index] = attempts.get(head_index, 0) + 1
        if attempts[head_index] > max_retries:
            stage = "timeout" if sup.timed_out else "worker"
            reason = ("worker exceeded the batch timeout "
                      f"({batch_timeout}s without progress)"
                      if sup.timed_out else
                      "worker process died "
                      f"(exit code {sup.process.exitcode})")
            completed[head_index] = CellResult(
                key=head_cell.key,
                failure=CellFailure(
                    key=head_cell.key, index=head_index,
                    error_type="WorkerTimeout" if sup.timed_out
                    else "WorkerDied",
                    message=f"{reason}; quarantined after "
                            f"{attempts[head_index]} attempts",
                    attempts=attempts[head_index], stage=stage,
                    program=str(getattr(
                        getattr(head_cell, "circuit", None), "name", "")
                        or ""),
                    mapper=str(getattr(
                        getattr(head_cell, "options", None), "variant", "")
                        or "")))
            remaining = remaining[1:]
        if remaining:
            pending.appendleft(remaining)

    try:
        launch_available()
        while active:
            waitables = [sup.conn for sup in active if not sup.eof]
            waitables += [sup.process.sentinel for sup in active]
            if waitables:
                _wait_connections(waitables, timeout=_POLL_SECONDS)
            now = time.monotonic()
            still_active: List[_Supervised] = []
            for sup in active:
                drain(sup)
                if (batch_timeout is not None and not sup.completed_ok
                        and sup.process.is_alive()
                        and now - sup.last_progress > batch_timeout):
                    sup.timed_out = True
                    sup.process.kill()
                if sup.process.exitcode is not None:
                    reap(sup)
                else:
                    still_active.append(sup)
            active = still_active
            launch_available()
    except BaseException:
        # Prompt teardown (Ctrl-C and fatal errors alike): no zombie
        # children holding the fork context. Already-returned cells
        # were journaled by their workers as they completed, so a
        # resume picks up from the interrupt.
        for sup in active:
            if sup.process.is_alive():
                sup.process.terminate()
        deadline = time.monotonic() + 2.0
        for sup in active:
            sup.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if sup.process.is_alive():  # pragma: no cover — stubborn child
                sup.process.kill()
                sup.process.join()
            sup.conn.close()
        raise

    return (sorted(completed.items()), compile_stats, trace_stats,
            stage_stats, disk_stats)
