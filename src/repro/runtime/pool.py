"""Process-pool execution of sweep-cell batches.

The sweep runtime partitions a grid into batches of (index, cell)
pairs — one batch per worker, with all cells sharing a mapping-prefix
key placed in the same batch — and this module fans the batches out over a
``multiprocessing`` pool. Each worker builds its own
:class:`~repro.runtime.cache.CompileCache`/:class:`~repro.runtime.cache.TraceCache`
pair, runs its batch, and ships back the per-cell results plus its
cache counters, which the parent merges.

The ``fork`` start method is preferred (workers inherit the already
imported interpreter state, so startup is milliseconds); platforms
without it fall back to the default context, which works because the
batch runner is a top-level function and every object crossing the
pipe (cells in, results out) is picklable.
"""

from __future__ import annotations

import functools
import multiprocessing
from typing import List, Sequence, Tuple

from repro.runtime.cache import CacheStats, CompileCache, TraceCache

#: One unit of pool work: the cell plus its position in the grid.
IndexedCell = Tuple[int, "SweepCell"]  # noqa: F821 — see runtime.sweep


def _run_batch(batch: Sequence[IndexedCell], cache_dir=None):
    """Worker entry point: run one batch with worker-local caches.

    With *cache_dir*, the worker's compile/stage cache is additionally
    backed by the shared on-disk store (writes are atomic, so workers
    race benignly); lowered traces stay worker-local either way.
    """
    from repro.runtime.diskcache import make_compile_cache
    from repro.runtime.sweep import run_cell

    compile_cache = make_compile_cache(cache_dir)
    trace_cache = TraceCache()
    results = [(index, run_cell(cell, compile_cache, trace_cache))
               for index, cell in batch]
    return (results, compile_cache.stats, trace_cache.stats,
            compile_cache.stages.stats, compile_cache.disk_stats())


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used for sweep pools."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context()


def run_batches(batches: Sequence[Sequence[IndexedCell]], workers: int,
                cache_dir=None
                ) -> Tuple[list, CacheStats, CacheStats, CacheStats, dict]:
    """Run cell batches across *workers* processes.

    Args:
        batches: Pre-partitioned (index, cell) groups; cells sharing a
            mapping-prefix key (hence also cells sharing a compile key)
            must sit in the same batch for the caches to behave
            deterministically.
        workers: Pool size; capped at the number of batches.
        cache_dir: Optional persistent compile/stage cache directory
            each worker opens (see :mod:`repro.runtime.diskcache`).

    Returns:
        (flat list of (index, result) pairs, merged compile-cache
        stats, merged trace-cache stats, merged stage-cache stats,
        merged per-tier disk-store stats — empty without *cache_dir*).
    """
    workers = min(workers, len(batches))
    compile_stats = CacheStats()
    trace_stats = CacheStats()
    stage_stats = CacheStats()
    disk_stats: dict = {}
    indexed: List[tuple] = []
    runner = functools.partial(_run_batch, cache_dir=cache_dir)
    with pool_context().Pool(processes=workers) as pool:
        for results, cstats, tstats, sstats, dstats in \
                pool.map(runner, batches):
            indexed.extend(results)
            compile_stats.merge(cstats)
            trace_stats.merge(tstats)
            stage_stats.merge(sstats)
            for kind, stats in dstats.items():
                if kind in disk_stats:
                    disk_stats[kind].merge(stats)
                else:
                    disk_stats[kind] = stats
    return indexed, compile_stats, trace_stats, stage_stats, disk_stats
