"""Content-addressed caches underlying the sweep runtime.

Three cache layers, mirroring the expensive stages of a scenario cell:

* :class:`CompileCache` — compiled programs keyed by (circuit
  fingerprint, calibration content id, options fingerprint). A sweep
  grid that varies only seed or trial count pays compilation once per
  distinct configuration instead of once per cell. The cache also
  memoizes the :class:`~repro.hardware.ReliabilityTables` built for
  each calibration snapshot, which every compilation of that snapshot
  shares.
* :class:`StageCache` — individual pipeline-pass artifacts keyed by
  stage-prefix key (see :mod:`repro.compiler.pipeline`). Nested inside
  every :class:`CompileCache`: when a whole-program lookup misses, the
  pipeline still reuses any shared prefix — most importantly, cells
  that differ only in post-mapping knobs (routing policy, peephole,
  coherence handling) share one expensive SMT/greedy mapping artifact.
* :class:`TraceCache` — lowered
  :class:`~repro.simulator.trace.ProgramTrace` objects keyed by
  (compiled-program fingerprint, noise-model key). The batched executor
  consults it through the ``trace_cache`` hook of
  :func:`repro.simulator.execute`, so re-executing the same compiled
  program (new seed, new shot count) skips the flat-array lowering.

All caches are in-process dictionaries. The parallel sweep path gets
cross-worker sharing not by a shared store but by scheduling: cells
with the same mapping-prefix key are routed to the same worker (see
:mod:`repro.runtime.sweep`), which makes hit counts deterministic and
independent of the worker count.

Keys are content hashes, not object identities, so a cache can be
(re)used across harnesses: fig5 and fig7 both compiling the T-SMT*
baseline for BV4 on day 0 share one compilation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.compiler import (
    CompiledProgram,
    CompilerOptions,
    compile_circuit,
    mapping_stage_fingerprint,
)
from repro.hardware import Calibration, ReliabilityTables
from repro.ir.circuit import Circuit
from repro.simulator import NoiseModel, noise_content_key

if TYPE_CHECKING:
    from repro.backend import Backend

#: (circuit fingerprint, machine id, options fingerprint).
CompileKey = Tuple[str, str, str]

#: (circuit fingerprint, machine id, mapping fingerprint).
PrefixKey = Tuple[str, str, str]


def machine_id(calibration: Calibration,
               backend: Optional["Backend"] = None) -> str:
    """The machine component of content keys.

    The calibration snapshot id alone when no backend is known (the
    pre-backend contract, preserved bit-for-bit), scoped by the owning
    :meth:`~repro.backend.Backend.content_id` otherwise — so two
    backends that happen to produce identical snapshots still occupy
    disjoint key spaces and cross-device sweeps can never alias.
    """
    if backend is None:
        return calibration.content_id()
    return f"{backend.content_id()}:{calibration.content_id()}"


def compile_key(circuit: Circuit, calibration: Calibration,
                options: CompilerOptions,
                backend: Optional["Backend"] = None) -> CompileKey:
    """The content-addressed identity of one compilation."""
    return (circuit.fingerprint(), machine_id(calibration, backend),
            options.fingerprint())


def mapping_prefix_key(circuit: Circuit, calibration: Calibration,
                       options: CompilerOptions,
                       backend: Optional["Backend"] = None) -> PrefixKey:
    """The content-addressed identity of one *mapping* computation.

    Strictly coarser than :func:`compile_key`: cells sharing a compile
    key always share a prefix key, and cells that differ only in
    post-mapping options share a prefix key without sharing a compile
    key — exactly the set that can reuse a mapping artifact through the
    stage cache.
    """
    return (circuit.fingerprint(), machine_id(calibration, backend),
            mapping_stage_fingerprint(options))


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter (e.g. a worker's) into this one."""
        self.hits += other.hits
        self.misses += other.misses


class StageCache:
    """Memoizes individual pipeline-pass artifacts by prefix key.

    The key space is the stage-prefix chain of
    :meth:`repro.compiler.PassManager.run`: an artifact is addressed by
    everything that determined it (circuit, calibration, and the
    fingerprints of every pass up to and including its own), so lookups
    can never alias across option values that drive a pass differently.
    Artifacts are shared objects; treat them as immutable.
    """

    def __init__(self) -> None:
        self._artifacts: Dict[str, object] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._artifacts)

    def _lookup(self, key: str):
        """Storage hook for subclasses layering extra tiers."""
        return self._artifacts.get(key)

    def get(self, key: str):
        """The cached artifact, or ``None`` (counted as a miss)."""
        artifact = self._lookup(key)
        if artifact is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return artifact

    def put(self, key: str, artifact: object) -> None:
        self._artifacts[key] = artifact

    def scoped(self, scope: Optional[str]) -> "StageCache":
        """A view of this cache whose keys are namespaced by *scope*.

        The sweep runtime scopes stage lookups by backend content id
        (``None`` — no backend — returns this cache unchanged), so
        cross-device sweeps can never share a stage artifact even when
        their calibrations happen to serialize identically. The view
        shares storage and counters with its parent.
        """
        if scope is None:
            return self
        return _ScopedStageCache(self, scope)


class _ScopedStageCache:
    """Key-namespacing view over a :class:`StageCache`."""

    def __init__(self, parent: StageCache, scope: str) -> None:
        self._parent = parent
        self._scope = scope

    @property
    def stats(self) -> CacheStats:
        return self._parent.stats

    def __len__(self) -> int:
        return len(self._parent)

    def get(self, key: str):
        return self._parent.get(f"{self._scope}|{key}")

    def put(self, key: str, artifact: object) -> None:
        self._parent.put(f"{self._scope}|{key}", artifact)

    def scoped(self, scope: Optional[str]):
        # Scopes don't nest: re-scoping from the same backend is a
        # no-op and nothing re-scopes across backends.
        if scope is None or scope == self._scope:
            return self
        return _ScopedStageCache(self._parent, scope)


class CompileCache:
    """Memoizes ``compile_circuit`` results by content key.

    Misses compile through the nested :class:`StageCache`, so even the
    first compilation of a new option value reuses any pipeline prefix
    (typically the mapping stage) computed for a sibling configuration.
    """

    #: Checkpoint journal of completed cell results
    #: (:class:`~repro.runtime.diskcache.ResultJournal`); only the
    #: disk-backed subclass provides one — the sweep runtime journals
    #: and resumes only when it is non-``None``.
    journal = None

    def __init__(self) -> None:
        self._programs: Dict[CompileKey, CompiledProgram] = {}
        self._tables: Dict[str, ReliabilityTables] = {}
        self.stats = CacheStats()
        self.stages = StageCache()

    def __len__(self) -> int:
        return len(self._programs)

    def tables_for(self, calibration: Calibration) -> ReliabilityTables:
        """The (shared) routing tables for a calibration snapshot."""
        key = calibration.content_id()
        tables = self._tables.get(key)
        if tables is None:
            tables = self._tables[key] = ReliabilityTables(calibration)
        return tables

    def seed_tables(self, calibration: Calibration,
                    tables: ReliabilityTables) -> None:
        """Adopt externally built tables (legacy call sites pass them)."""
        self._tables.setdefault(calibration.content_id(), tables)

    def _lookup(self, key: CompileKey) -> Optional[CompiledProgram]:
        """Storage hook: the cached program for *key*, or ``None``.

        Subclasses (e.g. the persistent cache in
        :mod:`repro.runtime.diskcache`) override this to consult
        additional tiers behind the in-memory dictionary.
        """
        return self._programs.get(key)

    def _insert(self, key: CompileKey, program: CompiledProgram) -> None:
        """Storage hook: record a freshly compiled program."""
        self._programs[key] = program

    def stages_for(self, backend: Optional["Backend"] = None):
        """The stage cache, scoped to *backend* when one is given."""
        if backend is None:
            return self.stages
        return self.stages.scoped(backend.content_id())

    def disk_stats(self) -> Dict[str, "object"]:
        """Per-tier persistent-store counters (empty: no disk tier).

        Overridden by :class:`repro.runtime.diskcache.PersistentCompileCache`
        to expose its :class:`~repro.runtime.diskcache.StoreStats` per
        store kind (``"compile"``, ``"stage"``).
        """
        return {}

    def redeem(self) -> bool:
        """Persistent-store degradation recovery probe.

        No disk tier here, so trivially healthy; the disk-backed
        subclass probes its store (see
        :meth:`repro.runtime.diskcache.DiskStore.redeem`). Long-lived
        callers (the compile service) poll this between batches.
        """
        return True

    def get_or_compile(self, circuit: Circuit, calibration: Calibration,
                       options: CompilerOptions,
                       backend: Optional["Backend"] = None
                       ) -> Tuple[CompiledProgram, bool]:
        """Return the compiled program and whether it was a cache hit.

        Hits return a copy flagged ``cache_hit=True`` whose
        ``compile_time`` is zero — the stored program's wall clock
        describes the original compilation, and replaying it would make
        sweep timing reports count the same work once per cell.

        With *backend*, both the whole-program key and the nested
        stage-cache keys are scoped by its content id (see
        :func:`machine_id`).
        """
        key = compile_key(circuit, calibration, options, backend)
        program = self._lookup(key)
        if program is not None:
            self.stats.hits += 1
            served = replace(program, compile_time=0.0, cache_hit=True)
            if "_fingerprint" in program.__dict__:  # carry the memo over
                served.__dict__["_fingerprint"] = \
                    program.__dict__["_fingerprint"]
            return served, True
        self.stats.misses += 1
        program = compile_circuit(circuit, calibration, options,
                                  tables=self.tables_for(calibration),
                                  stage_cache=self.stages_for(backend))
        self._insert(key, program)
        return program, False


class TraceCache:
    """Memoizes batched-engine :class:`ProgramTrace` lowerings.

    Passed to :func:`repro.simulator.execute` via its ``trace_cache``
    argument. Only plain :class:`NoiseModel` instances (whose behavior
    is fully determined by calibration content and the mechanism flags)
    are cached; exotic subclasses bypass the cache unless they provide
    their own ``trace_key()`` describing their full configuration.
    """

    def __init__(self) -> None:
        self._traces: Dict[tuple, object] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._traces)

    @staticmethod
    def _key(compiled: CompiledProgram, noise: NoiseModel,
             calibration: Calibration,
             scope: Optional[str] = None) -> Optional[tuple]:
        noise_key = noise_content_key(noise)
        if noise_key is None:
            # Unknown subclass state (or an explicit trace_key() of
            # None): don't risk stale traces.
            return None
        # The execute-time calibration is keyed separately from the
        # noise model's: its topology shapes the trace's crosstalk
        # sites, and execute() supports running under a different
        # snapshot than the noise model was built on.
        key = (compiled.fingerprint(), calibration.content_id(), noise_key)
        return key if scope is None else (scope,) + key

    def get(self, compiled: CompiledProgram, noise: NoiseModel,
            calibration: Calibration, scope: Optional[str] = None):
        """The cached trace, or ``None`` (counted as a miss)."""
        key = self._key(compiled, noise, calibration, scope)
        if key is None:
            return None
        trace = self._traces.get(key)
        if trace is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return trace

    def put(self, compiled: CompiledProgram, noise: NoiseModel,
            calibration: Calibration, trace,
            scope: Optional[str] = None) -> None:
        key = self._key(compiled, noise, calibration, scope)
        if key is not None:
            self._traces[key] = trace

    def scoped(self, backend: Optional["Backend"]) -> "TraceCache":
        """A view whose keys are namespaced by *backend*'s content id.

        ``None`` returns this cache unchanged (the pre-backend key
        layout). The view satisfies the ``get``/``put`` contract of
        :func:`repro.simulator.execute`'s ``trace_cache`` argument and
        shares storage and counters with its parent — the sweep runtime
        hands each cell a view scoped to its backend so cross-device
        grids never alias a lowered trace.
        """
        if backend is None:
            return self
        return _ScopedTraceCache(self, backend.content_id())


class _ScopedTraceCache:
    """Key-namespacing view over a :class:`TraceCache`."""

    def __init__(self, parent: TraceCache, scope: str) -> None:
        self._parent = parent
        self._scope = scope

    @property
    def stats(self) -> CacheStats:
        return self._parent.stats

    def __len__(self) -> int:
        return len(self._parent)

    def get(self, compiled: CompiledProgram, noise: NoiseModel,
            calibration: Calibration):
        return self._parent.get(compiled, noise, calibration,
                                scope=self._scope)

    def put(self, compiled: CompiledProgram, noise: NoiseModel,
            calibration: Calibration, trace) -> None:
        self._parent.put(compiled, noise, calibration, trace,
                         scope=self._scope)
