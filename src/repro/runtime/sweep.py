"""Declarative scenario sweeps with deterministic parallel execution.

An experiment is expressed as a flat grid of :class:`SweepCell` values
— (circuit, options, backend/calibration, trials, seed, engine) — and
handed to :func:`run_sweep`, which executes the cells serially or
across a process pool and returns per-cell results in grid order.

"Which machine" is a first-class axis: a cell may name a
:class:`~repro.backend.Backend` instead of (or in addition to) a
concrete calibration — the calibration and engine fields are then
derived from the backend (day-*day* snapshot, default engine) but
remain overridable. Cells carrying a backend get cache keys scoped by
``Backend.content_id()`` on every tier (compile, stage, trace), so
cross-device sweeps can never alias, and the parallel scheduler groups
cells by backend before mapping-prefix so per-device
:class:`~repro.hardware.ReliabilityTables` memos are shared within a
worker.

Failures are first-class: an exception inside a cell (or the death of
the worker running it) is captured as a :class:`CellFailure` on that
cell's result rather than aborting the grid, so a multi-hour sweep
returns every surviving cell plus a failure report
(``strict=True`` restores raise-on-first-error). With a persistent
store (``cache_dir=``), completed cells are checkpoint-journaled as
they finish and ``resume=True`` skips them after a crash or Ctrl-C —
bit-identical to an uninterrupted run by construction.

Three properties the figure harnesses rely on:

* **Determinism** — a cell's result is a pure function of the cell:
  compilation is deterministic (branch-and-bound with a fixed
  expansion order) and execution draws from
  ``np.random.default_rng(cell.seed)``. Parallel runs are therefore
  bit-identical to serial runs at any worker count — with one caveat:
  a solve that hits its ``solver_time_limit`` truncates on wall-clock
  time, so cells near the cap (fig11's scaling points) may settle on a
  different incumbent under load. Paper-scale cells finish orders of
  magnitude under the default limit and are unaffected.
* **Cross-cell caching** — cells sharing a compile key (circuit
  fingerprint, calibration id, options fingerprint) share one
  compilation; cells sharing only a *mapping-prefix* key (circuit,
  calibration, mapping-stage fingerprint) still share the expensive
  mapping artifact through the pipeline stage cache; and cells
  additionally sharing a noise model share one lowered
  :class:`~repro.simulator.trace.ProgramTrace`. Only the sampling
  stage is paid per cell. See :mod:`repro.runtime.cache`.
* **Placement-aware scheduling** — the parallel path groups cells by
  mapping-prefix key (which subsumes grouping by compile key: equal
  compile keys imply equal prefix keys) and assigns whole groups to
  workers, so every duplicate configuration lands where its
  compilation is cached and every post-mapping variation lands where
  its mapping is cached. Cache hit counts are thus the same at every
  worker count (and equal to the serial path's), not an accident of
  scheduling. The deliberate tradeoff: a grid dominated by one giant
  group parallelizes poorly (a single-group grid runs serially) —
  splitting groups would buy pool width at the cost of duplicate
  compiles and scheduling-dependent hit counts.
"""

from __future__ import annotations

import time
import traceback as _traceback
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, \
    Tuple

from repro.backend import DEFAULT_ENGINE, Backend
from repro.compiler import CompiledProgram, CompilerOptions
from repro.exceptions import CellExecutionError, ReproError
from repro.hardware import Calibration
from repro.ir.circuit import Circuit
from repro.runtime.cache import (
    CacheStats,
    CompileCache,
    CompileKey,
    PrefixKey,
    TraceCache,
    compile_key,
    machine_id,
    mapping_prefix_key,
)
from repro.simulator import ExecutionResult, execute

if TYPE_CHECKING:  # runtime import stays lazy: see run_cell
    from repro.mitigation.strategy import MitigatedResult, MitigationStrategy
    from repro.runtime.diskcache import StoreStats

#: Default shot count per cell — the repo-wide source of truth
#: (``repro.experiments`` re-exports it). The paper uses 8192 hardware
#: shots; 1024 simulated trials gives ~1.5% standard error.
DEFAULT_TRIALS = 1024


@dataclass
class SweepCell:
    """One point of an experiment grid.

    Attributes:
        circuit: The logical program to compile.
        calibration: Machine snapshot to compile for and execute under.
            Optional when a ``backend`` is set — it then defaults to
            the backend's day-``day`` snapshot (explicit values win,
            e.g. to model stale-calibration compilation).
        options: Compiler configuration (required; keyword-friendly
            ``None`` default only so ``calibration`` can be optional).
        expected: The benchmark's known answer (success-rate accounting).
        trials: Shot count.
        seed: Per-cell master RNG seed. Seeding is the cell's own
            responsibility precisely so that execution order — serial,
            parallel, any worker count — cannot change results.
        simulate: When ``False``, compile only (fig8/fig9/fig11 style).
        engine: Executor engine name (any registered
            :class:`~repro.backend.engines.ExecutionEngine`). Defaults
            to the backend's ``default_engine``, or ``"batched"``
            without a backend.
        array_backend: Optional registered
            :class:`~repro.simulator.xp.ArrayBackend` name for the
            statevector contraction (``"numpy"``/``"torch"``/
            ``"cupy"``; ``None`` = the process default). Counts are
            bit-identical across array backends — which is why no
            cache key or fingerprint includes it (see
            :func:`cell_fingerprint`): sweeps varying only
            ``array_backend`` share every compile/trace/journal
            artifact. An unavailable backend warns once and runs on
            numpy.
        mitigation: Optional error-mitigation strategy
            (:mod:`repro.mitigation`) applied on top of the baseline
            execution. The strategy's extra executions (noise-scaled
            traces, folded recompiles) run against the same
            compile/stage/trace caches as the baseline, so replicated
            cells amortize them like any other artifact. Requires
            ``simulate=True`` and an ``expected`` outcome.
        backend: Optional :class:`~repro.backend.Backend` — the cell's
            machine axis. Scopes every cache key by the backend's
            content id and supplies the derived calibration/engine
            defaults above.
        day: Calibration day used when the calibration is derived from
            the backend (ignored when ``calibration`` is explicit).
        key: Free-form hashable identifier the harness uses to file the
            result (e.g. ``("BV4", "r-smt*", day)``).
    """

    circuit: Circuit
    calibration: Optional[Calibration] = None
    options: Optional[CompilerOptions] = None
    expected: Optional[str] = None
    trials: int = DEFAULT_TRIALS
    seed: int = 7
    simulate: bool = True
    engine: Optional[str] = None
    array_backend: Optional[str] = None
    mitigation: Optional["MitigationStrategy"] = None
    backend: Optional[Backend] = None
    day: int = 0
    key: Hashable = None

    def __post_init__(self) -> None:
        if self.options is None:
            raise ReproError("SweepCell needs compiler options")
        if self.calibration is None:
            if self.backend is None:
                raise ReproError(
                    "SweepCell needs a calibration or a backend to "
                    "derive one from")
            self.calibration = self.backend.calibration(self.day)
        if self.engine is None:
            self.engine = (self.backend.default_engine
                           if self.backend is not None else DEFAULT_ENGINE)

    def machine_key(self) -> str:
        """Content identity of the cell's machine (backend when set,
        bare calibration otherwise) — the scheduler's outer grouping
        level and the cache-key scope."""
        if self.backend is not None:
            return self.backend.content_id()
        return self.calibration.content_id()

    def compile_key(self) -> CompileKey:
        """Content key of this cell's compilation stage."""
        return compile_key(self.circuit, self.calibration, self.options,
                           self.backend)

    def prefix_key(self) -> PrefixKey:
        """Content key of this cell's mapping stage (coarser than
        :meth:`compile_key`): cells sharing it reuse one mapping
        artifact even when their post-mapping options differ."""
        return mapping_prefix_key(self.circuit, self.calibration,
                                  self.options, self.backend)


def cell_fingerprint(cell: SweepCell) -> str:
    """Content identity of a cell's *result* — the checkpoint-journal
    key.

    Covers everything a :class:`CellResult` is a pure function of:
    circuit, machine (backend-scoped calibration), compiler options,
    expected outcome, trial count, seed, simulate flag, engine, and
    mitigation strategy. Two cells with equal fingerprints are
    guaranteed identical results, so a journaled result can stand in
    for re-execution bit-for-bit. The cell's free-form ``key`` is
    deliberately excluded — it names the result, it doesn't determine
    it. ``array_backend`` is excluded too, for the same reason
    ``Backend.content_id()`` excludes ``default_engine``: counts are
    bit-identical across array backends (host RNG, device-independent
    law), so a result journaled under numpy legitimately serves a
    torch re-run — and resumed sweeps stay backend-agnostic.
    """
    return "|".join((
        "cell-v1",
        cell.circuit.fingerprint(),
        machine_id(cell.calibration, cell.backend),
        cell.options.fingerprint(),
        repr(cell.expected),
        str(cell.trials),
        str(cell.seed),
        "sim" if cell.simulate else "compile-only",
        cell.engine,
        cell.mitigation.fingerprint() if cell.mitigation is not None
        else "-",
    ))


@dataclass
class CellFailure:
    """Structured record of one cell's failure.

    Captured instead of propagated (unless ``strict``), so a sweep
    returns every surviving cell plus a report of exactly what failed
    and why — the degradation contract of the supervised runtime.

    Attributes:
        key: The failing cell's identifier.
        index: The cell's grid position.
        error_type: Exception class name (``"FaultInjected"``,
            ``"MappingError"``, ...), or a synthetic kind for
            non-exception deaths (``"WorkerDied"``, ``"WorkerTimeout"``).
        message: The exception message / death description.
        traceback: Full formatted traceback (empty for worker deaths —
            the process took its stack with it).
        attempts: Execution attempts charged to this cell before it
            was declared failed (1 for in-cell exceptions, which are
            deterministic and not retried; up to ``max_retries + 1``
            for worker deaths).
        stage: Where the failure was observed: ``"cell"`` (exception
            inside :func:`run_cell`), ``"worker"`` (the worker process
            died), or ``"timeout"`` (the watchdog killed a stuck
            worker).
        program: The failing cell's circuit name — so a
            ``SolverError``/``MappingError`` buried in a 200-cell sweep
            names its benchmark without the caller joining against the
            grid by index.
        mapper: The cell's compiler variant (``"r-smt*"``, ...) — the
            mapping policy that was running when the cell failed.
    """

    key: Hashable
    index: int
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    stage: str = "cell"
    program: str = ""
    mapper: str = ""

    @classmethod
    def from_exception(cls, index: int, key: Hashable, exc: Exception,
                       attempts: int = 1,
                       cell: Optional["SweepCell"] = None) -> "CellFailure":
        return cls(key=key, index=index, error_type=type(exc).__name__,
                   message=str(exc),
                   traceback="".join(_traceback.format_exception(
                       type(exc), exc, exc.__traceback__)),
                   attempts=attempts, stage="cell",
                   program=_cell_program(cell), mapper=_cell_mapper(cell))

    def describe(self) -> str:
        """One-line rendering for the failure report."""
        where = ""
        if self.program or self.mapper:
            where = (f" [{self.program or '?'}"
                     f" via {self.mapper or '?'}]")
        return (f"cell {self.key!r} (grid index {self.index}){where}: "
                f"{self.error_type}: {self.message} "
                f"[stage={self.stage}, attempts={self.attempts}]")


def _cell_program(cell: Optional["SweepCell"]) -> str:
    """The cell's circuit name, defensively ("" when unknown)."""
    if cell is None:
        return ""
    circuit = getattr(cell, "circuit", None)
    return str(getattr(circuit, "name", "") or "")


def _cell_mapper(cell: Optional["SweepCell"]) -> str:
    """The cell's compiler variant, defensively ("" when unknown)."""
    if cell is None:
        return ""
    options = getattr(cell, "options", None)
    return str(getattr(options, "variant", "") or "")


@dataclass
class CellResult:
    """Outcome of one sweep cell.

    Attributes:
        key: The cell's identifier, copied through.
        compiled: The compiled artifact (possibly shared with other
            cells via the compile cache); ``None`` when the cell
            failed before compilation finished.
        execution: Monte-Carlo outcome (``None`` for compile-only cells).
        compile_cache_hit: Whether compilation was served from cache.
        trace_cache_hit: Whether the lowered trace was served from cache.
        mitigation: Outcome of the cell's mitigation strategy, when one
            was set.
        failure: The cell's failure record, or ``None`` on success —
            the failed-cell channel of the fault-tolerant runtime.
        resumed: True when this result was served from the checkpoint
            journal instead of executed (``run_sweep(resume=True)``).
    """

    key: Hashable
    compiled: Optional[CompiledProgram] = None
    execution: Optional[ExecutionResult] = None
    compile_cache_hit: bool = False
    trace_cache_hit: bool = False
    mitigation: Optional["MitigatedResult"] = None
    failure: Optional[CellFailure] = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        """Whether the cell completed (its channels are populated)."""
        return self.failure is None

    @property
    def success_rate(self) -> float:
        if self.failure is not None:
            raise ReproError(
                f"cell {self.key!r} failed "
                f"({self.failure.error_type}: {self.failure.message}); "
                f"check CellResult.ok / SweepResult.failures before "
                f"reading outcome channels")
        if self.execution is None:
            raise ReproError(f"cell {self.key!r} was not simulated")
        return self.execution.success_rate

    @property
    def mitigated_success(self) -> float:
        """The strategy's zero-noise/corrected success estimate."""
        if self.mitigation is None:
            raise ReproError(f"cell {self.key!r} was not mitigated")
        return self.mitigation.mitigated_success


@dataclass
class SweepResult:
    """All cell results of one sweep, in grid order, plus cache stats.

    Attributes:
        results: One :class:`CellResult` per input cell, same order.
        compile_stats: Aggregated compile-cache counters.
        trace_stats: Aggregated trace-cache counters.
        stage_stats: Aggregated stage-cache counters (per-pass artifact
            reuse inside whole-program compile misses).
        disk_stats: Persistent-store counters per tier
            (``"compile"``/``"stage"`` →
            :class:`~repro.runtime.diskcache.StoreStats`), populated
            only when the sweep ran against an on-disk cache
            (``cache_dir=`` or a persistent ``compile_cache``). Pool
            workers' counters are merged in.
        wall_time: End-to-end sweep seconds.
        workers: Pool size used (0 = in-process serial).
        resumed: Cells served from the checkpoint journal instead of
            executed (``resume=True``).
    """

    results: List[CellResult]
    compile_stats: CacheStats
    trace_stats: CacheStats
    stage_stats: CacheStats = field(default_factory=CacheStats)
    disk_stats: Dict[str, "StoreStats"] = field(default_factory=dict)
    wall_time: float = 0.0
    workers: int = 0
    resumed: int = 0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[CellFailure]:
        """Failure records of every failed cell, in grid order."""
        return [r.failure for r in self.results
                if r is not None and r.failure is not None]

    @property
    def ok(self) -> bool:
        """Whether every cell completed."""
        return not self.failures

    def failure_report(self) -> str:
        """Human-readable report of every failed cell (empty string
        when the sweep completed cleanly)."""
        failures = self.failures
        if not failures:
            return ""
        lines = [f"{len(failures)}/{len(self.results)} cells failed:"]
        lines.extend("  " + failure.describe() for failure in failures)
        return "\n".join(lines)

    def by_key(self) -> Dict[Hashable, CellResult]:
        """Results indexed by cell key (keys must be unique)."""
        out: Dict[Hashable, CellResult] = {}
        for result in self.results:
            if result.key in out:
                raise ReproError(f"duplicate sweep cell key {result.key!r}")
            out[result.key] = result
        return out

    def summary(self) -> str:
        """Cache/throughput description (one line per storage layer)."""
        extras = ""
        if self.failures:
            extras += f", {len(self.failures)} failed"
        if self.resumed:
            extras += f", {self.resumed} resumed"
        text = (f"{len(self.results)} cells in {self.wall_time:.2f}s "
                f"(workers={self.workers}{extras}): compile cache "
                f"{self.compile_stats.hits}/{self.compile_stats.lookups} hit, "
                f"stage cache "
                f"{self.stage_stats.hits}/{self.stage_stats.lookups} hit, "
                f"trace cache "
                f"{self.trace_stats.hits}/{self.trace_stats.lookups} hit")
        if self.disk_stats:
            tiers = ", ".join(
                f"{kind} {stats.describe()}"
                for kind, stats in sorted(self.disk_stats.items()))
            text += f"\ndisk store: {tiers}"
        return text


def run_cell(cell: SweepCell, compile_cache: CompileCache,
             trace_cache: TraceCache) -> CellResult:
    """Execute one cell against the given caches.

    Cells carrying a backend see every cache tier through a view
    scoped by ``Backend.content_id()`` (see
    :meth:`~repro.runtime.cache.TraceCache.scoped`), so mixed-device
    grids share the cache *objects* without ever sharing entries
    across devices.
    """
    compiled, compile_hit = compile_cache.get_or_compile(
        cell.circuit, cell.calibration, cell.options, backend=cell.backend)
    cell_traces = trace_cache.scoped(cell.backend)
    execution = None
    trace_hit = False
    mitigation = None
    if cell.simulate:
        hits_before = trace_cache.stats.hits
        execution = execute(compiled, cell.calibration, trials=cell.trials,
                            seed=cell.seed, expected=cell.expected,
                            engine=cell.engine, trace_cache=cell_traces,
                            array_backend=cell.array_backend)
        trace_hit = trace_cache.stats.hits > hits_before
        if cell.mitigation is not None:
            # Imported here, not at module top: the mitigation package
            # depends on the simulator/compiler layers this module also
            # feeds, and the strategy types are only needed when a grid
            # actually uses the axis.
            from repro.mitigation.strategy import MitigationContext

            context = MitigationContext(
                compiled=compiled, calibration=cell.calibration,
                baseline=execution, circuit=cell.circuit,
                options=cell.options, trials=cell.trials, seed=cell.seed,
                expected=cell.expected, engine=cell.engine,
                trace_cache=cell_traces,
                stage_cache=compile_cache.stages_for(cell.backend),
                tables=compile_cache.tables_for(cell.calibration))
            mitigation = cell.mitigation.mitigate(context)
    return CellResult(key=cell.key, compiled=compiled, execution=execution,
                      compile_cache_hit=compile_hit,
                      trace_cache_hit=trace_hit,
                      mitigation=mitigation)


def run_cell_guarded(index: int, cell: SweepCell,
                     compile_cache: CompileCache, trace_cache: TraceCache,
                     faults=None, attempts: int = 0, journal=None,
                     in_worker: bool = False,
                     capture: bool = True) -> CellResult:
    """Execute one cell with failure isolation, journaling, and fault
    hooks — the supervised runtime's per-cell entry point (both the
    serial path and every pool worker run cells through it).

    An exception inside the cell is captured as a
    :class:`CellFailure`-carrying result instead of propagating
    (``capture=False`` — strict serial mode — restores propagation).
    In-cell exceptions are deterministic (a cell's result is a pure
    function of the cell), so they are never retried. Successful
    results are journaled under the cell's fingerprint when a
    *journal* is given, before any injected journal corruption fires.
    ``KeyboardInterrupt`` always propagates: completed cells are
    already journaled, which is exactly what ``resume=True`` needs.
    """
    try:
        if faults is not None:
            faults.before_cell(index, attempts=attempts,
                               in_worker=in_worker)
        result = run_cell(cell, compile_cache, trace_cache)
    except Exception as exc:
        if not capture:
            raise
        return CellResult(key=cell.key,
                          failure=CellFailure.from_exception(
                              index, cell.key, exc, attempts=attempts + 1,
                              cell=cell))
    if journal is not None:
        fingerprint = cell_fingerprint(cell)
        journal.record(fingerprint, result)
        if faults is not None:
            faults.after_journal(index, journal, fingerprint)
    return result


def _partition(cells: Sequence[SweepCell], workers: int,
               indexes: Optional[Sequence[int]] = None
               ) -> List[List[Tuple[int, SweepCell]]]:
    """Split cells into per-worker batches along mapping-prefix groups,
    grouped by machine first.

    Whole groups (cells sharing a mapping-prefix key — which includes
    all cells sharing a full compile key) go to one worker, so each
    distinct configuration compiles exactly once somewhere and each
    distinct mapping is solved exactly once somewhere.

    The dealing unit depends on the grid's machine diversity:

    * **At least as many machines as batches** — whole machines are
      dealt, largest first, onto the lightest batch. Every worker sees
      each of its devices exactly once, so the per-calibration
      :class:`~repro.hardware.ReliabilityTables` memo is built once
      per device total (the "same grid per device" sweep lands each
      device on one worker). The granularity tradeoff mirrors the
      whole-group one: imbalance is bounded by one machine's cell
      count.
    * **Fewer machines than batches** — machines must be split for the
      pool to be used at all, so individual prefix groups are dealt
      largest-first onto the lightest batch (ties between equally
      loaded batches prefer one already holding the group's machine,
      then the lowest index); a device's tables may then be rebuilt by
      several workers — the price of width. Single-device grids take
      this path and partition exactly as before the machine axis
      existed.

    Both regimes are deterministic at any worker count, and hit counts
    are worker-count-independent either way because groups never split.
    """
    if indexes is None:
        indexes = range(len(cells))
    groups: Dict[Tuple[str, PrefixKey], List[Tuple[int, SweepCell]]] = {}
    machine_totals: Dict[str, int] = {}
    machine_first: Dict[str, int] = {}
    for index, cell in zip(indexes, cells):
        machine = cell.machine_key()
        groups.setdefault((machine, cell.prefix_key()), []) \
            .append((index, cell))
        machine_totals[machine] = machine_totals.get(machine, 0) + 1
        machine_first.setdefault(machine, index)
    per_machine: Dict[str, List[List[Tuple[int, SweepCell]]]] = {}
    for (machine, _prefix), group in groups.items():
        per_machine.setdefault(machine, []).append(group)
    machines = sorted(per_machine,
                      key=lambda m: (-machine_totals[m], machine_first[m]))
    batches: List[List[Tuple[int, SweepCell]]] = \
        [[] for _ in range(min(workers, len(groups)))]
    batch_machines: List[set] = [set() for _ in batches]

    def lightest(machine: str) -> int:
        return min(range(len(batches)),
                   key=lambda b: (len(batches[b]),
                                  machine not in batch_machines[b], b))

    for machine in machines:
        machine_groups = sorted(per_machine[machine],
                                key=lambda g: (-len(g), g[0][0]))
        if len(machines) >= len(batches):
            target = lightest(machine)
            for group in machine_groups:
                batches[target].extend(group)
            batch_machines[target].add(machine)
        else:
            for group in machine_groups:
                target = lightest(machine)
                batches[target].extend(group)
                batch_machines[target].add(machine)
    return [b for b in batches if b]


def _merge_disk_stats(into: Dict[str, "StoreStats"],
                      extra: Dict[str, "StoreStats"]) -> None:
    for kind, stats in extra.items():
        if kind in into:
            into[kind].merge(stats)
        else:
            into[kind] = stats


def run_sweep(cells: Sequence[SweepCell], workers: int = 0,
              compile_cache: Optional[CompileCache] = None,
              trace_cache: Optional[TraceCache] = None,
              cache_dir=None, strict: bool = False, resume: bool = False,
              max_retries: int = 2,
              batch_timeout: Optional[float] = None,
              faults=None) -> SweepResult:
    """Execute a sweep grid, serially or across a supervised process
    pool, with per-cell failure isolation.

    A failing cell no longer aborts the grid: its exception (or its
    worker's death) is captured as a :class:`CellFailure` on the
    cell's result, and the sweep returns every surviving cell plus a
    failure report (:meth:`SweepResult.failure_report`). Surviving
    cells are bit-identical to a fault-free run — each cell's result
    is a pure function of the cell, so isolation, retries, and
    resubmission cannot perturb them.

    Args:
        cells: The grid. Order is preserved in the result. An empty
            grid returns a well-formed empty result.
        workers: ``0`` or ``1`` runs in-process; ``>= 2`` fans compile-key
            groups out over that many supervised worker processes
            (worker death and stuck workers are recovered per batch,
            see :mod:`repro.runtime.pool`).
        compile_cache: Optional shared cache for the in-process path —
            pass one to accumulate compilations across several sweeps
            (e.g. chained experiments on the same snapshot). Workers
            always build their own (in-process object caches don't
            cross the process boundary), so this applies to the serial
            path only — except that a persistent cache's journal also
            serves ``resume``.
        trace_cache: As above, for lowered traces.
        cache_dir: Optional directory for a persistent compile/stage
            cache (:mod:`repro.runtime.diskcache`): compilations
            survive the process and are shared with other sweeps —
            including pool workers, which each open the same store.
            Also enables the checkpoint journal: every completed cell
            is recorded as it finishes, so a crashed or interrupted
            sweep can be resumed. Ignored when an explicit
            ``compile_cache`` is supplied.
        strict: Restore raise-on-first-error: the serial path
            re-raises the failing cell's exception immediately; the
            parallel path raises
            :class:`~repro.exceptions.CellExecutionError` carrying the
            failure report.
        resume: Serve cells already present in the checkpoint journal
            (content-addressed by :func:`cell_fingerprint`) instead of
            re-executing them — bit-identical by construction, since
            the journal stores the exact result an uninterrupted run
            would have produced. Requires a persistent store
            (``cache_dir`` or a persistent ``compile_cache``).
        max_retries: Worker-death retries charged per cell before the
            suspect cell is quarantined as failed (parallel path).
        batch_timeout: Soft seconds-without-progress limit per worker;
            the watchdog kills and resubmits a worker that exceeds it
            (``None`` disables).
        faults: Optional :class:`~repro.runtime.faults.FaultPlan`
            (inert unless ``REPRO_FAULTS`` is set).

    Returns:
        :class:`SweepResult` with per-cell results in input order.

    Raises:
        ValueError: On out-of-range supervision knobs — negative
            ``workers``, negative ``max_retries``, or a non-positive
            ``batch_timeout`` — rather than handing the pool an
            undefined policy.
    """
    if workers < 0:
        raise ValueError(
            f"workers must be >= 0 (0 = in-process serial), got {workers}")
    if max_retries < 0:
        raise ValueError(
            f"max_retries must be >= 0 (0 = quarantine on the first "
            f"worker death), got {max_retries}")
    if batch_timeout is not None and batch_timeout <= 0:
        raise ValueError(
            f"batch_timeout must be positive seconds (or None to "
            f"disable the watchdog), got {batch_timeout}")
    cells = list(cells)
    start = time.perf_counter()
    if not cells:
        return SweepResult(results=[], compile_stats=CacheStats(),
                           trace_stats=CacheStats(),
                           wall_time=time.perf_counter() - start,
                           workers=0)
    if compile_cache is None:
        from repro.runtime.diskcache import make_compile_cache

        compile_cache = make_compile_cache(cache_dir)
    journal = compile_cache.journal
    # Snapshot-and-diff so a reused persistent cache's cumulative disk
    # counters don't bleed an earlier sweep's traffic into this result.
    # Taken before the resume lookups, so journal hits are visible in
    # the sweep's disk stats (the "cell" tier pins resume behavior).
    disk_before = compile_cache.disk_stats()

    todo: List[Tuple[int, SweepCell]] = list(enumerate(cells))
    results: List[Optional[CellResult]] = [None] * len(cells)
    resumed = 0
    if resume:
        if journal is None:
            raise ReproError(
                "resume=True needs the checkpoint journal, which lives "
                "in the persistent store: pass cache_dir= (or a "
                "PersistentCompileCache)")
        remaining: List[Tuple[int, SweepCell]] = []
        for index, cell in todo:
            stored = journal.load(cell_fingerprint(cell))
            if stored is not None:
                results[index] = replace(stored, resumed=True)
                resumed += 1
            else:
                remaining.append((index, cell))
        todo = remaining

    def diff_disk() -> Dict[str, "StoreStats"]:
        return {kind: (stats.minus(disk_before[kind])
                       if kind in disk_before else stats)
                for kind, stats in compile_cache.disk_stats().items()}

    def finalize(sweep: SweepResult) -> SweepResult:
        if strict and sweep.failures:
            raise CellExecutionError(sweep.failure_report())
        return sweep

    if workers >= 2 and len(todo) > 1:
        batches = _partition([cell for _, cell in todo], workers,
                             indexes=[index for index, _ in todo])
        if len(batches) >= 2:
            # Imported here, not at module top: pool's worker entry
            # point imports this module back (lazily) for run_cell.
            from repro.runtime.pool import run_batches

            indexed, compile_stats, trace_stats, stage_stats, disk_stats = \
                run_batches(batches, workers, cache_dir=cache_dir,
                            faults=faults, max_retries=max_retries,
                            batch_timeout=batch_timeout)
            for index, result in indexed:
                results[index] = result
            # The parent's own disk traffic (resume journal lookups)
            # joins the workers' merged counters.
            _merge_disk_stats(disk_stats, diff_disk())
            return finalize(SweepResult(
                results=results, compile_stats=compile_stats,
                trace_stats=trace_stats, stage_stats=stage_stats,
                disk_stats=disk_stats,
                wall_time=time.perf_counter() - start,
                workers=len(batches), resumed=resumed))
        # A single compile-key group has no parallelism to exploit:
        # the in-process path below serves it without fork overhead.

    if trace_cache is None:
        from repro.runtime.diskcache import make_trace_cache

        # Persistent compile caches donate their disk store to the npz
        # trace tier, so ``cache_dir=`` persists lowered traces too.
        trace_cache = make_trace_cache(
            store=getattr(compile_cache, "_store", None))
    for index, cell in todo:
        results[index] = run_cell_guarded(
            index, cell, compile_cache, trace_cache, faults=faults,
            journal=journal, capture=not strict)
    return finalize(SweepResult(
        results=results, compile_stats=compile_cache.stats,
        trace_stats=trace_cache.stats,
        stage_stats=compile_cache.stages.stats, disk_stats=diff_disk(),
        wall_time=time.perf_counter() - start, workers=0,
        resumed=resumed))
