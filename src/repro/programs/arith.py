"""Reversible-logic kernels: Toffoli, Fredkin, Or, Peres, Adder.

Each benchmark fixes a classical input with X gates so the ideal output
is a single deterministic bit string — matching how the paper scores
success on hardware. Gate/CNOT inventories follow Table 2:

* Toffoli — standard 6-CNOT Clifford+T decomposition.
* Fredkin — CNOT-conjugated Toffoli, 8 CNOTs.
* Or      — De Morgan around a Toffoli, 6 CNOTs.
* Peres   — Toffoli with the trailing CNOT fused away, 5 CNOTs.
* Adder   — 1-bit Cuccaro-style full adder using Margolus (relative
  phase) Toffolis, giving a *star-shaped* CNOT interaction graph; this
  reproduces the paper's observation that Adder (like BV/HS/QFT) can be
  mapped with zero qubit movement while the triangle-shaped Toffoli
  family cannot.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit
from repro.programs.primitives import (
    append_margolus,
    append_peres,
    append_toffoli,
)


def _prepare_input(circuit: Circuit, bits: Sequence[int]) -> None:
    for q, bit in enumerate(bits):
        if bit:
            circuit.x(q)


def toffoli(inputs: Sequence[int] = (1, 1, 0)) -> Circuit:
    """Toffoli kernel on inputs (a, b, c); output c XOR ab."""
    _check_bits(inputs, 3)
    circuit = Circuit(3, 3, name="Toffoli")
    _prepare_input(circuit, inputs)
    append_toffoli(circuit, 0, 1, 2)
    circuit.measure_all()
    return circuit


def toffoli_expected_output(inputs: Sequence[int] = (1, 1, 0)) -> str:
    a, b, c = inputs
    return f"{a}{b}{c ^ (a & b)}"


def fredkin(inputs: Sequence[int] = (1, 1, 0)) -> Circuit:
    """Controlled-SWAP on inputs (ctrl, x, y): swaps x,y when ctrl=1."""
    _check_bits(inputs, 3)
    circuit = Circuit(3, 3, name="Fredkin")
    _prepare_input(circuit, inputs)
    circuit.cx(2, 1)
    append_toffoli(circuit, 0, 1, 2)
    circuit.cx(2, 1)
    circuit.measure_all()
    return circuit


def fredkin_expected_output(inputs: Sequence[int] = (1, 1, 0)) -> str:
    ctrl, x, y = inputs
    if ctrl:
        x, y = y, x
    return f"{ctrl}{x}{y}"


def or_gate(inputs: Sequence[int] = (1, 0, 0)) -> Circuit:
    """OR kernel: c XOR (a OR b), via X-conjugated Toffoli (De Morgan)."""
    _check_bits(inputs, 3)
    circuit = Circuit(3, 3, name="Or")
    _prepare_input(circuit, inputs)
    circuit.x(0)
    circuit.x(1)
    append_toffoli(circuit, 0, 1, 2)
    circuit.x(0)
    circuit.x(1)
    circuit.x(2)
    circuit.measure_all()
    return circuit


def or_expected_output(inputs: Sequence[int] = (1, 0, 0)) -> str:
    a, b, c = inputs
    return f"{a}{b}{c ^ (a | b)}"


def peres(inputs: Sequence[int] = (1, 1, 0)) -> Circuit:
    """Peres gate: (a, b, c) -> (a, a XOR b, c XOR ab)."""
    _check_bits(inputs, 3)
    circuit = Circuit(3, 3, name="Peres")
    _prepare_input(circuit, inputs)
    append_peres(circuit, 0, 1, 2)
    circuit.measure_all()
    return circuit


def peres_expected_output(inputs: Sequence[int] = (1, 1, 0)) -> str:
    a, b, c = inputs
    return f"{a}{a ^ b}{c ^ (a & b)}"


def adder(inputs: Sequence[int] = (1, 1, 1)) -> Circuit:
    """One-bit full adder on qubits (cin=q0, b=q1, a=q2, cout=q3).

    Cuccaro MAJ / UMA structure with Margolus Toffolis. After the
    circuit: q1 holds the sum bit, q3 the carry-out, q0/q2 are restored.
    All CNOT interactions touch q2, so the program graph is a star and
    the mapper can always find a zero-SWAP placement on the 2x8 grid.
    """
    _check_bits(inputs, 3)
    cin_bit, b_bit, a_bit = inputs
    cin, b, a, cout = 0, 1, 2, 3
    circuit = Circuit(4, 4, name="Adder")
    _prepare_input(circuit, (cin_bit, b_bit, a_bit))

    # MAJ(cin, b, a): a becomes MAJ(a, b, cin); b, cin hold XORs with a.
    circuit.cx(a, b)
    circuit.cx(a, cin)
    append_margolus(circuit, cin, b, a)
    # Carry-out.
    circuit.cx(a, cout)
    # UMA', restoring a and cin and producing the sum in b, using only
    # edges (a,b) and (a,cin) to stay triangle-free.
    append_margolus(circuit, cin, b, a, inverse=True)
    circuit.cx(cin, a)   # a := a XOR cin' = original cin bit path
    circuit.cx(a, b)     # b := b XOR (a XOR cin')  -> sum accumulates
    circuit.cx(cin, a)   # undo the temporary XOR on a
    circuit.cx(a, cin)   # restore cin
    circuit.measure_all()
    return circuit


def adder_expected_output(inputs: Sequence[int] = (1, 1, 1)) -> str:
    cin_bit, b_bit, a_bit = inputs
    total = cin_bit + b_bit + a_bit
    sum_bit, carry = total & 1, total >> 1
    return f"{cin_bit}{sum_bit}{a_bit}{carry}"


def _check_bits(bits: Sequence[int], n: int) -> None:
    if len(bits) != n or any(b not in (0, 1) for b in bits):
        raise CircuitError(f"inputs must be {n} bits of 0/1, got {bits!r}")
