"""Benchmark registry — the paper's Table 2 plus generators.

Maps benchmark names to builders, expected (deterministic) outcomes, and
the qubit/gate/CNOT counts the paper reports, so the Table-2 experiment
can print paper-vs-measured side by side. A second, post-paper tier
(:data:`LARGE_N_ORDER`) registers the 49–100 qubit Clifford scenarios
the stabilizer engine opened up; it is kept out of
:data:`BENCHMARK_ORDER` so the Table-2 experiments and their pinned
results are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ReproError
from repro.ir.circuit import Circuit
from repro.programs import arith, bv, clifford, hs, qft


@dataclass(frozen=True)
class BenchmarkSpec:
    """A registered benchmark.

    Attributes:
        name: Canonical benchmark name (Table 2 spelling).
        build: Zero-argument circuit factory.
        expected_output: Ideal measurement outcome, cbit 0 first.
        paper_qubits: Qubit count reported in Table 2.
        paper_gates: Gate count reported in Table 2.
        paper_cnots: CNOT count reported in Table 2.
    """

    name: str
    build: Callable[[], Circuit]
    expected_output: str
    paper_qubits: int
    paper_gates: int
    paper_cnots: int


_REGISTRY: Dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(BenchmarkSpec("BV4", bv.bv4, bv.bv_expected_output("BV4"),
                        4, 12, 3))
_register(BenchmarkSpec("BV6", bv.bv6, bv.bv_expected_output("BV6"),
                        6, 12, 3))
_register(BenchmarkSpec("BV8", bv.bv8, bv.bv_expected_output("BV8"),
                        8, 18, 3))
_register(BenchmarkSpec("HS2", hs.hs2, hs.hs_expected_output("HS2"),
                        2, 16, 2))
_register(BenchmarkSpec("HS4", hs.hs4, hs.hs_expected_output("HS4"),
                        4, 28, 4))
_register(BenchmarkSpec("HS6", hs.hs6, hs.hs_expected_output("HS6"),
                        6, 42, 6))
_register(BenchmarkSpec("Fredkin", arith.fredkin,
                        arith.fredkin_expected_output(), 3, 19, 8))
_register(BenchmarkSpec("Or", arith.or_gate,
                        arith.or_expected_output(), 3, 17, 6))
_register(BenchmarkSpec("Peres", arith.peres,
                        arith.peres_expected_output(), 3, 16, 5))
_register(BenchmarkSpec("Toffoli", arith.toffoli,
                        arith.toffoli_expected_output(), 3, 18, 6))
_register(BenchmarkSpec("Adder", arith.adder,
                        arith.adder_expected_output(), 4, 23, 10))
_register(BenchmarkSpec("QFT", qft.qft2, qft.qft_expected_output(2),
                        2, 13, 5))

#: Table-2 ordering used throughout the paper's figures.
BENCHMARK_ORDER: List[str] = [
    "BV4", "BV6", "BV8", "HS2", "HS4", "HS6",
    "Toffoli", "Fredkin", "Or", "Peres", "QFT", "Adder",
]


def _register_clifford(name: str, build: Callable[[], Circuit],
                       expected: str) -> None:
    """Register a large-n benchmark with *measured* counts (these are
    post-paper scenarios; there is no Table-2 row to transcribe)."""
    circuit = build()
    _register(BenchmarkSpec(
        name, build, expected,
        paper_qubits=len(circuit.used_qubits()),
        paper_gates=circuit.gate_count(),
        paper_cnots=sum(1 for g in circuit.gates if g.name == "cx")))


_register_clifford("GHZ12", clifford.ghz12, "0" * 12)
_register_clifford("GHZ60", clifford.ghz60, "0" * 60)
_register_clifford("GHZ100", clifford.ghz100, "0" * 100)
_register_clifford("BV64", clifford.bv64,
                   "".join(str(b) for b in bv._weight3_string(64)))
_register_clifford("REP49", clifford.rep49, "0" * 49)

#: The large-n Clifford tier (stabilizer-engine scenarios), in size
#: order. GHZ12 doubles as the dense-vs-stabilizer cross-check subject.
LARGE_N_ORDER: List[str] = [
    "GHZ12", "REP49", "GHZ60", "BV64", "GHZ100",
]


def benchmark_names(include_large_n: bool = False) -> List[str]:
    """Registered benchmark names in Table-2 order.

    Args:
        include_large_n: Also append the large-n Clifford tier
            (:data:`LARGE_N_ORDER`) after the Table-2 names.
    """
    names = list(BENCHMARK_ORDER)
    if include_large_n:
        names.extend(LARGE_N_ORDER)
    return names


def large_benchmark_names() -> List[str]:
    """The large-n Clifford tier names, smallest first."""
    return list(LARGE_N_ORDER)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name.

    Raises:
        ReproError: If the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; known: {benchmark_names()}"
        ) from None


def build_benchmark(name: str) -> Circuit:
    """Build the circuit for a registered benchmark."""
    return get_benchmark(name).build()


def expected_output(name: str) -> str:
    """Ideal deterministic outcome for a registered benchmark."""
    return get_benchmark(name).expected_output


def all_benchmarks(subset: Optional[List[str]] = None):
    """Yield (name, circuit, expected_output) for *subset* or all."""
    names = subset if subset is not None else benchmark_names()
    for name in names:
        spec = get_benchmark(name)
        yield name, spec.build(), spec.expected_output
