"""Benchmark programs: Table-2 circuits and synthetic generators."""

from repro.programs.arith import adder, fredkin, or_gate, peres, toffoli
from repro.programs.bv import bernstein_vazirani, bv4, bv6, bv8
from repro.programs.hs import hidden_shift, hs2, hs4, hs6
from repro.programs.qft import append_qft, qft2, qft_roundtrip
from repro.programs.random_circuits import random_circuit, scalability_suite
from repro.programs.registry import (
    BENCHMARK_ORDER,
    BenchmarkSpec,
    all_benchmarks,
    benchmark_names,
    build_benchmark,
    expected_output,
    get_benchmark,
)

__all__ = [
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "adder",
    "all_benchmarks",
    "append_qft",
    "benchmark_names",
    "bernstein_vazirani",
    "build_benchmark",
    "bv4",
    "bv6",
    "bv8",
    "expected_output",
    "fredkin",
    "get_benchmark",
    "hidden_shift",
    "hs2",
    "hs4",
    "hs6",
    "or_gate",
    "peres",
    "qft2",
    "qft_roundtrip",
    "random_circuit",
    "scalability_suite",
    "toffoli",
]
