"""Benchmark programs: Table-2 circuits and synthetic generators."""

from repro.programs.arith import adder, fredkin, or_gate, peres, toffoli
from repro.programs.bv import bernstein_vazirani, bv4, bv6, bv8
from repro.programs.clifford import (
    bv64,
    ghz,
    ghz12,
    ghz60,
    ghz100,
    ghz_mirror,
    rep49,
    repetition_code,
)
from repro.programs.hs import hidden_shift, hs2, hs4, hs6
from repro.programs.qft import append_qft, qft2, qft_roundtrip
from repro.programs.random_circuits import random_circuit, scalability_suite
from repro.programs.registry import (
    BENCHMARK_ORDER,
    LARGE_N_ORDER,
    BenchmarkSpec,
    all_benchmarks,
    benchmark_names,
    build_benchmark,
    expected_output,
    get_benchmark,
    large_benchmark_names,
)

__all__ = [
    "BENCHMARK_ORDER",
    "LARGE_N_ORDER",
    "BenchmarkSpec",
    "adder",
    "all_benchmarks",
    "append_qft",
    "benchmark_names",
    "bernstein_vazirani",
    "build_benchmark",
    "bv4",
    "bv6",
    "bv64",
    "bv8",
    "expected_output",
    "fredkin",
    "get_benchmark",
    "ghz",
    "ghz100",
    "ghz12",
    "ghz60",
    "ghz_mirror",
    "hidden_shift",
    "hs2",
    "hs4",
    "hs6",
    "large_benchmark_names",
    "or_gate",
    "peres",
    "qft2",
    "qft_roundtrip",
    "random_circuit",
    "rep49",
    "repetition_code",
    "scalability_suite",
    "toffoli",
]
