"""Bernstein-Vazirani benchmark family (BV4, BV6, BV8 in the paper).

The circuit finds a hidden bit string *s* with one oracle query: the
data register ends deterministically in state |s>, so the success rate of
a run is simply the fraction of trials measuring *s*. Only data qubits
are measured (the ancilla is left in |->, whose measurement outcome is
not meaningful). Each 1-bit of *s* contributes one CNOT; the Table-2
instances all use a weight-3 hidden string.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit


def bernstein_vazirani(hidden_string: Sequence[int],
                       name: str = "") -> Circuit:
    """Build a Bernstein-Vazirani circuit for *hidden_string*.

    Args:
        hidden_string: Bits of the hidden string, ``hidden_string[i]``
            controlling whether data qubit *i* couples to the ancilla.

    Returns:
        Circuit on ``len(hidden_string) + 1`` qubits; the last qubit is
        the oracle ancilla. Data qubits are measured into cbits of the
        same index.
    """
    s = list(hidden_string)
    if not s or any(bit not in (0, 1) for bit in s):
        raise CircuitError("hidden string must be a non-empty 0/1 sequence")
    n_data = len(s)
    ancilla = n_data
    circuit = Circuit(n_data + 1, n_data,
                      name=name or f"BV{n_data + 1}")
    circuit.x(ancilla)
    for q in range(n_data + 1):
        circuit.h(q)
    for q, bit in enumerate(s):
        if bit:
            circuit.cx(q, ancilla)
    for q in range(n_data):
        circuit.h(q)
    for q in range(n_data):
        circuit.measure(q)
    return circuit


def _weight3_string(n_data: int) -> list:
    """Hidden string of Hamming weight min(3, n_data), matching Table 2's
    3-CNOT BV instances."""
    weight = min(3, n_data)
    s = [0] * n_data
    for i in range(weight):
        s[i * n_data // weight] = 1
    return s


def bv4() -> Circuit:
    """BV on 4 qubits (3 data + ancilla), hidden string 111."""
    return bernstein_vazirani(_weight3_string(3), name="BV4")


def bv6() -> Circuit:
    """BV on 6 qubits (5 data + ancilla), weight-3 hidden string."""
    return bernstein_vazirani(_weight3_string(5), name="BV6")


def bv8() -> Circuit:
    """BV on 8 qubits (7 data + ancilla), weight-3 hidden string."""
    return bernstein_vazirani(_weight3_string(7), name="BV8")


def bv_expected_output(circuit_name: str) -> str:
    """The deterministic measurement outcome (cbit 0 first) for a BV
    instance built by this module."""
    sizes = {"BV4": 3, "BV6": 5, "BV8": 7}
    if circuit_name not in sizes:
        raise CircuitError(f"unknown BV instance {circuit_name!r}")
    return "".join(str(b) for b in _weight3_string(sizes[circuit_name]))
