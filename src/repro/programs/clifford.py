"""Large-n Clifford benchmark tier (GHZ chains, repetition codes).

The Table-2 benchmarks top out at 8 qubits because every engine used
to be dense-statevector. These programs are pure Clifford, so the
stabilizer engine samples them in polynomial time at 50–100+ qubits —
the scenario tier ROADMAP's "large-n engines" item calls for. All of
them have deterministic all-zero ideal outcomes (GHZ is used in its
prepare-uncompute *mirror* form for exactly that reason), so success
rate stays a meaningful figure of merit at any size.
"""

from __future__ import annotations

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit


def ghz(n_qubits: int, name: str = "") -> Circuit:
    """A GHZ-state preparation chain, all qubits measured.

    ``h(0)`` then a CNOT ladder; the ideal outcome is the 50/50 mix of
    all-zeros and all-ones (one measurement coin in stabilizer terms),
    so this variant has no deterministic expected string — use
    :func:`ghz_mirror` for success-rate benchmarks.
    """
    if n_qubits < 2:
        raise CircuitError("GHZ needs at least 2 qubits")
    circuit = Circuit(n_qubits, n_qubits, name=name or f"GHZ{n_qubits}")
    circuit.h(0)
    for q in range(n_qubits - 1):
        circuit.cx(q, q + 1)
    circuit.measure_all()
    return circuit


def ghz_mirror(n_qubits: int, name: str = "") -> Circuit:
    """GHZ preparation followed by its inverse (mirror benchmark).

    Prepares the n-qubit GHZ state, uncomputes it, and measures: the
    ideal outcome is deterministically all zeros, so any deviation is
    noise — the standard mirror-circuit trick for benchmarking at
    sizes where verifying a nontrivial output is itself intractable.
    """
    if n_qubits < 2:
        raise CircuitError("GHZ needs at least 2 qubits")
    circuit = Circuit(n_qubits, n_qubits,
                      name=name or f"GHZ{n_qubits}m")
    circuit.h(0)
    for q in range(n_qubits - 1):
        circuit.cx(q, q + 1)
    for q in reversed(range(n_qubits - 1)):
        circuit.cx(q, q + 1)
    circuit.h(0)
    circuit.measure_all()
    return circuit


def repetition_code(distance: int, rounds: int = 1,
                    name: str = "") -> Circuit:
    """Bit-flip repetition-code syndrome extraction (EC-style rounds).

    *distance* data qubits start in ``|0...0>``; each round entangles
    ``distance - 1`` **fresh** ancillas with neighboring data pairs
    (two CNOTs each, surface-code-style parity checks) and measures
    them. Fresh ancillas per round keep every measurement terminal —
    the executor's measurement model — while preserving the circuit
    shape of repeated stabilizer extraction. A final data measurement
    closes the circuit; with no noise, every classical bit is 0.

    Total qubits: ``distance + rounds * (distance - 1)``.
    """
    if distance < 2:
        raise CircuitError("repetition code needs distance >= 2")
    if rounds < 1:
        raise CircuitError("need at least one syndrome round")
    n_ancillas = rounds * (distance - 1)
    n_qubits = distance + n_ancillas
    circuit = Circuit(n_qubits, n_qubits,
                      name=name or f"Rep{distance}x{rounds}")
    for r in range(rounds):
        base = distance + r * (distance - 1)
        for j in range(distance - 1):
            ancilla = base + j
            circuit.cx(j, ancilla)
            circuit.cx(j + 1, ancilla)
        circuit.barrier()
        for j in range(distance - 1):
            circuit.measure(base + j)
    for q in range(distance):
        circuit.measure(q)
    return circuit


def ghz12() -> Circuit:
    """12-qubit GHZ mirror — small enough for dense cross-checks."""
    return ghz_mirror(12, name="GHZ12")


def ghz60() -> Circuit:
    """60-qubit GHZ mirror (stabilizer-tier; dense engines refuse)."""
    return ghz_mirror(60, name="GHZ60")


def ghz100() -> Circuit:
    """100-qubit GHZ mirror — the headline large-n scenario."""
    return ghz_mirror(100, name="GHZ100")


def bv64() -> Circuit:
    """Bernstein-Vazirani on 64 data qubits (65 with the ancilla).

    BV is already Clifford (H/X/CNOT only); this instance scales the
    Table-2 family into stabilizer territory with the same weight-3
    hidden string construction.
    """
    from repro.programs.bv import _weight3_string, bernstein_vazirani

    return bernstein_vazirani(_weight3_string(64), name="BV64")


def rep49() -> Circuit:
    """Distance-13 repetition code, 3 syndrome rounds (49 qubits)."""
    return repetition_code(13, rounds=3, name="REP49")
