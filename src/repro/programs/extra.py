"""Extra benchmark programs beyond Table 2.

GHZ and W state preparation — standard NISQ-era acceptance tests with
*non-deterministic* ideal outputs, exercising the executor's
distribution-overlap scoring path (the Table-2 programs are all
deterministic). Useful as additional workloads for the compiler
comparisons and as examples of the library's general applicability.
"""

from __future__ import annotations

import math
from typing import Dict, Set

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit


def ghz(n: int, name: str = "") -> Circuit:
    """GHZ state preparation: (|0...0> + |1...1>)/sqrt(2), measured.

    Ideal outcome distribution: all-zeros and all-ones, half each.
    """
    if n < 2:
        raise CircuitError("GHZ needs at least 2 qubits")
    circuit = Circuit(n, n, name=name or f"GHZ{n}")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    circuit.measure_all()
    return circuit


def ghz_ideal_distribution(n: int) -> Dict[str, float]:
    """The exact outcome distribution of :func:`ghz`."""
    return {"0" * n: 0.5, "1" * n: 0.5}


def ghz_support(n: int) -> Set[str]:
    """Outcomes with non-zero ideal probability."""
    return set(ghz_ideal_distribution(n))


def _append_cry(circuit: Circuit, theta: float, control: int,
                target: int) -> None:
    """Controlled-RY via 2 CNOTs (exact for any angle)."""
    circuit.ry(theta / 2.0, target)
    circuit.cx(control, target)
    circuit.ry(-theta / 2.0, target)
    circuit.cx(control, target)


def w_state(n: int, name: str = "") -> Circuit:
    """W state preparation: uniform superposition of weight-1 strings.

    Uses the amplitude-splitting cascade: after X on qubit 0, each step
    i moves the remaining excitation amplitude one qubit down with a
    controlled-RY of angle ``2 arccos(sqrt(1/(n-i)))`` followed by a
    CNOT back, leaving 1/sqrt(n) amplitude on each one-hot outcome.
    """
    if n < 2:
        raise CircuitError("W state needs at least 2 qubits")
    circuit = Circuit(n, n, name=name or f"W{n}")
    circuit.x(0)
    for i in range(n - 1):
        theta = 2.0 * math.acos(math.sqrt(1.0 / (n - i)))
        _append_cry(circuit, theta, i, i + 1)
        circuit.cx(i + 1, i)
    circuit.measure_all()
    return circuit


def w_ideal_distribution(n: int) -> Dict[str, float]:
    """The exact outcome distribution of :func:`w_state`."""
    out = {}
    for i in range(n):
        bits = ["0"] * n
        bits[i] = "1"
        out["".join(bits)] = 1.0 / n
    return out


def w_support(n: int) -> Set[str]:
    """Outcomes with non-zero ideal probability."""
    return set(w_ideal_distribution(n))
