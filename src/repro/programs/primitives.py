"""Shared circuit-construction primitives for the benchmark programs.

These are the decompositions ScaffCC applies before handing the IR to the
backend: Toffoli into the standard 6-CNOT Clifford+T network, the
relative-phase (Margolus) Toffoli into 3 CNOTs, controlled-phase into
CNOT + RZ, and SWAP into 3 CNOTs.
"""

from __future__ import annotations

import math

from repro.ir.circuit import Circuit


def append_toffoli(circuit: Circuit, a: int, b: int, c: int) -> Circuit:
    """Standard 6-CNOT, 9-single-qubit Toffoli (controls *a*, *b*; target *c*)."""
    circuit.h(c)
    circuit.cx(b, c)
    circuit.tdg(c)
    circuit.cx(a, c)
    circuit.t(c)
    circuit.cx(b, c)
    circuit.tdg(c)
    circuit.cx(a, c)
    circuit.t(b)
    circuit.t(c)
    circuit.h(c)
    circuit.cx(a, b)
    circuit.t(a)
    circuit.tdg(b)
    circuit.cx(a, b)
    return circuit


def append_peres(circuit: Circuit, a: int, b: int, c: int) -> Circuit:
    """Peres gate: |a,b,c> -> |a, a XOR b, c XOR ab| — 5 CNOTs.

    Equals Toffoli(a,b,c) followed by CNOT(a,b); the trailing CNOT of the
    Toffoli decomposition cancels, leaving 5 CNOTs.
    """
    circuit.h(c)
    circuit.cx(b, c)
    circuit.tdg(c)
    circuit.cx(a, c)
    circuit.t(c)
    circuit.cx(b, c)
    circuit.tdg(c)
    circuit.cx(a, c)
    circuit.t(b)
    circuit.t(c)
    circuit.h(c)
    circuit.cx(a, b)
    circuit.t(a)
    circuit.tdg(b)
    return circuit


def append_margolus(circuit: Circuit, a: int, b: int, c: int,
                    inverse: bool = False) -> Circuit:
    """Relative-phase (Margolus) Toffoli — 3 CNOTs, 4 RY rotations.

    Acts as CCX on computational-basis states (exactly what classical
    arithmetic benchmarks need) with interaction edges (b,c) and (a,c)
    only, which keeps the program graph triangle-free.
    """
    # The sequence is its own inverse on basis states; the flag is kept
    # for call-site readability.
    del inverse
    theta = math.pi / 4.0
    circuit.ry(theta, c)
    circuit.cx(b, c)
    circuit.ry(theta, c)
    circuit.cx(a, c)
    circuit.ry(-theta, c)
    circuit.cx(b, c)
    circuit.ry(-theta, c)
    return circuit


def append_cphase(circuit: Circuit, theta: float, a: int, b: int) -> Circuit:
    """Controlled-phase diag(1,1,1,e^{i theta}) via 2 CNOTs + 3 RZ."""
    circuit.rz(theta / 2.0, a)
    circuit.cx(a, b)
    circuit.rz(-theta / 2.0, b)
    circuit.cx(a, b)
    circuit.rz(theta / 2.0, b)
    return circuit


def append_swap(circuit: Circuit, a: int, b: int) -> Circuit:
    """SWAP as 3 CNOTs (the hardware expansion the paper assumes)."""
    circuit.cx(a, b)
    circuit.cx(b, a)
    circuit.cx(a, b)
    return circuit
