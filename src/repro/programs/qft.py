"""Quantum Fourier Transform benchmark (QFT2 in the paper).

To obtain a deterministic correct answer on hardware (the paper scores
runs by fraction-correct), the benchmark prepares the uniform
superposition H^n |0> and applies the inverse QFT: since
QFT |0...0> = H^n |0...0>, the ideal outcome is exactly |0...0>.
The gate inventory matches a plain QFT — Hadamards, controlled-phase
rotations (2 CNOTs + 3 RZ each) and the final reversal SWAPs (3 CNOTs
each) — so QFT2 lands on Table 2's 5-CNOT count.
"""

from __future__ import annotations

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit
from repro.programs.primitives import append_cphase, append_swap


def append_qft(circuit: Circuit, qubits, inverse: bool = False) -> Circuit:
    """Append a (possibly inverse) QFT over *qubits* to *circuit*.

    Controlled phases are decomposed into the IR gate set; the bit
    reversal is realized with explicit SWAP macros as on hardware.
    """
    qs = list(qubits)
    n = len(qs)
    sign = -1.0 if inverse else 1.0

    def rotations():
        for j in range(n):
            yield ("h", j, None, None)
            for k in range(j + 1, n):
                import math
                yield ("cp", k, j, sign * math.pi / (2 ** (k - j)))

    ops = list(rotations())
    if inverse:
        for i in range(n // 2):
            append_swap(circuit, qs[i], qs[n - 1 - i])
        ops = list(reversed(ops))
    for kind, a, b, theta in ops:
        if kind == "h":
            circuit.h(qs[a])
        else:
            append_cphase(circuit, theta, qs[a], qs[b])
    if not inverse:
        for i in range(n // 2):
            append_swap(circuit, qs[i], qs[n - 1 - i])
    return circuit


def qft_roundtrip(n: int, name: str = "") -> Circuit:
    """H^n followed by inverse QFT — deterministic |0...0> outcome."""
    if n < 1:
        raise CircuitError("QFT needs at least one qubit")
    circuit = Circuit(n, n, name=name or f"QFT{n}")
    for q in range(n):
        circuit.h(q)
    append_qft(circuit, range(n), inverse=True)
    circuit.measure_all()
    return circuit


def qft2() -> Circuit:
    """The paper's 2-qubit QFT benchmark (5 CNOTs)."""
    return qft_roundtrip(2, name="QFT")


def qft_expected_output(n: int = 2) -> str:
    """Deterministic outcome of :func:`qft_roundtrip` (all zeros)."""
    return "0" * n
