"""Hidden-shift benchmark family (HS2, HS4, HS6 in the paper).

Uses the standard hidden-shift circuit for the Maiorana-McFarland bent
function f(x, y) = x . y over n/2-bit halves: the shifted-function oracle
is H^n X^s CZ-layer X^s H^n, followed by the dual oracle CZ-layer and a
final H^n. The measured register deterministically equals the shift *s*.
Each CZ contributes one CNOT (CZ = H . CX . H on the target), so an
n-qubit instance has n CNOTs — 2, 4, 6 for HS2/4/6 as in Table 2.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit


def _append_cz(circuit: Circuit, a: int, b: int) -> None:
    circuit.h(b)
    circuit.cx(a, b)
    circuit.h(b)


def hidden_shift(shift: Sequence[int], name: str = "") -> Circuit:
    """Build a hidden-shift circuit for the bit string *shift*.

    Args:
        shift: Bits of the hidden shift; length must be even.

    Returns:
        Circuit on ``len(shift)`` qubits measuring all qubits; the ideal
        outcome is exactly *shift*.
    """
    s = list(shift)
    n = len(s)
    if n == 0 or n % 2 != 0:
        raise CircuitError("hidden shift needs a non-empty even-length string")
    if any(bit not in (0, 1) for bit in s):
        raise CircuitError("shift must be a 0/1 sequence")
    half = n // 2
    circuit = Circuit(n, n, name=name or f"HS{n}")

    for q in range(n):
        circuit.h(q)
    for q, bit in enumerate(s):
        if bit:
            circuit.x(q)
    for i in range(half):
        _append_cz(circuit, i, i + half)
    for q, bit in enumerate(s):
        if bit:
            circuit.x(q)
    for q in range(n):
        circuit.h(q)
    for i in range(half):
        _append_cz(circuit, i, i + half)
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        circuit.measure(q)
    return circuit


#: Shifts chosen so gate totals land on Table 2's 16/28/42 counts
#: (weight 2, 2 and 3 respectively).
_SHIFTS = {
    "HS2": [1, 1],
    "HS4": [1, 0, 1, 0],
    "HS6": [1, 1, 0, 1, 0, 0],
}


def hs2() -> Circuit:
    """Hidden shift on 2 qubits, shift 11."""
    return hidden_shift(_SHIFTS["HS2"], name="HS2")


def hs4() -> Circuit:
    """Hidden shift on 4 qubits, weight-2 shift."""
    return hidden_shift(_SHIFTS["HS4"], name="HS4")


def hs6() -> Circuit:
    """Hidden shift on 6 qubits, weight-3 shift."""
    return hidden_shift(_SHIFTS["HS6"], name="HS6")


def hs_expected_output(circuit_name: str) -> str:
    """Deterministic outcome (cbit 0 first) for an HS instance."""
    if circuit_name not in _SHIFTS:
        raise CircuitError(f"unknown HS instance {circuit_name!r}")
    return "".join(str(b) for b in _SHIFTS[circuit_name])
