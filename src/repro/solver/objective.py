"""Objective functions for the branch-and-bound engine.

The paper's reliability objective (Eq. 12) is a weighted sum of per-gate
log-reliabilities, which decomposes into unary terms (readout on one
program qubit) and pairwise terms (a CNOT between two program qubits).
:class:`SumObjective` exploits that decomposition to compute tight
admissible bounds during search. :class:`CallableObjective` wraps
non-decomposable objectives such as schedule makespan.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import SolverError
from repro.solver.model import Assignment, Objective


class Term:
    """One additive objective term (maximization convention)."""

    scope: tuple

    def value(self, assignment: Assignment) -> float:
        raise NotImplementedError

    def bound(self, assignment: Assignment, domains: Dict[str, set]) -> float:
        """Optimistic score given partial assignment and live domains."""
        raise NotImplementedError


class UnaryTerm(Term):
    """Score depending on one variable, e.g. a readout reliability term.

    Args:
        name: Variable name.
        score: ``score(value) -> float``.
        vector: Optional dense score table indexed by raw value (valid
            when values are small non-negative ints, as hardware-qubit
            ids are). The vectorized kernel slices it directly instead
            of probing ``score`` once per value.
    """

    def __init__(self, name: str, score: Callable[[int], float],
                 vector=None) -> None:
        self.scope = (name,)
        self.score = score
        self.vector = vector
        self._cache: Dict[int, float] = {}

    def dense_vector(self):
        """Dense per-value score table, or ``None`` (probe fallback)."""
        return self.vector

    def _score(self, value: int) -> float:
        if value not in self._cache:
            self._cache[value] = self.score(value)
        return self._cache[value]

    def value(self, assignment: Assignment) -> float:
        return self._score(assignment[self.scope[0]])

    def bound(self, assignment: Assignment, domains: Dict[str, set]) -> float:
        name = self.scope[0]
        if name in assignment:
            return self._score(assignment[name])
        if not domains[name]:
            raise SolverError(f"empty domain for {name!r} while bounding")
        return max(self._score(v) for v in domains[name])


class PairTerm(Term):
    """Score depending on two variables, e.g. one CNOT's reliability.

    Args:
        a: First variable name.
        b: Second variable name.
        score: ``score(value_a, value_b) -> float``.
        matrix: Optional dense score table with ``matrix[va, vb]``
            indexed by raw values (valid when values are small
            non-negative ints). The vectorized kernel slices it instead
            of probing ``score`` per value pair.
    """

    def __init__(self, a: str, b: str,
                 score: Callable[[int, int], float],
                 matrix=None) -> None:
        self.scope = (a, b)
        self.score = score
        self.matrix = matrix
        self._cache: Dict[tuple, float] = {}

    def dense_matrix(self):
        """Dense score table, or ``None`` (probe fallback)."""
        return self.matrix

    def _score(self, va: int, vb: int) -> float:
        key = (va, vb)
        if key not in self._cache:
            self._cache[key] = self.score(va, vb)
        return self._cache[key]

    def value(self, assignment: Assignment) -> float:
        return self._score(assignment[self.scope[0]],
                           assignment[self.scope[1]])

    def bound(self, assignment: Assignment, domains: Dict[str, set]) -> float:
        a, b = self.scope
        a_vals = [assignment[a]] if a in assignment else list(domains[a])
        b_vals = [assignment[b]] if b in assignment else list(domains[b])
        if not a_vals or not b_vals:
            raise SolverError("empty domain while bounding pair term")
        if a in assignment and b in assignment:
            return self._score(a_vals[0], b_vals[0])
        best = -float("inf")
        for va in a_vals:
            for vb in b_vals:
                if va == vb:
                    continue  # mapping variables are all-different
                s = self._score(va, vb)
                if s > best:
                    best = s
        if best == -float("inf"):
            # Degenerate single-value domains colliding; let constraints
            # reject the branch rather than the bound.
            return self._score(a_vals[0], b_vals[0])
        return best


class SumObjective(Objective):
    """Sum of decomposable terms with per-term admissible bounds."""

    def __init__(self, terms: Sequence[Term]) -> None:
        self.terms = list(terms)

    def value(self, assignment: Assignment) -> float:
        return sum(t.value(assignment) for t in self.terms)

    def bound(self, assignment: Assignment, domains: Dict[str, set]) -> float:
        return sum(t.bound(assignment, domains) for t in self.terms)


class CallableObjective(Objective):
    """Wraps a non-decomposable objective.

    Args:
        value_fn: Complete-assignment objective.
        bound_fn: Optimistic bound for partial assignments; when omitted
            the bound is +inf (search degrades to exhaustive + incumbent
            pruning at leaves).
    """

    def __init__(self, value_fn: Callable[[Assignment], float],
                 bound_fn: Optional[
                     Callable[[Assignment, Dict[str, set]], float]] = None
                 ) -> None:
        self._value = value_fn
        self._bound = bound_fn

    def value(self, assignment: Assignment) -> float:
        return self._value(assignment)

    def bound(self, assignment: Assignment, domains: Dict[str, set]) -> float:
        if self._bound is None:
            return float("inf")
        return self._bound(assignment, domains)
