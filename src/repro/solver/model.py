"""Finite-domain constraint-optimization models.

This package is the repo's stand-in for the Z3 SMT solver the paper uses
(see DESIGN.md): a model holds integer variables with explicit finite
domains, constraints, and a maximization objective; the branch-and-bound
engine in :mod:`repro.solver.bnb` searches for a provably optimal
assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SolverError

Assignment = Dict[str, int]


@dataclass(frozen=True)
class Variable:
    """An integer decision variable over an explicit finite domain."""

    name: str
    domain: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.domain:
            raise SolverError(f"variable {self.name!r} has empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise SolverError(f"variable {self.name!r} has duplicate values")


class Constraint:
    """Base class for constraints.

    Subclasses implement :meth:`is_satisfied` over complete assignments
    and may override :meth:`prune` to perform forward-checking after a
    variable is fixed.
    """

    #: Names of the variables this constraint mentions.
    scope: Tuple[str, ...] = ()

    def is_satisfied(self, assignment: Assignment) -> bool:
        """Check the constraint on a complete assignment."""
        raise NotImplementedError

    def check_partial(self, assignment: Assignment) -> bool:
        """Check on a partial assignment; default checks only when the
        full scope is assigned."""
        if all(v in assignment for v in self.scope):
            return self.is_satisfied(assignment)
        return True

    def prune(self, var: str, value: int, assignment: Assignment,
              domains: Dict[str, set]) -> Optional[List[Tuple[str, int]]]:
        """Forward-check after ``var := value``.

        Returns:
            List of (variable, removed value) prunings applied to
            *domains*, or ``None`` if a domain wiped out (dead end).
            The solver undoes the prunings on backtrack.
        """
        return []


class Objective:
    """Base class for maximization objectives."""

    def value(self, assignment: Assignment) -> float:
        """Objective value of a complete assignment."""
        raise NotImplementedError

    def bound(self, assignment: Assignment,
              domains: Dict[str, set]) -> float:
        """Optimistic (admissible) upper bound for any completion of the
        partial *assignment* given the remaining *domains*."""
        raise NotImplementedError


@dataclass
class Model:
    """A constraint-optimization problem.

    Attributes:
        variables: Decision variables in branching order preference.
        constraints: Constraints over those variables.
        objective: Maximization objective (``None`` = satisfaction only).
    """

    variables: List[Variable] = field(default_factory=list)
    constraints: List[Constraint] = field(default_factory=list)
    objective: Optional[Objective] = None

    def add_variable(self, name: str, domain: Sequence[int]) -> Variable:
        """Create and register a variable; names must be unique."""
        if any(v.name == name for v in self.variables):
            raise SolverError(f"duplicate variable name {name!r}")
        var = Variable(name=name, domain=tuple(domain))
        self.variables.append(var)
        return var

    def add_constraint(self, constraint: Constraint) -> None:
        known = {v.name for v in self.variables}
        missing = [n for n in constraint.scope if n not in known]
        if missing:
            raise SolverError(f"constraint references unknown vars {missing}")
        self.constraints.append(constraint)

    def variable(self, name: str) -> Variable:
        for v in self.variables:
            if v.name == name:
                return v
        raise SolverError(f"no variable named {name!r}")

    def validate(self, assignment: Assignment) -> bool:
        """Whether a complete assignment satisfies every constraint."""
        if set(assignment) != {v.name for v in self.variables}:
            return False
        for v in self.variables:
            if assignment[v.name] not in v.domain:
                return False
        return all(c.is_satisfied(assignment) for c in self.constraints)
