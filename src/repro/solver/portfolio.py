"""Deterministic portfolio branch-and-bound: root splitting across processes.

The vectorized kernel's exact-comparison search has a useful invariance:
its answer is the first leaf in canonical exploration order attaining
the float maximum, *independent of the incumbent trajectory*. That makes
the top of the tree embarrassingly parallel without giving up
reproducibility: each depth-1/depth-2 prefix (a "subtree", ranked by
the shared plan in lexicographic first-visit order — candidate
ordering is incumbent-independent, so every process derives the same
plan) can be solved by any process in any order, with incumbent values
exchanged only as pruning *floors*, and the merge rule —

* keep worker reports strictly better than the warm start,
* take the maximum value,
* break ties toward the lowest subtree rank,

— reconstructs the serial engine's assignment bit-for-bit. Floors prune
strictly-worse subtrees only (``bound < floor``) and never suppress an
equal-value leaf, so a low-rank subtree that merely *ties* a
higher-rank foreign incumbent still reports, exactly as the serial scan
would have preferred it.

Workers are plain processes on the sweep pool's multiprocessing context
(fork-preferring, see :func:`repro.runtime.pool.pool_context`), wired
with duplex pipes: the parent broadcasts the best known value after
every finished subtree ("batch boundary"), workers poll it every
:data:`repro.solver.bounds.FLOOR_POLL_NODES` nodes mid-search. Any
worker failure degrades to the serial engine — correctness never
depends on the pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.solver.bnb import (
    BranchAndBoundSolver,
    SolveResult,
    SolverStats,
    seed_assignment_columns,
)
from repro.solver.bounds import VectorSearch, compile_assignment
from repro.solver.model import Assignment, Model

#: Parent-side wait granularity while workers search (seconds).
_POLL_SECONDS = 0.05


def _worker_main(conn, mats, class_min, tasks, warm_cols, warm_value,
                 time_limit, node_limit, start) -> None:
    """Solve the assigned root subtrees, streaming incumbent progress.

    Args:
        tasks: ``(global_rank, prefix)`` pairs, rank-ascending —
            each prefix a depth-1 or depth-2 column tuple from
            :meth:`~repro.solver.bounds.VectorSearch.prefix_tasks`.
        warm_cols: Canonicalized warm-start columns (or ``None``).
        start: Parent's ``perf_counter`` origin so the wall budget is
            shared, not per-process.
    """
    def poll_floor() -> Optional[float]:
        floor = None
        while conn.poll():
            msg = conn.recv()
            if msg[0] == "floor":
                floor = msg[1] if floor is None else max(floor, msg[1])
        return floor

    search = VectorSearch(mats, time_limit=time_limit,
                          node_limit=node_limit, start=start,
                          floor_poll=poll_floor)
    search.class_min = class_min
    if warm_cols is not None:
        search.seed(np.asarray(warm_cols, dtype=np.intp), warm_value)
    completed = True
    try:
        for rank, path in tasks:
            floor = poll_floor()
            if floor is not None and floor > search.floor:
                search.floor = floor
            ok = search.run(root_cols=[tuple(path)], rank_base=int(rank))
            value = (search.best_value if search.best_cols is not None
                     else None)
            conn.send(("progress", rank, value))
            if not ok:
                completed = False
                break
        cols = (None if search.best_cols is None
                else [int(c) for c in search.best_cols])
        conn.send(("done", search.best_value, cols, search.best_rank,
                   search.nodes, search.prunes, search.incumbents,
                   completed, search.truncated))
    except Exception as exc:  # surfaced parent-side as a fallback trigger
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class PortfolioSolver:
    """Root-splitting portfolio around the vectorized kernel.

    Falls back to the serial :class:`BranchAndBoundSolver` whenever the
    model is not assignment-shaped, fewer than two root subtrees exist,
    or the pool misbehaves — the answer is bit-identical either way
    (pinned by tests), so callers never need to care which path ran.

    Attributes:
        workers: Maximum worker processes (capped by subtree count).
        time_limit: Shared wall-clock budget in seconds.
        node_limit: Per-worker node budget (the serial engine's global
            budget has no exact parallel equivalent).
    """

    workers: int = 2
    time_limit: Optional[float] = None
    node_limit: Optional[int] = None

    def solve(self, model: Model,
              initial: Optional[Assignment] = None,
              symmetries: Optional[Sequence[Sequence[int]]] = None
              ) -> SolveResult:
        serial = BranchAndBoundSolver(time_limit=self.time_limit,
                                      node_limit=self.node_limit)
        if self.workers < 2:
            return serial.solve(model, initial, symmetries)
        mats = compile_assignment(model)
        if mats is None:
            return serial.solve(model, initial, symmetries)

        start = time.perf_counter()
        plan = VectorSearch(mats, start=start)
        if symmetries:
            plan.enable_symmetry(symmetries)
        plan.enable_dominance()
        seed_assignment_columns(plan, model, mats, initial)
        prefixes = plan.prefix_tasks()
        n_workers = min(self.workers, len(prefixes))
        if n_workers < 2:
            return serial.solve(model, initial, symmetries)

        try:
            outcome = self._run_pool(mats, plan, prefixes, n_workers,
                                     start)
        except Exception:
            outcome = None
        if outcome is None:  # pool failure: the serial proof is the answer
            return serial.solve(model, initial, symmetries)
        return self._merge(model, mats, plan, prefixes, outcome, start)

    # ------------------------------------------------------------------
    def _run_pool(self, mats, plan: VectorSearch,
                  prefixes: List[Tuple[int, ...]], n_workers: int,
                  start: float) -> Optional[List[tuple]]:
        from repro.runtime.pool import pool_context

        ctx = pool_context()
        warm_cols = (None if plan.best_cols is None
                     else [int(c) for c in plan.best_cols])
        tasks: List[List[Tuple[int, Tuple[int, ...]]]] = \
            [[] for _ in range(n_workers)]
        for rank, prefix in enumerate(prefixes):
            tasks[rank % n_workers].append((rank, tuple(prefix)))

        workers = []
        for w in range(n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, mats, plan.class_min, tasks[w],
                      warm_cols, plan.best_value, self.time_limit,
                      self.node_limit, start),
                daemon=True)
            proc.start()
            child_conn.close()
            workers.append((proc, parent_conn))

        floor = -np.inf
        done: List[Optional[tuple]] = [None] * n_workers
        failed = False
        deadline = (None if self.time_limit is None
                    else start + self.time_limit + 30.0)
        try:
            pending = set(range(n_workers))
            while pending:
                if deadline is not None and time.perf_counter() > deadline:
                    failed = True  # a worker wedged past its own budget
                    break
                from multiprocessing.connection import wait as _wait
                ready = _wait([workers[w][1] for w in pending],
                              timeout=_POLL_SECONDS)
                for conn in ready:
                    w = next(i for i in pending
                             if workers[i][1] is conn)
                    try:
                        msg = conn.recv()
                    except EOFError:
                        failed = True
                        pending.discard(w)
                        continue
                    if msg[0] == "progress":
                        value = msg[2]
                        if value is not None and value > floor:
                            floor = value
                            for i in pending:
                                if i != w:
                                    try:
                                        workers[i][1].send(("floor", floor))
                                    except (BrokenPipeError, OSError):
                                        pass
                    elif msg[0] == "done":
                        done[w] = msg
                        pending.discard(w)
                    else:  # "error"
                        failed = True
                        pending.discard(w)
        finally:
            for proc, conn in workers:
                conn.close()
            for proc, conn in workers:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
                    failed = True
        if failed or any(d is None for d in done):
            return None
        return done  # type: ignore[return-value]

    def _merge(self, model: Model, mats, plan: VectorSearch,
               prefixes: List[Tuple[int, ...]], done: List[tuple],
               start: float) -> SolveResult:
        warm_value = plan.best_value
        warm_cols = plan.best_cols
        best_value = warm_value
        best_cols = warm_cols
        best_rank: Optional[int] = None
        nodes = prunes = 0
        incumbents = plan.incumbents
        completed = True
        truncated = False
        for msg in done:
            (_, value, cols, rank, w_nodes, w_prunes, w_incumbents,
             w_completed, w_truncated) = msg
            nodes += w_nodes
            prunes += w_prunes
            incumbents += max(0, w_incumbents - plan.incumbents)
            completed = completed and w_completed
            truncated = truncated or w_truncated
            if cols is None or rank is None:
                continue  # nothing beyond the warm start in that worker
            if value > best_value or (value == best_value
                                      and best_rank is not None
                                      and rank < best_rank):
                best_value = value
                best_cols = np.asarray(cols, dtype=np.intp)
                best_rank = rank

        assignment = None
        objective = None
        if best_cols is not None:
            assignment = {name: int(mats.values[c])
                          for name, c in zip(mats.var_names, best_cols)}
            objective = best_value
        stats = SolverStats(engine="portfolio", nodes=nodes, prunes=prunes,
                            incumbents=incumbents, workers=len(done),
                            subtrees=len(prefixes),
                            symmetries=len(plan.symmetry_cols))
        return SolveResult(
            assignment=assignment,
            objective=objective,
            optimal=completed and not truncated,
            nodes=nodes,
            elapsed=time.perf_counter() - start,
            timed_out=not completed,
            stats=stats,
        )
