"""Finite-domain constraint optimization (the repo's SMT-solver substrate)."""

from repro.solver.bnb import BranchAndBoundSolver, SolveResult, SolverStats
from repro.solver.bounds import AssignmentMatrices, compile_assignment
from repro.solver.constraints import (
    AllDifferent,
    BinaryPredicate,
    LinearLE,
    TableConstraint,
    UnaryPredicate,
)
from repro.solver.model import Assignment, Constraint, Model, Objective, Variable
from repro.solver.objective import (
    CallableObjective,
    PairTerm,
    SumObjective,
    Term,
    UnaryTerm,
)

__all__ = [
    "AllDifferent",
    "Assignment",
    "AssignmentMatrices",
    "compile_assignment",
    "SolverStats",
    "BinaryPredicate",
    "BranchAndBoundSolver",
    "CallableObjective",
    "Constraint",
    "LinearLE",
    "Model",
    "Objective",
    "PairTerm",
    "SolveResult",
    "SumObjective",
    "TableConstraint",
    "Term",
    "UnaryPredicate",
    "UnaryTerm",
    "Variable",
]
