"""Branch-and-bound search over finite-domain models.

Depth-first search with forward checking and admissible objective
pruning. On paper-scale mapping problems (2-8 program qubits on a
16-qubit machine) it proves optimality in well under a second; like the
paper's Z3 runs, it blows up super-polynomially as programs grow, which
is exactly the Fig.-11 behavior.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SolverError
from repro.solver.model import Assignment, Model


@dataclass
class SolveResult:
    """Outcome of a branch-and-bound run.

    Attributes:
        assignment: Best complete assignment found (``None`` if none).
        objective: Its objective value (``None`` for pure satisfaction).
        optimal: Whether the search space was exhausted (proof of
            optimality / infeasibility).
        nodes: Search-tree nodes expanded.
        elapsed: Wall-clock seconds spent.
        timed_out: Whether the time limit interrupted the search.
    """

    assignment: Optional[Assignment]
    objective: Optional[float]
    optimal: bool
    nodes: int
    elapsed: float
    timed_out: bool

    @property
    def feasible(self) -> bool:
        return self.assignment is not None


@dataclass
class BranchAndBoundSolver:
    """Configurable DFS branch-and-bound engine.

    Attributes:
        time_limit: Wall-clock budget in seconds (``None`` = unlimited).
        node_limit: Maximum nodes to expand (``None`` = unlimited).
        first_solution_only: Stop at the first feasible assignment.
    """

    time_limit: Optional[float] = None
    node_limit: Optional[int] = None
    first_solution_only: bool = False

    def solve(self, model: Model,
              initial: Optional[Assignment] = None) -> SolveResult:
        """Maximize the model's objective (or find any solution).

        Args:
            model: The problem to solve.
            initial: Optional warm-start assignment; if feasible it seeds
                the incumbent so pruning starts immediately.
        """
        if not model.variables:
            raise SolverError("model has no variables")
        start = time.perf_counter()
        search = _Search(model, self, start)
        if initial is not None and model.validate(initial):
            search.best = dict(initial)
            if model.objective is not None:
                search.best_value = model.objective.value(initial)
        domains = {v.name: set(v.domain) for v in model.variables}
        try:
            search.run({}, domains)
            timed_out = False
        except _TimeUp:
            timed_out = True
        elapsed = time.perf_counter() - start
        return SolveResult(
            assignment=search.best,
            objective=search.best_value if model.objective else None,
            optimal=not timed_out and not search.truncated,
            nodes=search.nodes,
            elapsed=elapsed,
            timed_out=timed_out,
        )


class _TimeUp(Exception):
    """Internal: raised when the time budget is exhausted."""


class _Search:
    """Mutable state of one branch-and-bound run."""

    def __init__(self, model: Model, config: BranchAndBoundSolver,
                 start: float) -> None:
        self.model = model
        self.config = config
        self.start = start
        self.nodes = 0
        self.best: Optional[Assignment] = None
        self.best_value = -float("inf")
        self.truncated = False
        # Constraints indexed by variable for fast partial checks.
        self.by_var: Dict[str, list] = {v.name: [] for v in model.variables}
        for c in model.constraints:
            for name in c.scope:
                self.by_var[name].append(c)

    def run(self, assignment: Assignment, domains: Dict[str, set],
            bound: Optional[float] = None) -> None:
        """Expand one node.

        Args:
            bound: The admissible objective bound the parent's value
                probe already computed for this assignment (over the
                parent's pre-pruning domains — a superset, so still
                admissible here). ``None`` at the root or when the
                parent had no probe; computed fresh then.
        """
        self._tick()
        unassigned = [v.name for v in self.model.variables
                      if v.name not in assignment]
        if not unassigned:
            self._record(assignment)
            return
        if self.model.objective is not None and self.best is not None:
            if bound is None:
                bound = self.model.objective.bound(assignment, domains)
            if bound <= self.best_value + 1e-12:
                return
        var = min(unassigned, key=lambda n: len(domains[n]))
        for value, child_bound in self._ordered_values(var, assignment,
                                                       domains):
            if (child_bound is not None and self.best is not None
                    and child_bound <= self.best_value + 1e-12):
                continue  # the probe already proves this subtree beaten
            assignment[var] = value
            if self._consistent(var, assignment):
                removed = self._forward_check(var, value, assignment, domains)
                if removed is not None:
                    self.run(assignment, domains, bound=child_bound)
                    for name, val in removed:
                        domains[name].add(val)
            del assignment[var]
            if self.best is not None and self.config.first_solution_only:
                return

    # ------------------------------------------------------------------
    def _ordered_values(self, var: str, assignment: Assignment,
                        domains: Dict[str, set]
                        ) -> List[Tuple[int, Optional[float]]]:
        """(value, probed bound) pairs, most promising value first.

        The probe's bound is memoized into the returned pairs so the
        child node prunes on it directly instead of recomputing the
        objective bound it just cost one evaluation per value to
        obtain.
        """
        values = sorted(domains[var])
        objective = self.model.objective
        if objective is None or len(values) <= 1:
            return [(v, None) for v in values]

        bounds: Dict[int, float] = {}
        for value in values:
            assignment[var] = value
            try:
                bounds[value] = objective.bound(assignment, domains)
            finally:
                del assignment[var]
        values.sort(key=bounds.__getitem__, reverse=True)
        return [(v, bounds[v]) for v in values]

    def _consistent(self, var: str, assignment: Assignment) -> bool:
        return all(c.check_partial(assignment) for c in self.by_var[var])

    def _forward_check(self, var: str, value: int, assignment: Assignment,
                       domains: Dict[str, set]
                       ) -> Optional[List[Tuple[str, int]]]:
        removed: List[Tuple[str, int]] = []
        for c in self.by_var[var]:
            result = c.prune(var, value, assignment, domains)
            if result is None:
                for name, val in removed:
                    domains[name].add(val)
                return None
            removed.extend(result)
        return removed

    def _record(self, assignment: Assignment) -> None:
        if self.model.objective is None:
            if self.best is None:
                self.best = dict(assignment)
            return
        value = self.model.objective.value(assignment)
        if value > self.best_value:
            self.best_value = value
            self.best = dict(assignment)

    def _tick(self) -> None:
        self.nodes += 1
        config = self.config
        if config.node_limit is not None and self.nodes > config.node_limit:
            self.truncated = True
            raise _TimeUp
        if config.time_limit is not None and self.nodes % 256 == 0:
            if time.perf_counter() - self.start > config.time_limit:
                raise _TimeUp
