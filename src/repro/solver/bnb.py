"""Branch-and-bound search over finite-domain models.

Depth-first search with forward checking and admissible objective
pruning. Assignment-shaped models (one AllDifferent over every variable
plus a decomposable sum objective — the paper's R-SMT* formulation)
are compiled to numpy cost matrices and solved by the vectorized kernel
in :mod:`repro.solver.bounds`, with topology-automorphism symmetry
breaking at the root and dominance pruning below it. Everything else
(callable objectives, exotic constraints, satisfaction problems) runs
on the generic per-value probing engine, which remains the semantic
reference. Both engines prove optimality; on paper-scale mapping
problems they finish in well under a second, and like the paper's Z3
runs they blow up super-polynomially as programs grow, which is exactly
the Fig.-11 behavior — the vector kernel just moves the wall.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.solver.bounds import VectorSearch, compile_assignment
from repro.solver.model import Assignment, Model


@dataclass
class SolverStats:
    """Search-effort counters surfaced through mapping metadata.

    Attributes:
        engine: ``"vector"``, ``"generic"``, or ``"portfolio"``.
        nodes: Search-tree nodes expanded.
        prunes: Subtrees cut by the admissible bound.
        incumbents: Times the best-known solution improved (the warm
            start counts as the first).
        workers: Processes that searched (1 for serial).
        subtrees: Root subtrees explored (portfolio bookkeeping).
        symmetries: Cost-invariant value permutations applied for root
            symmetry breaking (0 = no reduction).
    """

    engine: str = "generic"
    nodes: int = 0
    prunes: int = 0
    incumbents: int = 0
    workers: int = 1
    subtrees: int = 0
    symmetries: int = 0


@dataclass
class SolveResult:
    """Outcome of a branch-and-bound run.

    Attributes:
        assignment: Best complete assignment found (``None`` if none).
        objective: Its objective value (``None`` for pure satisfaction).
        optimal: Whether the search space was exhausted (proof of
            optimality / infeasibility).
        nodes: Search-tree nodes expanded.
        elapsed: Wall-clock seconds spent.
        timed_out: Whether the time limit interrupted the search.
        stats: Detailed search counters (engine, prunes, incumbents).
    """

    assignment: Optional[Assignment]
    objective: Optional[float]
    optimal: bool
    nodes: int
    elapsed: float
    timed_out: bool
    stats: Optional[SolverStats] = None

    @property
    def feasible(self) -> bool:
        return self.assignment is not None


@dataclass
class BranchAndBoundSolver:
    """Configurable DFS branch-and-bound engine.

    Attributes:
        time_limit: Wall-clock budget in seconds (``None`` = unlimited).
        node_limit: Maximum nodes to expand (``None`` = unlimited).
        first_solution_only: Stop at the first feasible assignment.
        engine: ``"auto"`` routes assignment-shaped models to the
            vectorized kernel and everything else to the generic
            engine; ``"generic"`` forces the reference engine (the
            speedup benchmarks pin vector-vs-generic on this knob);
            ``"vector"`` demands the kernel and raises if the model
            does not fit it.
    """

    time_limit: Optional[float] = None
    node_limit: Optional[int] = None
    first_solution_only: bool = False
    engine: str = "auto"

    def solve(self, model: Model,
              initial: Optional[Assignment] = None,
              symmetries: Optional[Sequence[Sequence[int]]] = None
              ) -> SolveResult:
        """Maximize the model's objective (or find any solution).

        Args:
            model: The problem to solve.
            initial: Optional warm-start assignment; if feasible it seeds
                the incumbent so pruning starts immediately.
            symmetries: Candidate value permutations (e.g. the
                topology's automorphisms). The vectorized kernel keeps
                only exact cost invariances among them and restricts
                the root variable to orbit representatives; the generic
                engine ignores them (it cannot verify invariance of an
                opaque objective).
        """
        if not model.variables:
            raise SolverError("model has no variables")
        if self.engine not in ("auto", "vector", "generic"):
            raise SolverError(f"unknown solver engine {self.engine!r}")
        start = time.perf_counter()
        mats = None
        if self.engine != "generic":
            mats = compile_assignment(model)
            if mats is None and self.engine == "vector":
                raise SolverError(
                    "model is not assignment-shaped; vector engine "
                    "cannot run it")
        if mats is not None:
            return self._solve_vector(model, mats, initial, symmetries,
                                      start)
        return self._solve_generic(model, initial, start)

    # ------------------------------------------------------------------
    def _solve_vector(self, model: Model, mats, initial, symmetries,
                      start: float) -> SolveResult:
        search = VectorSearch(
            mats, time_limit=self.time_limit, node_limit=self.node_limit,
            first_solution_only=self.first_solution_only, start=start)
        if symmetries:
            search.enable_symmetry(symmetries)
        search.enable_dominance()
        seed_assignment_columns(search, model, mats, initial)
        completed = search.run()
        elapsed = time.perf_counter() - start
        return vector_result(search, mats, completed, elapsed)

    def _solve_generic(self, model: Model, initial, start: float
                       ) -> SolveResult:
        search = _Search(model, self, start)
        if initial is not None and model.validate(initial):
            search.best = dict(initial)
            search.incumbents += 1
            if model.objective is not None:
                search.best_value = model.objective.value(initial)
        domains = {v.name: set(v.domain) for v in model.variables}
        try:
            search.run({}, domains)
            timed_out = False
        except _TimeUp:
            timed_out = True
        elapsed = time.perf_counter() - start
        stats = SolverStats(engine="generic", nodes=search.nodes,
                            prunes=search.prunes,
                            incumbents=search.incumbents)
        return SolveResult(
            assignment=search.best,
            objective=search.best_value if model.objective else None,
            optimal=not timed_out and not search.truncated,
            nodes=search.nodes,
            elapsed=elapsed,
            timed_out=timed_out,
            stats=stats,
        )


def seed_assignment_columns(search: VectorSearch, model: Model, mats,
                            initial: Optional[Assignment]) -> None:
    """Validate and seed a warm start into a vector search.

    Invalid warm starts are silently dropped (the search starts cold —
    the contract the mappers rely on). Valid ones are canonicalized
    through the active symmetry group so they live inside the
    symmetry-broken cone, then seeded with their exact objective value.
    """
    if initial is None or not model.validate(initial):
        return
    col_of = {int(v): c for c, v in enumerate(mats.values)}
    cols = np.array([col_of[initial[name]] for name in mats.var_names],
                    dtype=np.intp)
    if search.symmetry_cols:
        cols = mats.canonicalize(cols, search.symmetry_cols,
                                 search.root_var())
    seeded = {name: int(mats.values[c])
              for name, c in zip(mats.var_names, cols)}
    search.seed(cols, model.objective.value(seeded))


def vector_result(search: VectorSearch, mats, completed: bool,
                  elapsed: float, workers: int = 1,
                  subtrees: int = 0) -> SolveResult:
    """Package a finished vector search into a :class:`SolveResult`."""
    assignment = None
    objective = None
    if search.best_cols is not None:
        assignment = {name: int(mats.values[c])
                      for name, c in zip(mats.var_names, search.best_cols)}
        objective = search.best_value
    stats = SolverStats(engine="vector", nodes=search.nodes,
                        prunes=search.prunes,
                        incumbents=search.incumbents,
                        workers=workers, subtrees=subtrees,
                        symmetries=len(search.symmetry_cols))
    return SolveResult(
        assignment=assignment,
        objective=objective,
        optimal=completed and not search.truncated,
        nodes=search.nodes,
        elapsed=elapsed,
        timed_out=not completed,
        stats=stats,
    )


class _TimeUp(Exception):
    """Internal: raised when the time budget is exhausted."""


class _Search:
    """Mutable state of one generic branch-and-bound run."""

    def __init__(self, model: Model, config: BranchAndBoundSolver,
                 start: float) -> None:
        self.model = model
        self.config = config
        self.start = start
        self.nodes = 0
        self.prunes = 0
        self.incumbents = 0
        self.best: Optional[Assignment] = None
        self.best_value = -float("inf")
        self.truncated = False
        # Constraints indexed by variable for fast partial checks.
        self.by_var: Dict[str, list] = {v.name: [] for v in model.variables}
        for c in model.constraints:
            for name in c.scope:
                self.by_var[name].append(c)

    def run(self, assignment: Assignment, domains: Dict[str, set],
            bound: Optional[float] = None) -> None:
        """Expand one node.

        Args:
            bound: The admissible objective bound the parent's value
                probe already computed for this assignment (over the
                parent's pre-pruning domains — a superset, so still
                admissible here). ``None`` at the root or when the
                parent had no probe; computed fresh then.
        """
        self._tick()
        unassigned = [v.name for v in self.model.variables
                      if v.name not in assignment]
        if not unassigned:
            self._record(assignment)
            return
        if self.model.objective is not None and self.best is not None:
            if bound is None:
                bound = self.model.objective.bound(assignment, domains)
            if bound <= self.best_value + 1e-12:
                self.prunes += 1
                return
        var = min(unassigned, key=lambda n: len(domains[n]))
        for value, child_bound in self._ordered_values(var, assignment,
                                                       domains):
            if (child_bound is not None and self.best is not None
                    and child_bound <= self.best_value + 1e-12):
                self.prunes += 1
                continue  # the probe already proves this subtree beaten
            assignment[var] = value
            if self._consistent(var, assignment):
                removed = self._forward_check(var, value, assignment, domains)
                if removed is not None:
                    self.run(assignment, domains, bound=child_bound)
                    for name, val in removed:
                        domains[name].add(val)
            del assignment[var]
            if self.best is not None and self.config.first_solution_only:
                return

    # ------------------------------------------------------------------
    def _ordered_values(self, var: str, assignment: Assignment,
                        domains: Dict[str, set]
                        ) -> List[Tuple[int, Optional[float]]]:
        """(value, probed bound) pairs, most promising value first.

        The probe's bound is memoized into the returned pairs so the
        child node prunes on it directly instead of recomputing the
        objective bound it just cost one evaluation per value to
        obtain.
        """
        values = sorted(domains[var])
        objective = self.model.objective
        if objective is None or len(values) <= 1:
            return [(v, None) for v in values]

        bounds: Dict[int, float] = {}
        for value in values:
            assignment[var] = value
            try:
                bounds[value] = objective.bound(assignment, domains)
            finally:
                del assignment[var]
        values.sort(key=bounds.__getitem__, reverse=True)
        return [(v, bounds[v]) for v in values]

    def _consistent(self, var: str, assignment: Assignment) -> bool:
        return all(c.check_partial(assignment) for c in self.by_var[var])

    def _forward_check(self, var: str, value: int, assignment: Assignment,
                       domains: Dict[str, set]
                       ) -> Optional[List[Tuple[str, int]]]:
        removed: List[Tuple[str, int]] = []
        for c in self.by_var[var]:
            result = c.prune(var, value, assignment, domains)
            if result is None:
                for name, val in removed:
                    domains[name].add(val)
                return None
            removed.extend(result)
        return removed

    def _record(self, assignment: Assignment) -> None:
        if self.model.objective is None:
            if self.best is None:
                self.best = dict(assignment)
                self.incumbents += 1
            return
        value = self.model.objective.value(assignment)
        if value > self.best_value:
            self.best_value = value
            self.best = dict(assignment)
            self.incumbents += 1

    def _tick(self) -> None:
        self.nodes += 1
        config = self.config
        if config.node_limit is not None and self.nodes > config.node_limit:
            self.truncated = True
            raise _TimeUp
        if config.time_limit is not None and self.nodes % 256 == 0:
            if time.perf_counter() - self.start > config.time_limit:
                raise _TimeUp
