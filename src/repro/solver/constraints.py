"""Constraint library for the finite-domain solver.

Covers what the paper's formulation needs: distinct qubit locations
(Constraint 2 — :class:`AllDifferent`), domain restriction (Constraint 1
is encoded directly in variable domains), and generic relational/table
constraints used by tests and extensions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.solver.model import Assignment, Constraint


class AllDifferent(Constraint):
    """All variables in scope take pairwise distinct values."""

    def __init__(self, names: Sequence[str]) -> None:
        self.scope = tuple(names)

    def is_satisfied(self, assignment: Assignment) -> bool:
        values = [assignment[n] for n in self.scope]
        return len(set(values)) == len(values)

    def check_partial(self, assignment: Assignment) -> bool:
        seen: Set[int] = set()
        for name in self.scope:
            if name in assignment:
                if assignment[name] in seen:
                    return False
                seen.add(assignment[name])
        return True

    def prune(self, var: str, value: int, assignment: Assignment,
              domains: Dict[str, set]) -> Optional[List[Tuple[str, int]]]:
        if var not in self.scope:
            return []
        removed: List[Tuple[str, int]] = []
        for other in self.scope:
            if other == var or other in assignment:
                continue
            domain = domains[other]
            if value in domain:
                domain.discard(value)
                removed.append((other, value))
                if not domain:
                    # Caller undoes `removed`; signal the wipe-out.
                    for name, val in removed:
                        domains[name].add(val)
                    return None
        return removed


class BinaryPredicate(Constraint):
    """An arbitrary predicate over two variables.

    Args:
        a: First variable name.
        b: Second variable name.
        predicate: ``predicate(value_a, value_b) -> bool``.
    """

    def __init__(self, a: str, b: str,
                 predicate: Callable[[int, int], bool]) -> None:
        self.scope = (a, b)
        self.predicate = predicate

    def is_satisfied(self, assignment: Assignment) -> bool:
        return self.predicate(assignment[self.scope[0]],
                              assignment[self.scope[1]])

    def prune(self, var: str, value: int, assignment: Assignment,
              domains: Dict[str, set]) -> Optional[List[Tuple[str, int]]]:
        if var not in self.scope:
            return []
        other = self.scope[1] if var == self.scope[0] else self.scope[0]
        if other in assignment:
            return []
        ordered = ((value, o) if var == self.scope[0] else (o, value)
                   for o in list(domains[other]))
        removed: List[Tuple[str, int]] = []
        for va, vb in ordered:
            o = vb if var == self.scope[0] else va
            if not self.predicate(va, vb):
                domains[other].discard(o)
                removed.append((other, o))
        if not domains[other]:
            for name, val in removed:
                domains[name].add(val)
            return None
        return removed


class UnaryPredicate(Constraint):
    """An arbitrary predicate over a single variable."""

    def __init__(self, name: str, predicate: Callable[[int], bool]) -> None:
        self.scope = (name,)
        self.predicate = predicate

    def is_satisfied(self, assignment: Assignment) -> bool:
        return self.predicate(assignment[self.scope[0]])

    def check_partial(self, assignment: Assignment) -> bool:
        name = self.scope[0]
        if name in assignment:
            return self.predicate(assignment[name])
        return True


class TableConstraint(Constraint):
    """Scope tuple must appear in an explicit set of allowed tuples."""

    def __init__(self, names: Sequence[str],
                 allowed: Sequence[Tuple[int, ...]]) -> None:
        self.scope = tuple(names)
        self.allowed = frozenset(tuple(t) for t in allowed)
        for t in self.allowed:
            if len(t) != len(self.scope):
                raise ValueError("tuple arity mismatch in table constraint")

    def is_satisfied(self, assignment: Assignment) -> bool:
        return tuple(assignment[n] for n in self.scope) in self.allowed


class LinearLE(Constraint):
    """``sum(coeff_i * var_i) <= bound`` over integer variables."""

    def __init__(self, names: Sequence[str], coeffs: Sequence[float],
                 bound: float) -> None:
        if len(names) != len(coeffs):
            raise ValueError("coefficient count mismatch")
        self.scope = tuple(names)
        self.coeffs = tuple(coeffs)
        self.bound = bound

    def is_satisfied(self, assignment: Assignment) -> bool:
        total = sum(c * assignment[n]
                    for n, c in zip(self.scope, self.coeffs))
        return total <= self.bound + 1e-9
