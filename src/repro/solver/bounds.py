"""Vectorized cost matrices and bounds for assignment-shaped models.

The paper's R-SMT* formulation is an *assignment problem*: one
``AllDifferent`` over every variable plus a :class:`SumObjective` of
unary/pair terms (Eq. 12's readout and CNOT log-reliabilities). For that
shape the branch-and-bound engine does not need per-value Python probes:
the whole objective compiles into an ``(n, H)`` unary matrix and a
``(T, H, H)`` pair tensor, and every admissible bound the search needs —
node bounds, all child bounds of the branching variable, forward-check
wipeouts — becomes a handful of masked numpy reductions.

:func:`compile_assignment` detects the shape (returning ``None`` for
anything else, which keeps the generic engine authoritative), and
:class:`VectorSearch` runs the depth-first search over column indices.
The search also hosts the two structural prunes this layer enables:

* **root symmetry breaking** — candidate value permutations (typically
  the topology's automorphisms) are filtered down to exact invariances
  of the compiled matrices, and the root branching variable is
  restricted to one representative per orbit;
* **dominance pruning** — below the root, a candidate value is skipped
  when a cheaper *interchangeable* value (identical row/column in every
  cost matrix) is still free.

All comparisons are exact (no epsilon): the returned assignment is the
first leaf in canonical exploration order attaining the float maximum,
independent of the incumbent trajectory. That property is what lets the
portfolio solver (:mod:`repro.solver.portfolio`) split the root across
processes and still merge to the bit-identical serial answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.solver.constraints import AllDifferent
from repro.solver.model import Model
from repro.solver.objective import PairTerm, SumObjective, UnaryTerm

_NEG_INF = -np.inf

#: Finite stand-in for -inf in factored bounds (0 * -inf is NaN; a
#: pair with a zero base coefficient must contribute zero instead).
_BIG_NEG = -1e300

#: How often (in nodes) a portfolio worker polls for a foreign incumbent.
FLOOR_POLL_NODES = 1024


@dataclass
class AssignmentMatrices:
    """Compiled cost structure of an assignment model.

    Attributes:
        var_names: Variable names in model (branching-preference) order.
        values: Sorted union of all domain values; column ``c`` of every
            matrix corresponds to raw value ``values[c]``.
        domain_mask: ``(n, H)`` bool — value ``c`` allowed for var ``i``.
        unary: ``(n, H)`` float — summed unary scores, ``-inf`` outside
            the variable's domain.
        pair_vars: One ``(i, j)`` (``i < j``, variable indices) per pair
            tensor slice.
        pair_tensor: ``(T, H, H)`` float — entry ``[t, a, b]`` is the
            summed score of pair ``t`` with var ``i`` at column ``a``
            and var ``j`` at column ``b``. The diagonal and any
            combination outside the two domains is ``-inf`` (equal
            values are impossible under the AllDifferent).
        pair_base / pair_x / pair_y / pair_slack: Optional scaled-base
            factorization of the pair tensor (see
            :func:`_factor_pair_tensor`): every slice satisfies
            ``pair_tensor[t] <= pair_x[t] * B + pair_y[t] * B.T +
            pair_slack[t]`` elementwise with near-zero slack. Present
            whenever the slices share one underlying score matrix up to
            per-pair direction weights — the shape of every Eq.-12
            model, where each slice is ``count_fwd * L + count_rev *
            L.T`` for the device's CNOT log-reliability table ``L``.
            The search then derives all T row/column maxima from the
            ``H x H`` base instead of masking the full ``T x H x H``
            tensor at every node.
    """

    var_names: List[str]
    values: np.ndarray
    domain_mask: np.ndarray
    unary: np.ndarray
    pair_vars: List[Tuple[int, int]]
    pair_tensor: np.ndarray
    pair_base: Optional[np.ndarray] = None
    pair_x: Optional[np.ndarray] = None
    pair_y: Optional[np.ndarray] = None
    pair_slack: Optional[np.ndarray] = None

    @property
    def n_vars(self) -> int:
        return len(self.var_names)

    @property
    def n_cols(self) -> int:
        return int(self.values.shape[0])

    # ------------------------------------------------------------------
    def column_permutations(
            self, perms: Sequence[Sequence[int]]) -> List[np.ndarray]:
        """Convert raw-value permutations to exact invariances.

        Each candidate permutation (over raw values, e.g. a topology
        automorphism over hardware-qubit ids) is translated to column
        space and kept only if permuting every cost matrix by it leaves
        them bit-for-bit unchanged. The result is therefore a subgroup
        of the candidates — safe for orbit-based symmetry breaking even
        if the caller guessed wrong.
        """
        col_of = {int(v): c for c, v in enumerate(self.values)}
        out: List[np.ndarray] = []
        for perm in perms:
            table = list(perm)
            cols = np.empty(self.n_cols, dtype=np.intp)
            ok = True
            for c, value in enumerate(self.values):
                v = int(value)
                if v >= len(table) or v < 0:
                    ok = False
                    break
                image = table[v]
                if image not in col_of:
                    ok = False
                    break
                cols[c] = col_of[image]
            if not ok:
                continue
            if not np.array_equal(self.domain_mask[:, cols],
                                  self.domain_mask):
                continue
            if not np.array_equal(self.unary[:, cols], self.unary):
                continue
            permuted = self.pair_tensor[:, cols][:, :, cols]
            if not np.array_equal(permuted, self.pair_tensor):
                continue
            out.append(cols)
        return out

    def orbit_minima(self, col_perms: Sequence[np.ndarray]) -> np.ndarray:
        """``(H,)`` bool — columns minimal in their orbit under the
        group *generated* by ``col_perms``.

        Permutation cycles make forward reachability symmetric, so
        sweeping ``minima[c] = min(minima[c], minima[perm[c]])`` to a
        fixpoint propagates each orbit's minimum everywhere.
        """
        minima = np.arange(self.n_cols)
        changed = True
        while changed:
            changed = False
            for cols in col_perms:
                merged = np.minimum(minima, minima[cols])
                if not np.array_equal(merged, minima):
                    minima = merged
                    changed = True
        return minima == np.arange(self.n_cols)

    def group_closure(self, col_perms: Sequence[np.ndarray],
                      cap: int = 64) -> List[np.ndarray]:
        """Close a generator set under composition (capped for safety)."""
        identity = tuple(range(self.n_cols))
        group = {identity}
        frontier = [tuple(int(x) for x in p) for p in col_perms]
        while frontier and len(group) < cap:
            p = frontier.pop()
            if p in group:
                continue
            group.add(p)
            arr = np.array(p, dtype=np.intp)
            for q in list(group):
                qarr = np.array(q, dtype=np.intp)
                frontier.append(tuple(int(x) for x in arr[qarr]))
                frontier.append(tuple(int(x) for x in qarr[arr]))
        return [np.array(p, dtype=np.intp) for p in sorted(group)]

    def canonicalize(self, cols: np.ndarray,
                     col_perms: Sequence[np.ndarray],
                     root_var: int) -> np.ndarray:
        """Map an assignment into the symmetry-broken fundamental domain.

        Applies the group element that sends ``cols[root_var]`` to its
        orbit minimum; the permuted assignment has the identical
        objective value (the permutations are exact invariances). If
        the generated group overflows the safety cap the assignment is
        returned unchanged — the root restriction stays sound either
        way, the warm start just seeds from outside the canonical cone.
        """
        if not col_perms:
            return cols
        best = cols
        best_root = int(cols[root_var])
        for arr in self.group_closure(col_perms):
            mapped = arr[cols]
            root = int(mapped[root_var])
            if root < best_root:
                best_root = root
                best = mapped
        return best

    def interchangeable_minima(self) -> np.ndarray:
        """``class_min[c]`` — smallest column fully interchangeable with
        ``c`` (identical unary column, domain column, and pair
        rows/columns up to the ``c1<->c2`` swap)."""
        H = self.n_cols
        class_min = np.arange(H)
        # Cheap signature first: columns can only match if their unary
        # and domain columns agree exactly.
        sig: Dict[bytes, List[int]] = {}
        for c in range(H):
            key = (self.unary[:, c].tobytes()
                   + self.domain_mask[:, c].tobytes())
            sig.setdefault(key, []).append(c)
        PT = self.pair_tensor
        for cols in sig.values():
            for idx, c2 in enumerate(cols):
                for c1 in cols[:idx]:
                    if class_min[c1] != c1:
                        continue
                    if self._interchangeable(PT, c1, c2):
                        class_min[c2] = c1
                        break
        return class_min

    @staticmethod
    def _interchangeable(PT: np.ndarray, c1: int, c2: int) -> bool:
        if PT.shape[0] == 0:
            return True
        others = np.ones(PT.shape[1], dtype=bool)
        others[[c1, c2]] = False
        if not np.array_equal(PT[:, c1, :][:, others],
                              PT[:, c2, :][:, others]):
            return False
        if not np.array_equal(PT[:, :, c1][:, others],
                              PT[:, :, c2][:, others]):
            return False
        return np.array_equal(PT[:, c1, c2], PT[:, c2, c1])


def compile_assignment(model: Model) -> Optional[AssignmentMatrices]:
    """Compile *model* to matrices, or ``None`` if it isn't assignment-shaped.

    The required shape: a :class:`SumObjective` of unary/pair terms and
    exactly one :class:`AllDifferent` constraint covering every
    variable (the paper's Constraints 1-2 + Eq. 12). Anything else —
    callable objectives, extra constraints, satisfaction-only models —
    stays on the generic engine.
    """
    if not isinstance(model.objective, SumObjective):
        return None
    if len(model.constraints) != 1:
        return None
    alldiff = model.constraints[0]
    if type(alldiff) is not AllDifferent:
        return None
    names = [v.name for v in model.variables]
    if set(alldiff.scope) != set(names) or len(alldiff.scope) != len(names):
        return None
    index = {name: i for i, name in enumerate(names)}

    values = np.array(sorted({v for var in model.variables
                              for v in var.domain}), dtype=np.int64)
    col_of = {int(v): c for c, v in enumerate(values)}
    n, H = len(names), len(values)
    domain_mask = np.zeros((n, H), dtype=bool)
    for i, var in enumerate(model.variables):
        for v in var.domain:
            domain_mask[i, col_of[v]] = True

    unary = np.where(domain_mask, 0.0, _NEG_INF)
    pair_slices: Dict[Tuple[int, int], np.ndarray] = {}
    for term in model.objective.terms:
        if isinstance(term, UnaryTerm):
            i = index.get(term.scope[0])
            if i is None:
                return None
            scores = _unary_scores(term, values, domain_mask[i])
            unary[i] += np.where(domain_mask[i], scores, 0.0)
        elif isinstance(term, PairTerm):
            a, b = term.scope
            ia, ib = index.get(a), index.get(b)
            if ia is None or ib is None or ia == ib:
                return None
            mat = _pair_scores(term, values, domain_mask[ia],
                               domain_mask[ib])
            if ia > ib:
                ia, ib = ib, ia
                mat = mat.T
            key = (ia, ib)
            if key in pair_slices:
                pair_slices[key] = pair_slices[key] + np.where(
                    np.isfinite(mat), mat, 0.0)
            else:
                pair_slices[key] = mat
        else:
            return None

    pair_vars = sorted(pair_slices)
    if pair_vars:
        pair_tensor = np.stack([pair_slices[k] for k in pair_vars])
    else:
        pair_tensor = np.empty((0, H, H))
    factored = _factor_pair_tensor(pair_tensor)
    base, xs, ys, slack = factored if factored is not None \
        else (None, None, None, None)
    return AssignmentMatrices(
        var_names=names, values=values, domain_mask=domain_mask,
        unary=unary, pair_vars=pair_vars, pair_tensor=pair_tensor,
        pair_base=base, pair_x=xs, pair_y=ys, pair_slack=slack)


def _factor_pair_tensor(PT: np.ndarray) -> Optional[Tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Fit every pair slice as a nonnegative ``x*B + y*B.T`` combo.

    The Eq.-12 model builds each slice from one device-wide CNOT
    log-reliability matrix ``L``: slice ``t`` for interacting pair
    ``(qc, qt)`` is ``count_fwd * L + count_rev * L.T`` (ordered-pair
    counts of the two CNOT directions). The whole tensor therefore
    lives in the two-dimensional span of any one asymmetric slice and
    its transpose. Detecting that lets :meth:`VectorSearch._edge_maxima`
    compute the free-set maxima of all ``T`` slices from ``H x H``
    masked reductions of the base instead of ``T x H x H`` ones.

    Safety: the returned ``(B, x, y, s)`` guarantees
    ``PT[t] <= x[t]*B + y[t]*B.T + s[t]`` elementwise (so every bound
    built from it stays admissible), with relative slack below 1e-9
    (so pruning power is unchanged in practice). Returns ``None`` —
    keeping the exact dense path — when the slices do not share the
    structure: mismatched feasibility patterns, negative fitted
    coefficients, or slack above the tightness threshold.
    """
    T = PT.shape[0]
    if T < 2:
        return None
    finite = np.isfinite(PT)
    pattern = finite[0]
    if not np.array_equal(pattern, pattern.T):
        return None
    if not (finite == pattern[None]).all():
        return None
    if not pattern.any():
        return None
    # Base: the most asymmetric slice, so span{B, B.T} is as close to
    # two-dimensional as this tensor allows (a symmetric base could
    # never express asymmetric siblings).
    asym = np.abs(np.where(pattern, PT, 0.0)
                  - np.where(pattern, PT, 0.0).transpose(0, 2, 1))
    t0 = int(np.argmax(asym.reshape(T, -1).max(axis=1)))
    base = PT[t0]
    flat = PT[:, pattern]
    b1 = base[pattern]
    b2 = base.T[pattern]
    design = np.stack([b1, b2], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, flat.T, rcond=None)
    xs, ys = coeffs[0], coeffs[1]
    scale = np.abs(flat).max(axis=1)
    tol = 1e-9 * np.maximum(scale, 1e-300)
    if (xs < -tol).any() or (ys < -tol).any():
        return None
    xs = np.maximum(xs, 0.0)
    ys = np.maximum(ys, 0.0)
    diff = flat - (xs[:, None] * b1[None, :] + ys[:, None] * b2[None, :])
    if (np.abs(diff).max(axis=1) > tol).any():
        return None
    slack = np.maximum(diff.max(axis=1), 0.0)
    return base, xs, ys, slack


def _dense_applies(table: Optional[np.ndarray],
                   values: np.ndarray) -> bool:
    return (table is not None and int(values.min()) >= 0
            and table.shape[0] > int(values.max()))


def _unary_scores(term: UnaryTerm, values: np.ndarray,
                  mask: np.ndarray) -> np.ndarray:
    vector = term.dense_vector()
    if vector is not None:
        vec = np.asarray(vector, dtype=float)
        if _dense_applies(vec, values):
            return vec[values]
    out = np.zeros(len(values))
    for c, v in enumerate(values):
        if mask[c]:
            out[c] = term._score(int(v))
    return out


def _pair_scores(term: PairTerm, values: np.ndarray,
                 mask_a: np.ndarray, mask_b: np.ndarray) -> np.ndarray:
    H = len(values)
    region = np.logical_and.outer(mask_a, mask_b)
    np.fill_diagonal(region, False)
    matrix = term.dense_matrix()
    if matrix is not None:
        dense = np.asarray(matrix, dtype=float)
        if _dense_applies(dense, values) and dense.shape[1] > int(values.max()):
            sliced = dense[np.ix_(values, values)]
            return np.where(region, sliced, _NEG_INF)
    out = np.full((H, H), _NEG_INF)
    rows = np.where(mask_a)[0]
    cols = np.where(mask_b)[0]
    for a in rows:
        va = int(values[a])
        for b in cols:
            if a == b:
                continue
            out[a, b] = term._score(va, int(values[b]))
    return out


class _TimeUp(Exception):
    """Internal: the time or node budget interrupted the search."""


class VectorSearch:
    """Depth-first branch-and-bound over compiled assignment matrices.

    The search maximizes; all incumbent comparisons are exact. ``floor``
    is a *foreign* incumbent value (from a portfolio sibling): subtrees
    that cannot reach it are pruned (``bound < floor``), but leaves
    *equal* to it are still recorded — that asymmetry is what makes the
    portfolio merge reproduce the serial answer bit-for-bit.
    """

    def __init__(self, mats: AssignmentMatrices,
                 time_limit: Optional[float] = None,
                 node_limit: Optional[int] = None,
                 first_solution_only: bool = False,
                 start: Optional[float] = None,
                 floor_poll=None) -> None:
        self.m = mats
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.first_solution_only = first_solution_only
        self.start = time.perf_counter() if start is None else start
        self.floor_poll = floor_poll
        self.floor = _NEG_INF
        self.best_cols: Optional[np.ndarray] = None
        self.best_value = _NEG_INF
        self.best_rank: Optional[int] = None
        self.current_rank: Optional[int] = None
        self.nodes = 0
        self.prunes = 0
        self.incumbents = 0
        self.truncated = False
        self.symmetry_cols: List[np.ndarray] = []
        self.root_minima: Optional[np.ndarray] = None
        self.class_min: Optional[np.ndarray] = None
        self._pair_i = np.array([i for i, _ in mats.pair_vars], dtype=np.intp)
        self._pair_j = np.array([j for _, j in mats.pair_vars], dtype=np.intp)
        self._buf: Optional[np.ndarray] = None  # dense-path scratch
        self._fact = mats.pair_base is not None and len(self._pair_i) > 0
        if self._fact:
            # Factored fast path: per-pair bookkeeping lives in plain
            # Python containers — at mapping sizes (H <= 36, T <= ~60)
            # scalar loops over a variable's incident pairs beat numpy's
            # per-call overhead by an order of magnitude, and numpy is
            # kept for the H-sized vector arithmetic only.
            T = len(self._pair_i)
            self._stl = [0] * T  # bit 0: var i assigned; bit 1: var j
            self._incl_i = [np.where(self._pair_i == v)[0].tolist()
                            for v in range(mats.n_vars)]
            self._incl_j = [np.where(self._pair_j == v)[0].tolist()
                            for v in range(mats.n_vars)]
            self._xl = mats.pair_x.tolist()
            self._yl = mats.pair_y.tolist()
            self._sl = mats.pair_slack.tolist()
            self._pil = self._pair_i.tolist()
            self._pjl = self._pair_j.tolist()
            self._PTl = mats.pair_tensor.tolist()
            self._unary_l = mats.unary.tolist()
            self._asg = [-1] * mats.n_vars  # mirror of ``assigned``
            # Bound aggregates over pair categories, maintained by
            # _fact_push/_fact_pop with exact (saved-value) restoration
            # so the state at a node is a pure function of the
            # assignment path — the portfolio's bit-identity with the
            # serial engine depends on that:
            # * ``_wp[c]``/``_wq[c]``: coefficient mass multiplying
            #   ``P[c]``/``Q[c]`` for half-assigned pairs whose fixed
            #   endpoint sits at column ``c``;
            # * ``_s_half``: slack mass of half-assigned pairs;
            # * ``_xf``/``_yf``/``_sf``: coefficient mass of fully
            #   unassigned pairs.
            self._wp = [0.0] * mats.n_cols
            self._wq = [0.0] * mats.n_cols
            self._s_half = 0.0
            self._xf = float(mats.pair_x.sum())
            self._yf = float(mats.pair_y.sum())
            self._sf = float(mats.pair_slack.sum())

    # ------------------------------------------------------------------
    def enable_symmetry(self, perms: Sequence[Sequence[int]]) -> None:
        """Install root orbit restriction from candidate value perms."""
        self.symmetry_cols = self.m.column_permutations(perms)
        if self.symmetry_cols:
            self.root_minima = self.m.orbit_minima(self.symmetry_cols)

    def enable_dominance(self) -> None:
        self.class_min = self.m.interchangeable_minima()

    def seed(self, cols: np.ndarray, value: float) -> None:
        """Warm-start incumbent (already canonicalized by the caller)."""
        self.best_cols = np.asarray(cols, dtype=np.intp).copy()
        self.best_value = float(value)
        self.incumbents += 1

    def root_var(self) -> int:
        """The variable branched at the root (deterministic)."""
        counts = self.m.domain_mask.sum(axis=1)
        return int(np.argmin(counts))

    def root_candidates(self) -> np.ndarray:
        """Root candidate columns in canonical exploration order.

        Applies the symmetry orbit restriction, then orders by child
        bound descending with column-ascending tie-break — the shared
        plan both the serial search and the portfolio partition use.
        """
        assigned = np.full(self.m.n_vars, -1, dtype=np.intp)
        free = np.ones(self.m.n_cols, dtype=bool)
        sel = self.root_var()
        root_avail = self.m.domain_mask[sel] & free
        if self.root_minima is not None:
            root_avail = root_avail & self.root_minima
        cand = np.where(root_avail)[0]
        if len(cand) <= 1:
            return cand
        if self._fact:
            # Same bound arithmetic as _node, so the plan's candidate
            # order is bit-identical to the serial first-visit order.
            unassigned = np.where(assigned < 0)[0]
            avail = self.m.domain_mask[unassigned] & free
            sel_pos = int(np.where(unassigned == sel)[0][0])
            bounds = self._child_bounds_factored(
                sel, sel_pos, unassigned, avail, assigned, free, 0.0)
        else:
            RM, CM = self._edge_maxima(free)
            bounds = self._child_bounds(sel, assigned, free, 0.0, RM, CM)
        order = np.argsort(-bounds[cand], kind="stable")
        return cand[order]

    def prefix_tasks(self, depth: int = 2) -> List[Tuple[int, ...]]:
        """Canonical-order subtree prefixes for portfolio splitting.

        Depth-1 prefixes are the root candidates; depth-2 expands each
        root candidate into its second-level candidates — computed with
        the same branching, dominance, and bound-ordering rules the
        search itself applies, all of which are incumbent-independent,
        so the lexicographic prefix order equals the serial search's
        first-visit order. The finer grain is what lets the portfolio
        balance wildly uneven root children. A root candidate whose
        child node wipes out (some variable loses its whole domain) is
        dropped: that subtree has no leaves for any engine to find.
        """
        root_cols = self.root_candidates()
        if depth <= 1 or self.m.n_vars < 2:
            return [(int(c),) for c in root_cols]
        out: List[Tuple[int, ...]] = []
        assigned = np.full(self.m.n_vars, -1, dtype=np.intp)
        free = np.ones(self.m.n_cols, dtype=bool)
        root = self.root_var()
        for c0 in root_cols:
            for c1 in self._plan_children(root, int(c0), assigned, free):
                out.append((int(c0), int(c1)))
        return out

    def _plan_children(self, var: int, col: int, assigned: np.ndarray,
                       free: np.ndarray) -> List[int]:
        """Second-level candidates of child ``var := col``, in the exact
        order :meth:`_node` would explore them (minus incumbent-driven
        skips, which drop entries without reordering survivors)."""
        token = None
        if self._fact:
            _, token = self._fact_push(var, col)
        assigned[var] = col
        free[col] = False
        try:
            unassigned = np.where(assigned < 0)[0]
            avail = self.m.domain_mask[unassigned] & free
            counts = avail.sum(axis=1)
            if counts.min() == 0:
                return []
            sel_pos = int(np.argmin(counts))
            sel = int(unassigned[sel_pos])
            if self._fact:
                bounds = self._child_bounds_factored(
                    sel, sel_pos, unassigned, avail, assigned, free, 0.0)
            else:
                RM, CM = self._edge_maxima(free)
                bounds = self._child_bounds(sel, assigned, free, 0.0,
                                            RM, CM)
            cand = np.where(avail[sel_pos])[0]
            if self.class_min is not None and len(cand) > 1:
                twin = self.class_min[cand]
                cand = cand[(twin == cand) | ~free[twin]]
            order = np.argsort(-bounds[cand], kind="stable")
            return [int(c) for c in cand[order]]
        finally:
            assigned[var] = -1
            free[col] = True
            if token is not None:
                self._fact_pop(var, token)

    def run(self, root_cols: Optional[Sequence] = None,
            rank_base: int = 0) -> bool:
        """Search; returns False when the budget interrupted it.

        Args:
            root_cols: Explicit subtree list (already in exploration
                order): bare columns or prefix tuples from
                :meth:`prefix_tasks`. When ``None`` the canonical root
                plan is used.
            rank_base: Global rank of ``root_cols[0]`` (for portfolio
                tie-break bookkeeping).
        """
        if root_cols is None:
            root_cols = self.root_candidates()
        assigned = np.full(self.m.n_vars, -1, dtype=np.intp)
        free = np.ones(self.m.n_cols, dtype=bool)
        sel = self.root_var()
        try:
            for offset, item in enumerate(root_cols):
                self.current_rank = rank_base + offset
                path = ((int(item),) if np.ndim(item) == 0
                        else tuple(int(c) for c in item))
                self._descend(sel, path[0], assigned, free, 0.0, path[1:])
                if self.best_cols is not None and self.first_solution_only:
                    break
            return True
        except _TimeUp:
            return False

    def _branch_var(self, assigned: np.ndarray,
                    free: np.ndarray) -> Optional[int]:
        """The node's branching variable (``None`` on leaf/wipeout) —
        the same rule :meth:`_node` applies."""
        unassigned = np.where(assigned < 0)[0]
        if len(unassigned) == 0:
            return None
        avail = self.m.domain_mask[unassigned] & free
        counts = avail.sum(axis=1)
        if counts.min() == 0:
            return None
        return int(unassigned[int(np.argmin(counts))])

    # ------------------------------------------------------------------
    def _fact_push(self, var: int, col: int) -> Tuple[float, tuple]:
        """Commit ``var := col`` into the factored bookkeeping.

        Returns the objective delta of the assignment plus an opaque
        token for :meth:`_fact_pop`. Aggregate restoration is by saved
        value, not inverse arithmetic — floating-point ``(w + a) - a``
        need not equal ``w``, and the portfolio's bit-identity with the
        serial engine requires the state at a node to depend only on
        the assignment path, never on sibling subtrees explored before
        it.
        """
        stl, asg = self._stl, self._asg
        xl, yl, sl = self._xl, self._yl, self._sl
        pil, pjl, PTl = self._pil, self._pjl, self._PTl
        wp, wq = self._wp, self._wq
        saved = (self._xf, self._yf, self._sf, self._s_half)
        xf, yf, sf, s_half = saved
        touched: List[Tuple[int, float, float]] = []
        delta = self._unary_l[var][col]
        for t in self._incl_i[var]:
            s0 = stl[t]
            if s0 == 2:  # completing: partner j already placed
                b = asg[pjl[t]]
                delta += PTl[t][col][b]
                touched.append((b, wp[b], wq[b]))
                wp[b] -= yl[t]
                wq[b] -= xl[t]
                s_half -= sl[t]
            else:  # both free -> half-assigned with i at col
                xf -= xl[t]
                yf -= yl[t]
                sf -= sl[t]
                touched.append((col, wp[col], wq[col]))
                wp[col] += xl[t]
                wq[col] += yl[t]
                s_half += sl[t]
            stl[t] = s0 | 1
        for t in self._incl_j[var]:
            s0 = stl[t]
            if s0 == 1:
                a = asg[pil[t]]
                delta += PTl[t][a][col]
                touched.append((a, wp[a], wq[a]))
                wp[a] -= xl[t]
                wq[a] -= yl[t]
                s_half -= sl[t]
            else:
                xf -= xl[t]
                yf -= yl[t]
                sf -= sl[t]
                touched.append((col, wp[col], wq[col]))
                wp[col] += yl[t]
                wq[col] += xl[t]
                s_half += sl[t]
            stl[t] = s0 | 2
        self._xf, self._yf, self._sf, self._s_half = xf, yf, sf, s_half
        asg[var] = col
        return delta, (saved, touched)

    def _fact_pop(self, var: int, token: tuple) -> None:
        """Exact-restore the factored bookkeeping of one assignment."""
        saved, touched = token
        stl, wp, wq = self._stl, self._wp, self._wq
        for t in self._incl_i[var]:
            stl[t] &= ~1
        for t in self._incl_j[var]:
            stl[t] &= ~2
        for idx, old_wp, old_wq in reversed(touched):
            wp[idx] = old_wp
            wq[idx] = old_wq
        self._xf, self._yf, self._sf, self._s_half = saved
        self._asg[var] = -1

    def _descend(self, var: int, col: int, assigned: np.ndarray,
                 free: np.ndarray, fixed: float,
                 tail: Tuple[int, ...] = ()) -> None:
        """Assign ``var := col``; expand the child node, or follow the
        remaining prefix ``tail`` first (portfolio subtree entry)."""
        token = None
        if self._fact:
            delta, token = self._fact_push(var, col)
        else:
            delta = float(self.m.unary[var, col])
            PT, pi, pj = self.m.pair_tensor, self._pair_i, self._pair_j
            if len(pi):
                t_i = np.where((pi == var) & (assigned[pj] >= 0))[0]
                if len(t_i):
                    delta += float(PT[t_i, col, assigned[pj[t_i]]].sum())
                t_j = np.where((pj == var) & (assigned[pi] >= 0))[0]
                if len(t_j):
                    delta += float(PT[t_j, assigned[pi[t_j]], col].sum())
        assigned[var] = col
        free[col] = False
        if tail:
            nxt = self._branch_var(assigned, free)
            if nxt is not None:
                self._descend(nxt, tail[0], assigned, free, fixed + delta,
                              tail[1:])
        else:
            self._node(assigned, free, fixed + delta)
        assigned[var] = -1
        free[col] = True
        if token is not None:
            self._fact_pop(var, token)

    def _node(self, assigned: np.ndarray, free: np.ndarray,
              fixed: float) -> None:
        self._tick()
        unassigned = np.where(assigned < 0)[0]
        if len(unassigned) == 0:
            if fixed >= self.floor and fixed > self.best_value:
                self.best_value = fixed
                self.best_cols = assigned.copy()
                self.best_rank = self.current_rank
                self.incumbents += 1
            return
        avail = self.m.domain_mask[unassigned] & free
        counts = avail.sum(axis=1)
        if counts.min() == 0:
            return
        sel_pos = int(np.argmin(counts))
        sel = int(unassigned[sel_pos])
        if self._fact:
            # Factored fast path: per-candidate bounds via aggregated
            # base maxima; the child-level prune below subsumes the
            # node-level one (the node bound dominates every child
            # bound, so a prunable node has no live candidates).
            bounds = self._child_bounds_factored(
                sel, sel_pos, unassigned, avail, assigned, free, fixed)
        else:
            RM, CM = self._edge_maxima(free)
            bound = self._node_bound(assigned, free, fixed, unassigned,
                                     avail, RM, CM)
            if bound < self.floor or (self.best_cols is not None
                                      and bound <= self.best_value):
                self.prunes += 1
                return
            bounds = self._child_bounds(sel, assigned, free, fixed, RM, CM)
        cand = np.where(avail[sel_pos])[0]
        if self.class_min is not None and len(cand) > 1:
            # Dominance: skip a value whose smaller interchangeable
            # twin is still free (swapping them preserves the value).
            twin = self.class_min[cand]
            cand = cand[(twin == cand) | ~free[twin]]
        cb = bounds[cand]
        live = cb >= self.floor
        if self.best_cols is not None:
            live &= cb > self.best_value
        self.prunes += int(len(cand) - int(live.sum()))
        cand, cb = cand[live], cb[live]
        order = np.argsort(-cb, kind="stable")
        for k in order:
            col = int(cand[k])
            if cb[k] < self.floor or (self.best_cols is not None
                                      and cb[k] <= self.best_value):
                self.prunes += 1
                continue
            self._descend(sel, col, assigned, free, fixed)
            if self.best_cols is not None and self.first_solution_only:
                return

    # ------------------------------------------------------------------
    def _edge_maxima(self, free: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Row/column maxima of every pair slice over free columns/rows.

        ``RM[t, a]`` bounds pair ``t`` when var *i* sits at column *a*
        and var *j* is anywhere free (the -inf diagonal excludes the
        collision); ``CM[t, b]`` is the mirror for a fixed *j*.

        With a factored tensor (``pair_base`` set) both come from two
        ``H x H`` masked reductions of the base instead of two
        ``T x H x H`` ones: for slice ``t <= x*B + y*B.T + s``,
        ``max_j(B[a, j])`` over free *j* is ``P[a]`` and
        ``max_j(B.T[a, j]) = max_j(B[j, a])`` over free *j* is ``Q[a]``,
        so ``RM[t] <= x*P + y*Q + s`` (and ``CM[t] <= x*Q + y*P + s``
        by the mirror argument) — still admissible, and exact whenever
        the factorization slack is zero.
        """
        m = self.m
        PT = m.pair_tensor
        if PT.shape[0] == 0:
            empty = np.empty((0, m.n_cols))
            return empty, empty
        if m.pair_base is not None:
            P = np.where(free, m.pair_base, _NEG_INF).max(axis=1)
            Q = np.where(free[:, None], m.pair_base, _NEG_INF).max(axis=0)
            xs, ys, s = m.pair_x, m.pair_y, m.pair_slack
            with np.errstate(invalid="ignore"):
                RM = xs[:, None] * P + ys[:, None] * Q + s[:, None]
                CM = xs[:, None] * Q + ys[:, None] * P + s[:, None]
            # 0 * -inf is NaN; it only arises where P (equivalently Q —
            # the feasibility pattern is symmetric) is -inf, i.e. no
            # feasible free partner at all: the true maxima are -inf.
            dead = np.isneginf(P)
            if dead.any():
                RM[:, dead] = _NEG_INF
                CM[:, dead] = _NEG_INF
            return RM, CM
        if self._buf is None:
            self._buf = np.empty_like(PT)
        buf = self._buf
        np.copyto(buf, PT)
        buf[:, :, ~free] = _NEG_INF
        RM = buf.max(axis=2)
        np.copyto(buf, PT)
        buf[:, ~free, :] = _NEG_INF
        CM = buf.max(axis=1)
        return RM, CM

    def _node_bound(self, assigned: np.ndarray, free: np.ndarray,
                    fixed: float, unassigned: np.ndarray,
                    avail: np.ndarray, RM: np.ndarray,
                    CM: np.ndarray) -> float:
        bound = fixed + float(np.where(avail, self.m.unary[unassigned],
                                       _NEG_INF).max(axis=1).sum())
        if len(self._pair_i) == 0:
            return bound
        ai = assigned[self._pair_i]
        aj = assigned[self._pair_j]
        i_only = np.where((ai >= 0) & (aj < 0))[0]
        j_only = np.where((ai < 0) & (aj >= 0))[0]
        both = np.where((ai < 0) & (aj < 0))[0]
        if len(i_only):
            bound += float(RM[i_only, ai[i_only]].sum())
        if len(j_only):
            bound += float(CM[j_only, aj[j_only]].sum())
        if len(both):
            bound += float(np.where(free, RM[both], _NEG_INF)
                           .max(axis=1).sum())
        return bound

    def _child_bounds(self, sel: int, assigned: np.ndarray,
                      free: np.ndarray, fixed: float, RM: np.ndarray,
                      CM: np.ndarray) -> np.ndarray:
        """Admissible bound for every candidate column of ``sel``.

        One vectorized pass: pairs touching ``sel`` contribute exact
        per-column vectors, everything else an optimistic constant over
        the parent's free set (a superset of any child's — admissible).
        """
        m = self.m
        bounds = fixed + m.unary[sel].astype(float, copy=True)
        unassigned = np.where(assigned < 0)[0]
        others = unassigned[unassigned != sel]
        if len(others):
            o_avail = m.domain_mask[others] & free
            bounds += float(np.where(o_avail, m.unary[others], _NEG_INF)
                            .max(axis=1).sum())
        if len(self._pair_i) == 0:
            return bounds
        PT, pi, pj = m.pair_tensor, self._pair_i, self._pair_j
        ai, aj = assigned[pi], assigned[pj]
        sel_i = pi == sel
        sel_j = pj == sel
        t = np.where(sel_i & (aj >= 0))[0]
        if len(t):
            bounds += PT[t, :, aj[t]].sum(axis=0)
        t = np.where(sel_j & (ai >= 0))[0]
        if len(t):
            bounds += PT[t, ai[t], :].sum(axis=0)
        t = np.where(sel_i & (aj < 0))[0]
        if len(t):
            bounds += RM[t].sum(axis=0)
        t = np.where(sel_j & (ai < 0))[0]
        if len(t):
            bounds += CM[t].sum(axis=0)
        rest_i = np.where(~sel_i & ~sel_j & (ai >= 0) & (aj < 0))[0]
        if len(rest_i):
            bounds += float(RM[rest_i, ai[rest_i]].sum())
        rest_j = np.where(~sel_i & ~sel_j & (ai < 0) & (aj >= 0))[0]
        if len(rest_j):
            bounds += float(CM[rest_j, aj[rest_j]].sum())
        rest_b = np.where(~sel_i & ~sel_j & (ai < 0) & (aj < 0))[0]
        if len(rest_b):
            bounds += float(np.where(free, RM[rest_b], _NEG_INF)
                            .max(axis=1).sum())
        return bounds

    def _child_bounds_factored(self, sel: int, sel_pos: int,
                               unassigned: np.ndarray, avail: np.ndarray,
                               assigned: np.ndarray, free: np.ndarray,
                               fixed: float) -> np.ndarray:
        """Per-candidate bounds from the factored pair tensor.

        Replaces the dense ``T x H`` edge-maxima materialization with
        two ``H x H`` masked reductions of the base plus dot products
        against the per-pair coefficients, grouped by the incremental
        assignment-status array ``_st`` (see :meth:`_descend`):

        * pairs touching ``sel`` with an assigned partner contribute
          their exact tensor column/row;
        * pairs touching ``sel`` with a free partner contribute
          ``sum(x)*P + sum(y)*Q`` (per-candidate vectors);
        * half-assigned pairs elsewhere contribute the scalar
          ``x*P[a] + y*Q[a]`` at their fixed endpoint;
        * fully-free pairs elsewhere contribute the decoupled scalar
          ``x*max(P) + y*max(Q)`` over free columns — the one place
          this path is (admissibly) looser than the dense maxima.
        """
        m = self.m
        B = m.pair_base
        P = np.where(free, B, _NEG_INF).max(axis=1)
        Q = np.where(free[:, None], B, _NEG_INF).max(axis=0)
        # Clamp impossible rows to a huge finite negative: 0 * -inf is
        # NaN, while 0 * -1e300 is the correct zero contribution of a
        # pair whose coefficient on that base component is zero.
        np.maximum(P, _BIG_NEG, out=P)
        np.maximum(Q, _BIG_NEG, out=Q)
        # Unary part, reusing the node's avail rows (every row max is
        # finite — the caller checked counts.min() > 0).
        rowmax = np.where(avail, m.unary[unassigned], _NEG_INF).max(axis=1)
        const = fixed + float(rowmax.sum()) - float(rowmax[sel_pos])
        Pl, Ql = P.tolist(), Q.tolist()
        stl, asg = self._stl, self._asg
        xl, yl, sl = self._xl, self._yl, self._sl
        pil, pjl = self._pil, self._pjl
        # One scalar pass over sel's incident pairs: exact categories
        # collect tensor rows, free-partner categories accumulate
        # coefficient sums, and ``sub`` removes sel's own pairs from
        # the node-level half-assigned aggregates below.
        exact_i: List[int] = []
        exact_i_at: List[int] = []
        exact_j: List[int] = []
        exact_j_at: List[int] = []
        cxi = cyi = csi = cxj = cyj = csj = 0.0
        sub = 0.0
        for t in self._incl_i[sel]:
            if stl[t] == 2:
                b = asg[pjl[t]]
                exact_i.append(t)
                exact_i_at.append(b)
                sub += yl[t] * Pl[b] + xl[t] * Ql[b] + sl[t]
            else:
                cxi += xl[t]
                cyi += yl[t]
                csi += sl[t]
        for t in self._incl_j[sel]:
            if stl[t] == 1:
                a = asg[pil[t]]
                exact_j.append(t)
                exact_j_at.append(a)
                sub += xl[t] * Pl[a] + yl[t] * Ql[a] + sl[t]
            else:
                cxj += xl[t]
                cyj += yl[t]
                csj += sl[t]
        # Half-assigned pairs elsewhere: the maintained column weights
        # against P/Q, minus sel's own contributions.
        half = self._s_half - sub
        for w, p in zip(self._wp, Pl):
            if w:
                half += w * p
        for w, q in zip(self._wq, Ql):
            if w:
                half += w * q
        # Fully-free pairs elsewhere: decoupled maxima over free
        # columns — the one place this path is (admissibly) looser
        # than the dense edge maxima.
        rxf = self._xf - cxi - cxj
        ryf = self._yf - cyi - cyj
        rsf = self._sf - csi - csj
        if rxf or ryf:
            rest = (half + rxf * float(P[free].max())
                    + ryf * float(Q[free].max()) + rsf)
        else:
            rest = half + rsf
        base_c = const + rest + csi + csj
        coef_p = cxi + cyj
        coef_q = cyi + cxj
        if coef_p or coef_q:
            bounds = m.unary[sel] + (coef_p * P + coef_q * Q + base_c)
        else:
            bounds = m.unary[sel] + base_c
        if exact_i:
            bounds = bounds + m.pair_tensor[exact_i, :, exact_i_at] \
                .sum(axis=0)
        if exact_j:
            bounds = bounds + m.pair_tensor[exact_j, exact_j_at, :] \
                .sum(axis=0)
        return bounds

    def _tick(self) -> None:
        self.nodes += 1
        if self.node_limit is not None and self.nodes > self.node_limit:
            self.truncated = True
            raise _TimeUp
        if self.time_limit is not None and self.nodes % 256 == 0:
            if time.perf_counter() - self.start > self.time_limit:
                raise _TimeUp
        if self.floor_poll is not None and self.nodes % FLOOR_POLL_NODES == 0:
            floor = self.floor_poll()
            if floor is not None and floor > self.floor:
                self.floor = floor
