#!/usr/bin/env python3
"""Compile-time scalability: optimal vs heuristic mapping (Figure 11).

Sweeps random programs across qubit and gate counts, comparing the
R-SMT* branch-and-bound mapper (with a per-compile time cap) against
the GreedyE* heuristic. The optimal mapper's cost explodes with program
size while the heuristic stays in the milliseconds — the paper's
argument for heuristics beyond ~32 qubits.

Run: python examples/scalability_study.py
"""

from repro import CompilerOptions, CalibrationGenerator, compile_circuit
from repro.hardware import square_topology
from repro.programs import random_circuit

SMT_CAP_SECONDS = 5.0


def human(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:7.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:7.1f} ms"
    return f"{seconds:7.2f} s "


def main() -> None:
    print(f"{'qubits':>7} {'gates':>6} {'greedye*':>11} "
          f"{'r-smt*':>11} {'capped?':>8}")
    for n_qubits in (4, 8, 16, 32, 128):
        topo = square_topology(max(n_qubits, 4))
        cal = CalibrationGenerator(topo, seed=1).snapshot(0)
        for n_gates in (128, 512, 2048):
            circuit = random_circuit(n_qubits, n_gates, seed=n_gates)
            greedy = compile_circuit(circuit, cal,
                                     CompilerOptions.greedy_e())
            row = (f"{n_qubits:>7} {n_gates:>6} "
                   f"{human(greedy.compile_time):>11}")
            if n_qubits <= 32 and n_gates <= 512:
                options = CompilerOptions.r_smt_star().with_(
                    solver_time_limit=SMT_CAP_SECONDS)
                smt = compile_circuit(circuit, cal, options)
                capped = "yes" if not smt.mapping.optimal else "no"
                row += f" {human(smt.compile_time):>11} {capped:>8}"
            else:
                row += f" {'(skipped)':>11} {'-':>8}"
            print(row)
    print("\nGreedy mapping stays flat while the optimal search blows "
          "up — run with a larger cap to watch it head toward the "
          "paper's 3-hour compiles.")


if __name__ == "__main__":
    main()
