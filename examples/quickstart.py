#!/usr/bin/env python3
"""Quickstart: compile a benchmark noise-adaptively and execute it.

Walks the full toolflow of the paper on one program:

1. obtain today's machine calibration (synthetic IBMQ16 snapshot);
2. compile Bernstein-Vazirani with the baseline and with R-SMT*;
3. inspect the mappings, SWAP counts and predicted reliability;
4. run both executables on the noisy simulator and compare measured
   success rates;
5. dump the optimized OpenQASM, as the paper's compiler does.

Run: python examples/quickstart.py
"""

from repro import (
    CompilerOptions,
    compile_circuit,
    default_ibmq16_calibration,
    execute,
)
from repro.programs import build_benchmark, expected_output

TRIALS = 2048


def main() -> None:
    benchmark = "BV4"
    circuit = build_benchmark(benchmark)
    answer = expected_output(benchmark)
    calibration = default_ibmq16_calibration()
    print(f"benchmark: {benchmark} ({circuit.gate_count()} gates, "
          f"{circuit.cnot_count()} CNOTs), correct answer {answer!r}")
    print(f"machine:   {calibration.topology.name}, mean CNOT error "
          f"{calibration.mean_cnot_error():.3f}, mean readout error "
          f"{calibration.mean_readout_error():.3f}\n")

    for options in (CompilerOptions.qiskit(),
                    CompilerOptions.r_smt_star(omega=0.5)):
        program = compile_circuit(circuit, calibration, options)
        result = execute(program, calibration, trials=TRIALS, seed=1,
                         expected=answer)
        print(program.summary())
        print(f"  placement: {program.placement}")
        print(f"  measured success rate over {TRIALS} trials: "
              f"{result.success_rate:.3f}\n")

    program = compile_circuit(circuit, calibration,
                              CompilerOptions.r_smt_star())
    print("optimized OpenQASM (first 12 lines):")
    for line in program.qasm().splitlines()[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
