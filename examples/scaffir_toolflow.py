#!/usr/bin/env python3
"""Full toolflow from ScaffIR source text to optimized OpenQASM.

The paper compiles Scaffold programs (via ScaffCC's LLVM IR) down to
OpenQASM for IBMQ16. This example mirrors that flow with the ScaffIR
front end: parse a hand-written hidden-shift program, compile it
noise-adaptively, and emit the machine-level OpenQASM.

Run: python examples/scaffir_toolflow.py
"""

from repro import (
    CompilerOptions,
    compile_circuit,
    default_ibmq16_calibration,
    execute,
    parse_scaffir,
)

HS4_SOURCE = """
// Hidden shift on 4 qubits, shift = 1010 (cbit 0 first).
qubits 4
cbits 4
h q0
h q1
h q2
h q3
x q0
x q2
// oracle f: CZ pairs (0,2) and (1,3), each CZ = H.CX.H
h q2
cx q0, q2
h q2
h q3
cx q1, q3
h q3
x q0
x q2
h q0
h q1
h q2
h q3
// dual oracle
h q2
cx q0, q2
h q2
h q3
cx q1, q3
h q3
h q0
h q1
h q2
h q3
measure q0 -> c0
measure q1 -> c1
measure q2 -> c2
measure q3 -> c3
"""


def main() -> None:
    circuit = parse_scaffir(HS4_SOURCE, name="HS4-from-source")
    print(f"parsed {circuit.name}: {circuit.gate_count()} gates, "
          f"{circuit.cnot_count()} CNOTs on {circuit.n_qubits} qubits")

    calibration = default_ibmq16_calibration()
    program = compile_circuit(circuit, calibration,
                              CompilerOptions.r_smt_star())
    print(program.summary())

    result = execute(program, calibration, trials=2048, seed=0,
                     expected="1010")
    print(f"measured success rate: {result.success_rate:.3f} "
          f"(ideal answer 1010)")

    print("\ncompiled OpenQASM:")
    print(program.qasm())


if __name__ == "__main__":
    main()
