#!/usr/bin/env python3
"""Bring your own machine: calibration files and custom topologies.

Shows the library's machine-model API end to end:

1. build a custom 4x4 grid device;
2. hand-author a calibration with one "broken" region (a hot corner
   with terrible CNOT and readout errors);
3. compile a program and verify the noise-adaptive mapper steers clear
   of the broken region while the baseline walks right into it;
4. round-trip the calibration through JSON, as a deployment would.

Run: python examples/custom_machine.py
"""

from repro import CompilerOptions, compile_circuit, execute
from repro.hardware import (
    Calibration,
    EdgeCalibration,
    GridTopology,
    QubitCalibration,
)
from repro.programs import bernstein_vazirani


def build_machine() -> Calibration:
    """A 4x4 grid whose top-left corner is nearly unusable."""
    topo = GridTopology(4, 4, name="demo4x4")
    broken = {0, 1, 4, 5}  # the top-left 2x2 block
    qubits = {}
    for q in topo.iter_qubits():
        bad = q in broken
        qubits[q] = QubitCalibration(
            t1_us=30.0 if bad else 90.0,
            t2_us=20.0 if bad else 75.0,
            readout_error=0.30 if bad else 0.04,
            single_qubit_error=0.01 if bad else 0.001,
        )
    edges = {}
    for a, b in topo.edges():
        bad = a in broken or b in broken
        edges[(a, b)] = EdgeCalibration(
            cnot_error=0.25 if bad else 0.02,
            cnot_duration_slots=4.0 if bad else 2.5,
        )
    return Calibration(topology=topo, qubits=qubits, edges=edges,
                       label="demo with broken corner")


def main() -> None:
    calibration = build_machine()
    circuit = bernstein_vazirani([1, 1, 1], name="BV4")
    answer = "111"

    for options in (CompilerOptions.qiskit(),
                    CompilerOptions.r_smt_star()):
        program = compile_circuit(circuit, calibration, options)
        result = execute(program, calibration, trials=2048, seed=0,
                         expected=answer)
        used = sorted(program.placement.values())
        in_broken = [h for h in used if h in {0, 1, 4, 5}]
        print(f"{options.variant:8s} places qubits at {used} "
              f"({len(in_broken)} inside the broken corner); "
              f"success rate {result.success_rate:.3f}")

    text = calibration.to_json()
    back = Calibration.from_json(text)
    assert back.to_dict() == calibration.to_dict()
    print(f"\ncalibration JSON round-trip OK "
          f"({len(text.splitlines())} lines); the noise-adaptive "
          f"mapping avoids the broken block entirely.")


if __name__ == "__main__":
    main()
