#!/usr/bin/env python3
"""Daily recompilation study (the paper's Figure-6 workflow).

NISQ machines drift: the qubits and couplings that are most reliable
today may be the worst next week. This example simulates a week of
operation. Each "morning" it fetches the day's calibration and compiles
the Toffoli benchmark three ways:

* ``frozen``   — R-SMT* mapping compiled once on day 0 and reused
  (what you get without noise adaptivity);
* ``t-smt*``   — recompiled daily, but optimizing only duration;
* ``r-smt*``   — recompiled daily against the day's error rates.

Run: python examples/daily_recompilation.py
"""

from repro import CompilerOptions, CalibrationGenerator, compile_circuit, execute
from repro.hardware import NoiseProfile, ibmq16_topology
from repro.programs import build_benchmark, expected_output

DAYS = 7
TRIALS = 1024

#: A machine whose day-to-day drift rivals its fabrication spread —
#: the regime where daily recompilation pays off most visibly.
DRIFTY = NoiseProfile(drift_sigma=0.5, drift_rho=0.4)


def main() -> None:
    circuit = build_benchmark("Toffoli")
    answer = expected_output("Toffoli")
    generator = CalibrationGenerator(ibmq16_topology(), seed=2019,
                                     profile=DRIFTY)

    day0 = generator.snapshot(0)
    frozen = compile_circuit(circuit, day0, CompilerOptions.r_smt_star())

    print(f"{'day':>4} {'frozen':>8} {'t-smt*':>8} {'r-smt*':>8}")
    wins = {"frozen": 0.0, "t-smt*": 0.0, "r-smt*": 0.0}
    for day in range(DAYS):
        cal = generator.snapshot(day)
        daily_t = compile_circuit(circuit, cal,
                                  CompilerOptions.t_smt_star(routing="1bp"))
        daily_r = compile_circuit(circuit, cal,
                                  CompilerOptions.r_smt_star())
        rates = {}
        for label, program in (("frozen", frozen), ("t-smt*", daily_t),
                               ("r-smt*", daily_r)):
            result = execute(program, cal, trials=TRIALS, seed=100 + day,
                             expected=answer)
            rates[label] = result.success_rate
            wins[label] += result.success_rate
        print(f"{day:>4} {rates['frozen']:>8.3f} {rates['t-smt*']:>8.3f} "
              f"{rates['r-smt*']:>8.3f}")

    print("\nweek-average success rate:")
    for label, total in wins.items():
        print(f"  {label:8s} {total / DAYS:.3f}")
    print("\nNoise-adaptive daily recompilation (r-smt*) should lead; "
          "the frozen mapping decays as the machine drifts away from "
          "day 0's calibration.")


if __name__ == "__main__":
    main()
