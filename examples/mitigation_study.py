#!/usr/bin/env python3
"""Error-mitigation study: how much success can software buy back?

The paper's compiler raises success probability by mapping around
noise; the mitigation subsystem (``repro.mitigation``) raises it
further in post-processing. This example walks the three estimator
families on one benchmark, then runs the full benchmark x variant x
strategy grid through the sweep runtime:

1. zero-noise extrapolation (ZNE) with trace-level noise scaling — the
   compiled program and its lowered trace are shared across every
   noise scale, nothing is recompiled;
2. ZNE with unitary gate folding — the ``fold`` pass joins the
   standard compiler pipeline and re-lowers a 3x-longer circuit (the
   hardware-faithful amplifier, for cross-checking the cheap one);
3. readout-confusion inversion — per-qubit confusion matrices from
   the calibration's readout fidelities, inverted on the measured
   distribution at zero extra executions;
4. the ``readout+zne`` stack, which corrects every scaled execution
   before extrapolating.

Run: PYTHONPATH=src python examples/mitigation_study.py
"""

from repro import CompilerOptions, compile_circuit, \
    default_ibmq16_calibration, execute
from repro.experiments import run_mitigation_study
from repro.mitigation import (
    MitigationContext,
    ReadoutStrategy,
    ZneStrategy,
    strategy_from_spec,
)
from repro.programs import build_benchmark, expected_output

TRIALS = 2048


def single_benchmark_walkthrough() -> None:
    benchmark = "Toffoli"
    calibration = default_ibmq16_calibration()
    circuit = build_benchmark(benchmark)
    answer = expected_output(benchmark)
    compiled = compile_circuit(circuit, calibration,
                               CompilerOptions.r_smt_star())
    baseline = execute(compiled, calibration, trials=TRIALS, seed=7,
                       expected=answer)
    context = MitigationContext(compiled=compiled, calibration=calibration,
                                baseline=baseline, trials=TRIALS, seed=7)

    print(f"{benchmark}: raw success {baseline.success_rate:.4f}")
    strategies = [
        ZneStrategy(),                                    # trace scaling
        ZneStrategy(scales=(1.0, 3.0), amplifier="fold"),  # gate folding
        ReadoutStrategy(),                                # confusion inverse
        strategy_from_spec("readout+zne"),                # the stack
    ]
    for strategy in strategies:
        outcome = strategy.mitigate(context)
        print(f"  {outcome.strategy:55s} -> "
              f"{outcome.mitigated_success:.4f} "
              f"(gain {outcome.gain:+.4f}, "
              f"{outcome.executions} extra executions)")


def full_grid() -> None:
    print("\nbenchmark x variant x strategy grid "
          "(one compile per configuration, scaled traces cached):\n")
    study = run_mitigation_study(trials=1024, workers=0)
    print(study.to_text())


def main() -> None:
    single_benchmark_walkthrough()
    full_grid()


if __name__ == "__main__":
    main()
