"""Shared fixtures for the figure-regeneration benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper,
asserts its qualitative shape, and records the rendered rows/series in
``benchmark.extra_info["result"]`` (also echoed to stdout with ``-s``).
"""

import os

import pytest

from repro.hardware import ReliabilityTables, default_ibmq16_calibration

#: CI smoke mode (REPRO_BENCH_SMOKE=1): benches shrink their grids and
#: skip the perf-bar assertions, keeping only shape/identity checks —
#: enough to catch import rot and contract drift without perf variance.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Trials per execution in the bench suite. Smaller than the paper's
#: 8192 hardware shots but enough to resolve the multi-x effects.
BENCH_TRIALS = 128 if SMOKE else 512


@pytest.fixture(scope="session")
def calibration():
    """The repo-wide default synthetic IBMQ16 snapshot."""
    return default_ibmq16_calibration()


@pytest.fixture(scope="session")
def tables(calibration):
    return ReliabilityTables(calibration)


def record(benchmark, result_text: str) -> None:
    """Attach a rendered figure/table to the benchmark record."""
    benchmark.extra_info["result"] = result_text
    print("\n" + result_text)


def measure(benchmark, fn, *args, **kwargs):
    """Run a micro-benchmark subject, honoring smoke mode.

    In smoke mode one measured round suffices (CI only checks the
    subject still runs and its assertions hold); otherwise defer to
    pytest-benchmark's own calibration for stable statistics.
    """
    if SMOKE:
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return benchmark(fn, *args, **kwargs)
