"""Bench: regenerate Figure 9 (durations vs gate times, routing, objective)."""

from conftest import SMOKE, record

from repro.experiments import run_fig9

SUBSET = ["BV4", "HS4", "Toffoli", "QFT"] if SMOKE else None


def test_fig9_execution_durations(benchmark, calibration):
    result = benchmark.pedantic(
        run_fig9, kwargs={"calibration": calibration, "subset": SUBSET},
        rounds=1, iterations=1)
    for bench in result.runs:
        uniform = result.duration(bench, "t-smt(rr)")
        calibrated = result.duration(bench, "t-smt*(rr)")
        # Calibrated gate times never lengthen the schedule.
        assert calibrated <= uniform + 1e-9, bench
        # Routing policy barely matters at NISQ-benchmark size.
        assert abs(result.duration(bench, "t-smt*(1bp)")
                   - calibrated) <= 0.3 * max(calibrated, 1.0), bench
        # R-SMT* stays close to the duration-optimal variant.
        assert result.duration(bench, "r-smt*(1bp)") <= \
            1.5 * result.duration(bench, "t-smt*(1bp)"), bench
    assert result.geomean_gain_over_uniform() >= 1.0
    record(benchmark, result.to_text())
