"""Bench: regenerate Figure 8 (BV4 mappings under the four objectives)."""

from conftest import record

from repro.experiments import run_fig8


def test_fig8_bv4_mappings(benchmark, calibration):
    result = benchmark.pedantic(
        run_fig8, kwargs={"calibration": calibration},
        rounds=1, iterations=1)
    qiskit = result.compiled["qiskit"]
    balanced = result.compiled["r-smt*(w=0.5)"]
    tsmt = result.compiled["t-smt*"]
    # (a) Qiskit's lexicographic layout needs SWAPs.
    assert qiskit.swap_count > 0
    # (b) T-SMT* finds a zero-SWAP mapping.
    assert tsmt.swap_count == 0
    # (d) w=0.5 is zero-SWAP *and* the most reliable of the four.
    assert balanced.swap_count == 0
    assert balanced.estimated_success >= max(
        p.estimated_success for p in result.compiled.values()) - 1e-9
    record(benchmark, result.to_text())
