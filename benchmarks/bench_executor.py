"""Executor engine throughput: legacy per-trial vs vectorized batched.

Tracks the batched-engine speedup in the perf trajectory. The batched
engine must stay >= 10x faster than ``engine="trial"`` at 4096 trials
on BV4 (the headline acceptance bar for the vectorized engine).
"""

import statistics
import time

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.programs import build_benchmark, expected_output
from repro.simulator import execute

from conftest import SMOKE, record


@pytest.fixture(scope="module")
def bv4_program(calibration, tables):
    return compile_circuit(build_benchmark("BV4"), calibration,
                           CompilerOptions.r_smt_star(), tables=tables)


@pytest.mark.parametrize("trials", [512, 4096])
@pytest.mark.parametrize("engine", ["trial", "batched"])
def test_execute_bv4(benchmark, bv4_program, calibration, engine, trials):
    result = benchmark.pedantic(
        execute, args=(bv4_program, calibration),
        kwargs={"trials": trials, "seed": 0,
                "expected": expected_output("BV4"), "engine": engine},
        rounds=3, iterations=1, warmup_rounds=1)
    assert sum(result.counts.values()) == trials


def test_batched_speedup_bv4_4096(benchmark, bv4_program, calibration):
    """Median batched speedup over the per-trial engine at 4096 trials."""
    kwargs = {"trials": 4096, "seed": 0,
              "expected": expected_output("BV4")}

    def timed(engine, rounds=3):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            execute(bv4_program, calibration, engine=engine, **kwargs)
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    execute(bv4_program, calibration, engine="batched", **kwargs)  # warm
    legacy = timed("trial")
    batched = benchmark.pedantic(
        execute, args=(bv4_program, calibration),
        kwargs={**kwargs, "engine": "batched"},
        rounds=5, iterations=1)
    batched_median = benchmark.stats.stats.median
    speedup = legacy / batched_median
    benchmark.extra_info["speedup"] = speedup
    record(benchmark,
           f"BV4 @4096 trials: trial={legacy * 1e3:.1f} ms  "
           f"batched={batched_median * 1e3:.1f} ms  "
           f"speedup={speedup:.1f}x")
    assert sum(batched.counts.values()) == 4096
    if not SMOKE:
        assert speedup >= 10.0
