"""Bench: regenerate Figure 10 (heuristics vs the optimal mapper)."""

from conftest import BENCH_TRIALS, SMOKE, record

from repro.experiments import run_fig10

SUBSET = ["BV4", "HS4", "Toffoli", "Peres"] if SMOKE else None


def test_fig10_heuristic_success(benchmark, calibration):
    result = benchmark.pedantic(
        run_fig10, kwargs={"calibration": calibration,
                           "trials": BENCH_TRIALS, "subset": SUBSET},
        rounds=1, iterations=1)
    # Shape: GreedyE* comparable to R-SMT* (paper: "as successful in
    # all cases", occasionally better), and E* >= V* in aggregate.
    assert result.geomean_ratio("greedye*") > 0.85
    assert result.geomean_ratio("greedye*") >= \
        result.geomean_ratio("greedyv*") - 0.05
    record(benchmark, result.to_text())
