"""Bench: regenerate Figure 11 (compile-time scalability sweep).

The paper's full sweep reaches 3-hour compiles for R-SMT* at 32 qubits;
here the optimal mapper is capped per compile, which preserves the
trend (SMT exploding, greedy flat in the milliseconds).
"""

from conftest import SMOKE, record

from repro.experiments import run_fig11

KWARGS = {"smt_qubits": (4, 8),
          "greedy_qubits": (4, 8, 32),
          "gate_counts": (128, 256),
          "smt_time_cap": 2.0,
          "clifford_qubits": (30,),
          "clifford_trials": 256} if SMOKE else \
         {"smt_qubits": (4, 8, 32),
          "greedy_qubits": (4, 8, 32, 128),
          "gate_counts": (128, 256, 512, 1024, 2048),
          "smt_time_cap": 10.0,
          "clifford_qubits": (30, 60, 100),
          "clifford_trials": 2048}


def test_fig11_compile_time_scaling(benchmark):
    result = benchmark.pedantic(run_fig11, kwargs=KWARGS,
                                rounds=1, iterations=1)
    greedy = [p for p in result.points if p.variant == "greedye*"]
    smt = [p for p in result.points if p.variant == "r-smt*"]
    # The executed stabilizer tier reports a success rate at sizes no
    # dense engine could even allocate (2**30+ amplitudes).
    stab = [p for p in result.points if p.variant == "stabilizer"]
    assert stab and all(p.success is not None for p in stab)
    assert max(p.n_qubits for p in stab) >= 30
    # Greedy stays under a second everywhere, up to 128q / 2048 gates.
    assert all(p.compile_time < 1.0 for p in greedy)
    # SMT compile time dwarfs greedy once programs stop being toys
    # (at 4 qubits the optimal search space is tiny; the paper's own
    # curves show the separation opening with size).
    for p in smt:
        if p.n_qubits < 8:
            continue
        match = next(g for g in greedy
                     if (g.n_qubits, g.n_gates) == (p.n_qubits, p.n_gates))
        assert p.compile_time > match.compile_time
    # SMT cost grows steeply with qubit count.
    smt_by_qubits = {}
    for p in smt:
        smt_by_qubits.setdefault(p.n_qubits, []).append(p.compile_time)
    if 4 in smt_by_qubits and 32 in smt_by_qubits:
        assert max(smt_by_qubits[32]) > 10 * max(smt_by_qubits[4])
    # At 32 qubits the optimal mapper hits its cap (the paper's 3-hour
    # regime): at least one truncated sample. (Smoke mode stops at 8
    # qubits, where the search still finishes inside the cap.)
    if not SMOKE:
        assert any(p.truncated for p in smt if p.n_qubits == 32)
    record(benchmark, result.to_text())
