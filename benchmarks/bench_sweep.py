"""Sweep-runtime throughput: the parallel cached path vs serial recompiles.

The acceptance bar for the sweep runtime: a combined fig5+fig6 scenario
grid (benchmark x variant x calibration-day, several executor seeds per
configuration — the repo's standard error-bar sweep) must run >= 2x
faster through ``run_sweep(..., workers=4)`` than through the pre-sweep
serial path that recompiles and re-lowers every cell, and the parallel
results must be bit-identical to both the serial sweep and the
uncached baseline.

The win is by construction: the grid has ``len(SEEDS)`` cells per
distinct configuration, so the compile and trace caches cut the
compile/lower work to ``1/len(SEEDS)``, and compile-key-aware
scheduling keeps that true at any worker count (workers add scale-out
on multi-core hosts on top).
"""

import time

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.hardware import CalibrationGenerator, ibmq16_topology
from repro.programs import get_benchmark
from repro.runtime import CompileCache, SweepCell, run_sweep
from repro.simulator import execute

from conftest import SMOKE, record

#: Executor seeds per configuration (the error-bar replication that
#: makes cross-cell caching pay). Smoke mode shrinks the grid to an
#: import-and-run check (perf bars skipped).
SEEDS = (7, 8) if SMOKE else (7, 8, 9, 10)
TRIALS = 64 if SMOKE else 256

FIG5_BENCHMARKS = ("BV4", "HS4") if SMOKE \
    else ("BV4", "HS4", "HS6", "Toffoli", "Peres", "QFT")
FIG6_BENCHMARKS = ("BV4",) if SMOKE else ("BV4", "HS6", "Toffoli")
FIG6_DAYS = 2 if SMOKE else 3


def combined_grid():
    """fig5 (day 0, three variants) + fig6 (three days, two variants)."""
    generator = CalibrationGenerator(ibmq16_topology(), seed=2019)
    calibrations = [generator.snapshot(day) for day in range(FIG6_DAYS)]
    specs = {name: get_benchmark(name)
             for name in set(FIG5_BENCHMARKS) | set(FIG6_BENCHMARKS)}
    circuits = {name: spec.build() for name, spec in specs.items()}

    cells = []
    fig5_variants = [CompilerOptions.qiskit(),
                     CompilerOptions.t_smt_star(routing="1bp"),
                     CompilerOptions.r_smt_star(omega=0.5)]
    for name in FIG5_BENCHMARKS:
        for options in fig5_variants:
            for seed in SEEDS:
                cells.append(SweepCell(
                    circuit=circuits[name], calibration=calibrations[0],
                    options=options, expected=specs[name].expected_output,
                    trials=TRIALS, seed=seed,
                    key=("fig5", name, options.variant, seed)))
    fig6_variants = [CompilerOptions.t_smt_star(routing="1bp"),
                     CompilerOptions.r_smt_star(omega=0.5)]
    for day in range(FIG6_DAYS):
        for name in FIG6_BENCHMARKS:
            for options in fig6_variants:
                for seed in SEEDS:
                    cells.append(SweepCell(
                        circuit=circuits[name],
                        calibration=calibrations[day], options=options,
                        expected=specs[name].expected_output,
                        trials=TRIALS, seed=seed + day,
                        key=("fig6", name, options.variant, day, seed)))
    return cells


def run_serial_uncached(cells):
    """The pre-sweep harness loop: recompile + re-lower every cell.

    Reliability tables are still shared per calibration (the old
    harnesses did that too), so the comparison isolates exactly what
    the sweep runtime adds: compile/trace caching and the pool.
    """
    tables = CompileCache()  # reused purely as the per-calibration
    counts = []              # tables memo the old loops kept by hand
    for cell in cells:
        compiled = compile_circuit(cell.circuit, cell.calibration,
                                   cell.options,
                                   tables=tables.tables_for(cell.calibration))
        result = execute(compiled, cell.calibration, trials=cell.trials,
                         seed=cell.seed, expected=cell.expected)
        counts.append(result.counts)
    return counts


def test_sweep_speedup_and_identity(benchmark):
    """>= 2x vs the serial uncached path; bit-identical at any width."""
    cells = combined_grid()
    distinct = len({c.compile_key() for c in cells})

    start = time.perf_counter()
    baseline_counts = run_serial_uncached(cells)
    baseline_seconds = time.perf_counter() - start

    parallel = benchmark.pedantic(run_sweep, args=(cells,),
                                  kwargs={"workers": 4},
                                  rounds=3, iterations=1, warmup_rounds=1)
    sweep_seconds = benchmark.stats.stats.median
    serial_sweep = run_sweep(cells, workers=0)

    # Bit-identity: uncached baseline == serial sweep == parallel sweep.
    for cell, base, ser, par in zip(cells, baseline_counts,
                                    serial_sweep, parallel):
        assert base == ser.execution.counts, cell.key
        assert base == par.execution.counts, cell.key

    # Cache behavior is grid-determined: one miss per distinct
    # configuration, a hit for every replicated cell, identical at
    # every worker count.
    for sweep in (serial_sweep, parallel):
        assert sweep.compile_stats.misses == distinct
        assert sweep.compile_stats.hits == len(cells) - distinct
        assert sweep.trace_stats.hits == len(cells) - distinct
    hit_rate = parallel.compile_stats.hit_rate
    if not SMOKE:
        assert hit_rate >= 0.6

    speedup = baseline_seconds / sweep_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["compile_hit_rate"] = hit_rate
    record(benchmark,
           f"fig5+fig6 grid: {len(cells)} cells ({distinct} distinct "
           f"configs), serial uncached={baseline_seconds:.2f}s  "
           f"sweep(workers=4)={sweep_seconds:.2f}s  "
           f"speedup={speedup:.1f}x  compile hit rate={hit_rate:.0%}")
    if not SMOKE:
        assert speedup >= 2.0


def test_sweep_scales_with_replication(benchmark):
    """Marginal cost of extra seeds is sampling-only (cache amortized)."""
    base_cells = combined_grid()
    # Keep exactly one seed per distinct configuration.
    seen, one_seed = set(), []
    for cell in base_cells:
        config = cell.compile_key()
        if config not in seen:
            seen.add(config)
            one_seed.append(cell)

    start = time.perf_counter()
    run_sweep(one_seed)
    single = time.perf_counter() - start

    full = benchmark.pedantic(run_sweep, args=(base_cells,),
                              rounds=3, iterations=1, warmup_rounds=1)
    replicated = benchmark.stats.stats.median
    ratio = replicated / single
    benchmark.extra_info["replication_cost_ratio"] = ratio
    record(benchmark,
           f"1 seed/config: {single:.2f}s; {len(SEEDS)} seeds/config: "
           f"{replicated:.2f}s ({ratio:.2f}x for {len(SEEDS)}x the cells)")
    assert len(full) == len(base_cells)
    if not SMOKE:
        # Tripling the cells must cost far less than tripling the work.
        assert ratio < 2.0
