"""Fault-recovery overhead: a sweep surviving a worker kill vs clean.

The robustness bar for the supervised pool: on a replicated grid, one
transiently killed worker (the batch is resubmitted to a fresh
process) must cost less than re-running the whole sweep — recovery
re-executes only the lost batch's unfinished cells — and the recovered
sweep's results must be bit-identical to the fault-free run. Smoke
mode keeps the identity check and drops the perf bar.
"""

import os

import pytest

from repro.compiler import CompilerOptions
from repro.programs import get_benchmark
from repro.runtime import FaultPlan, SweepCell, run_sweep

from conftest import SMOKE, record

SEEDS = (7, 8) if SMOKE else (7, 8, 9, 10)
TRIALS = 64 if SMOKE else 256
BENCHMARKS = ("BV4", "Toffoli", "HS2")
WORKERS = 3

#: Grid index whose first attempt kills its worker: the second cell of
#: the middle benchmark's batch, so the retry path re-runs a partly
#: finished batch rather than a fresh one.
KILLED = len(SEEDS) + 1


def build_grid(calibration):
    options = CompilerOptions.qiskit()
    cells = []
    for name in BENCHMARKS:
        spec = get_benchmark(name)
        circuit = spec.build()
        for seed in SEEDS:
            cells.append(SweepCell(
                circuit=circuit, calibration=calibration, options=options,
                expected=spec.expected_output, trials=TRIALS, seed=seed,
                key=(name, seed)))
    return cells


@pytest.fixture(autouse=True)
def armed(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "1")


def test_transient_kill_recovery(benchmark, calibration):
    cells = build_grid(calibration)
    clean = run_sweep(cells, workers=WORKERS)
    assert clean.ok

    def recover():
        return run_sweep(cells, workers=WORKERS,
                         faults=FaultPlan(kill_on={KILLED: 1}))

    if SMOKE:
        faulted = benchmark.pedantic(recover, rounds=1, iterations=1)
    else:
        faulted = benchmark.pedantic(recover, rounds=5, iterations=1)
    assert faulted.ok
    for a, b in zip(clean, faulted):
        assert a.execution.counts == b.execution.counts
    lines = [f"clean sweep: {clean.summary()}",
             f"recovered sweep (1 worker killed): {faulted.summary()}"]
    if not SMOKE:
        # Recovery re-runs at most one batch; well under a full re-run.
        assert faulted.wall_time < 2.0 * clean.wall_time + 1.0
        lines.append(f"overhead: {faulted.wall_time / clean.wall_time:.2f}x "
                     "of clean wall time")
    record(benchmark, "\n".join(lines))
