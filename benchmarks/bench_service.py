"""Service coalescing: N clients submitting one grid ≈ one client.

The perf bar behind the compile service's admission design: identical
in-flight submits coalesce onto one execution (and completed ones are
served from the checkpoint journal), so N concurrent clients
submitting the *same* grid must cost well under N single-client runs —
the pinned bar is < 1.5x one client's wall time. Every client must
still receive results bit-identical to an in-process ``run_sweep``.
Smoke mode keeps the identity and coalescing checks and drops the
perf bar.
"""

import threading
import time

from repro.compiler import CompilerOptions
from repro.programs import get_benchmark
from repro.runtime import SweepCell, run_sweep
from repro.service import ReproServer, ServerConfig, submit_sweep

from conftest import SMOKE, record

SEEDS = (7,) if SMOKE else (7, 8)
TRIALS = 64 if SMOKE else 256
BENCHMARKS = ("BV4", "Toffoli") if SMOKE else ("BV4", "Toffoli", "HS2")
CLIENTS = 4


def build_grid(calibration):
    options = CompilerOptions.qiskit()
    cells = []
    for name in BENCHMARKS:
        spec = get_benchmark(name)
        circuit = spec.build()
        for seed in SEEDS:
            cells.append(SweepCell(
                circuit=circuit, calibration=calibration, options=options,
                expected=spec.expected_output, trials=TRIALS, seed=seed,
                key=(name, seed)))
    return cells


def served_grid(cells, cache_dir, n_clients):
    """Wall time of *n_clients* concurrently submitting *cells* to a
    fresh server, plus every client's results and the server's
    admission counters."""
    server = ReproServer(ServerConfig(cache_dir=cache_dir))
    host, port = server.start()
    outcomes = {}
    try:
        started = time.perf_counter()

        def one_client(tag):
            outcomes[tag] = submit_sweep(
                cells, host, port, tenant=f"client-{tag}",
                deadline=600.0, jitter_seed=tag)

        threads = [threading.Thread(target=one_client, args=(tag,))
                   for tag in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        health = server.health()
    finally:
        server.stop()
    return elapsed, outcomes, health


def test_concurrent_identical_grids_coalesce(benchmark, calibration,
                                             tmp_path):
    cells = build_grid(calibration)
    reference = run_sweep(cells)
    assert reference.ok

    single_time, single, _ = served_grid(
        cells, tmp_path / "single", n_clients=1)

    def fan_out():
        return served_grid(cells, tmp_path / "multi", n_clients=CLIENTS)

    multi_time, outcomes, health = benchmark.pedantic(
        fan_out, rounds=1, iterations=1)

    # Every client got the full grid, bit-identical to in-process.
    assert len(outcomes) == CLIENTS
    by_key = {r.key: r for r in reference}
    for results in list(outcomes.values()) + list(single.values()):
        assert len(results) == len(cells)
        for got in results:
            assert got.ok
            assert got.execution.counts == by_key[got.key].execution.counts
    # The duplicates were absorbed (coalesced in flight, or served from
    # the journal) rather than each becoming its own execution.
    assert health["coalesced"] >= 1 or \
        health["served"] < CLIENTS * len(cells)
    lines = [f"grid: {len(cells)} cells, {CLIENTS} concurrent clients",
             f"single client: {single_time:.2f}s, "
             f"{CLIENTS} clients: {multi_time:.2f}s",
             f"admission: {health['admitted']} admitted, "
             f"{health['coalesced']} coalesced, "
             f"{health['served']} executed"]
    if not SMOKE:
        # The pinned coalescing bar: N concurrent clients of one grid
        # cost less than 1.5x one client (plus a small constant for
        # thread/transport overhead on tiny grids).
        assert multi_time < 1.5 * single_time + 1.0, \
            f"coalescing bar missed: {multi_time:.2f}s vs " \
            f"{single_time:.2f}s single"
        lines.append(f"overhead: {multi_time / single_time:.2f}x "
                     "of single-client wall time")
    record(benchmark, "\n".join(lines))
