"""Mitigation-runtime cost: trace-level noise scaling vs fold-and-recompile.

The acceptance bar for the ZNE fast path: sweeping noise scales by
rescaling the lowered trace (``ZneStrategy(amplifier="trace")`` through
the sweep runtime) must run >= 5x faster than the naive
fold-and-recompile loop that rebuilds a folded physical program through
a fresh pipeline for every (seed, scale) point — because the trace path
compiles exactly **once** for the whole sweep (asserted on the compile
counters) and amplifies noise with a clipped numpy multiply, while
folding re-pays the SMT mapping and a from-scratch trace lowering of a
3x-longer circuit per scale.

Also pinned here (mirrors tests/test_mitigation.py): scaled-noise cells
show nonzero trace-cache hits — replicated cells reuse each scale's
lowered trace — and ZNE lifts mean success over the raw baseline.
"""

import time

from repro.compiler import CompilerOptions, compile_circuit
from repro.hardware import default_ibmq16_calibration
from repro.mitigation import ZneStrategy, folded_pipeline
from repro.programs import get_benchmark
from repro.runtime import SweepCell, run_sweep
from repro.simulator import execute

from conftest import BENCH_TRIALS, SMOKE, record

#: Executor seeds (error-bar replication, as the harnesses run it).
SEEDS = (7, 8) if SMOKE else (7, 8, 9)

#: The noise-scale schedule under test. Non-integer scales are exact
#: for the trace amplifier and partially folded by the naive loop.
SCALES = (1.0, 2.0, 3.0) if SMOKE else (1.0, 1.5, 2.0, 2.5, 3.0)

#: HS6 has the suite's most expensive SMT mapping (~0.4s) against a
#: ~10ms execution, so the compile-vs-rescale contrast is what this
#: bench actually measures rather than sampling noise.
BENCHMARK = "HS6"


def trace_sweep(circuit, expected, cal, options):
    """The fast path: one compile, rescaled traces, shared caches."""
    strategy = ZneStrategy(scales=SCALES, amplifier="trace")
    cells = [SweepCell(circuit=circuit, calibration=cal, options=options,
                       expected=expected, trials=BENCH_TRIALS, seed=seed,
                       mitigation=strategy, key=(BENCHMARK, seed))
             for seed in SEEDS]
    return run_sweep(cells)


def fold_and_recompile(circuit, expected, cal, options):
    """The naive loop: a fresh folded compilation per (seed, scale)."""
    successes = []
    for seed in SEEDS:
        compiled = compile_circuit(circuit, cal, options)
        baseline = execute(compiled, cal, trials=BENCH_TRIALS, seed=seed,
                           expected=expected)
        points = [(1.0, baseline.success_rate)]
        for scale in SCALES[1:]:
            program = folded_pipeline(options, scale).run(circuit, cal,
                                                          options)
            result = execute(program, cal, trials=BENCH_TRIALS, seed=seed,
                             expected=expected)
            points.append((scale, result.success_rate))
        successes.append(points)
    return successes


def test_trace_scaling_beats_fold_and_recompile(benchmark):
    """>= 5x for the scale sweep; zero recompiles on the trace path."""
    cal = default_ibmq16_calibration()
    spec = get_benchmark(BENCHMARK)
    circuit = spec.build()
    options = CompilerOptions.r_smt_star()

    start = time.perf_counter()
    fold_points = fold_and_recompile(circuit, spec.expected_output, cal,
                                     options)
    fold_seconds = time.perf_counter() - start

    sweep = benchmark.pedantic(
        trace_sweep, args=(circuit, spec.expected_output, cal, options),
        rounds=3, iterations=1, warmup_rounds=1)
    trace_seconds = benchmark.stats.stats.median

    # Trace-level scaling avoids recompilation entirely: one compile
    # for the whole (seed x scale) sweep, served from cache thereafter.
    assert sweep.compile_stats.misses == 1
    assert sweep.compile_stats.hits == len(SEEDS) - 1
    # Scaled-noise cells share each scale's lowered trace: the later
    # seeds' scaled executions are all cache hits.
    assert sweep.trace_stats.hits >= (len(SEEDS) - 1) * len(SCALES)

    # ZNE does its job on the trace path (deterministic, seeded).
    mean_raw = sum(r.mitigation.raw_success for r in sweep) / len(sweep)
    mean_mit = sum(r.mitigation.mitigated_success
                   for r in sweep) / len(sweep)
    assert mean_mit > mean_raw
    # And both amplifiers saw a decaying success curve to extrapolate.
    for points in fold_points:
        assert points[0][1] > points[-1][1]

    speedup = fold_seconds / trace_seconds
    benchmark.extra_info["speedup"] = speedup
    record(benchmark,
           f"ZNE scale sweep on {BENCHMARK} ({len(SEEDS)} seeds x "
           f"{len(SCALES)} scales): fold-and-recompile="
           f"{fold_seconds:.2f}s  trace-scaling={trace_seconds:.2f}s  "
           f"speedup={speedup:.1f}x  "
           f"(compiles: {len(SEEDS) * len(SCALES[1:]) + len(SEEDS)} vs "
           f"{sweep.compile_stats.misses})")
    if not SMOKE:
        assert speedup >= 5.0


def test_mitigated_sweep_amortizes_like_plain_cells(benchmark):
    """Marginal cost of mitigation replicas is sampling-only."""
    cal = default_ibmq16_calibration()
    spec = get_benchmark(BENCHMARK)
    circuit = spec.build()
    options = CompilerOptions.r_smt_star()
    strategy = ZneStrategy(scales=SCALES, amplifier="trace")

    def grid(seeds):
        return [SweepCell(circuit=circuit, calibration=cal,
                          options=options, expected=spec.expected_output,
                          trials=BENCH_TRIALS, seed=seed,
                          mitigation=strategy, key=(BENCHMARK, seed))
                for seed in seeds]

    start = time.perf_counter()
    run_sweep(grid(SEEDS[:1]))
    single = time.perf_counter() - start

    sweep = benchmark.pedantic(run_sweep, args=(grid(SEEDS),),
                               rounds=3, iterations=1, warmup_rounds=1)
    replicated = benchmark.stats.stats.median
    assert len(sweep) == len(SEEDS)
    ratio = replicated / single
    benchmark.extra_info["replication_cost_ratio"] = ratio
    record(benchmark,
           f"1 mitigated cell: {single * 1000:.0f}ms; {len(SEEDS)} cells: "
           f"{replicated * 1000:.0f}ms ({ratio:.2f}x for {len(SEEDS)}x "
           f"the cells)")
    if not SMOKE:
        # The compile and every scaled lowering amortize across cells.
        assert ratio < len(SEEDS)
