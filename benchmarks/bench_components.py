"""Micro-benchmarks for the core components (compile + simulate paths).

Unlike the ``bench_fig*`` modules (which regenerate paper artifacts
once), these measure steady-state throughput of the hot paths with
multiple pytest-benchmark rounds.
"""

import pytest

from conftest import measure

from repro.compiler import CompilerOptions, compile_circuit
from repro.hardware import ReliabilityTables
from repro.programs import build_benchmark, expected_output, random_circuit
from repro.simulator import execute


@pytest.mark.parametrize("variant,options", [
    ("qiskit", CompilerOptions.qiskit()),
    ("r-smt*", CompilerOptions.r_smt_star()),
    ("greedye*", CompilerOptions.greedy_e()),
    ("greedyv*", CompilerOptions.greedy_v()),
])
def test_compile_bv4(benchmark, calibration, tables, variant, options):
    circuit = build_benchmark("BV4")
    program = measure(benchmark, compile_circuit, circuit, calibration,
                      options, tables=tables)
    assert len(program.placement) == 4


def test_compile_tsmt_star_toffoli(benchmark, calibration, tables):
    circuit = build_benchmark("Toffoli")
    options = CompilerOptions.t_smt_star()
    program = benchmark.pedantic(compile_circuit,
                                 args=(circuit, calibration, options),
                                 kwargs={"tables": tables},
                                 rounds=3, iterations=1)
    assert program.mapping.optimal


def test_reliability_tables_construction(benchmark, calibration):
    tables = measure(benchmark, ReliabilityTables, calibration)
    assert tables.best_path(0, 15).reliability > 0


def test_greedy_mapping_large_circuit(benchmark, calibration, tables):
    circuit = random_circuit(16, 1000, seed=3)
    options = CompilerOptions.greedy_e()
    program = measure(benchmark, compile_circuit, circuit, calibration,
                      options, tables=tables)
    assert len(program.placement) == 16


def test_simulate_bv4_256_trials(benchmark, calibration, tables):
    program = compile_circuit(build_benchmark("BV4"), calibration,
                              CompilerOptions.r_smt_star(), tables=tables)
    result = benchmark.pedantic(
        execute, args=(program, calibration),
        kwargs={"trials": 256, "seed": 0,
                "expected": expected_output("BV4")},
        rounds=3, iterations=1)
    assert 0.0 <= result.success_rate <= 1.0


def test_qasm_emission(benchmark, calibration, tables):
    program = compile_circuit(build_benchmark("HS6"), calibration,
                              CompilerOptions.r_smt_star(), tables=tables)
    text = measure(benchmark, program.qasm)
    assert text.startswith("OPENQASM 2.0;")
