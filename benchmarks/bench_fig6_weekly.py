"""Bench: regenerate Figure 6 (one week of daily runs, R- vs T-SMT*)."""

from conftest import BENCH_TRIALS, SMOKE, record

from repro.experiments import run_fig6

DAYS = 3 if SMOKE else 7
KWARGS = {"days": DAYS, "trials": BENCH_TRIALS}
if SMOKE:
    KWARGS["benchmarks"] = ("BV4", "Toffoli")


def test_fig6_weekly_resilience(benchmark):
    result = benchmark.pedantic(run_fig6, kwargs=KWARGS,
                                rounds=1, iterations=1)
    # Shape: R-SMT* at least matches T-SMT* on a clear majority of days
    # for every benchmark (the paper shows it winning every day).
    for bench in result.success:
        assert result.days_r_beats_t(bench) >= DAYS // 2 + 1, bench
    # Success rates wander day to day (machine drift is visible).
    for bench, by_variant in result.success.items():
        series = by_variant["r-smt*"]
        assert max(series) - min(series) > 0.01, bench
    record(benchmark, result.to_text())
