"""Multi-device sweep throughput: shared per-backend tables vs naive.

The acceptance bar for the backend axis: a fig5-style grid replicated
over three registered devices must run >= 1.5x faster through
``run_sweep`` — where each device's
:class:`~repro.hardware.ReliabilityTables` is built once and memoized
in the compile cache, and replicated cells share compilations and
lowered traces — than through a naive loop that rebuilds the tables
and recompiles for every cell. The results must be bit-identical.

The win is by construction: the naive path pays ``len(cells)`` table
constructions (all-pairs reliability Dijkstra per calibration) and
compilations, the sweep path pays one table per device and one compile
per distinct (device, benchmark, variant).
"""

import time

from conftest import SMOKE, record

from repro.backend import get_backend
from repro.compiler import CompilerOptions, compile_circuit
from repro.hardware import ReliabilityTables
from repro.programs import get_benchmark
from repro.runtime import SweepCell, run_sweep
from repro.simulator import execute

DEVICES = ("ibmq16", "ibmq20", "falcon27")
BENCHMARKS = ("BV4",) if SMOKE else ("BV4", "HS2")
SEEDS = (7,) if SMOKE else (7, 8)
TRIALS = 64 if SMOKE else 256


def device_grid():
    """The same (benchmark x variant x seed) grid on every device."""
    variants = [CompilerOptions.r_smt_star(omega=0.5),
                CompilerOptions.t_smt_star(routing="1bp")]
    cells = []
    for device in DEVICES:
        backend = get_backend(device)
        for name in BENCHMARKS:
            spec = get_benchmark(name)
            for options in variants:
                for seed in SEEDS:
                    cells.append(SweepCell(
                        circuit=spec.build(), backend=backend,
                        options=options,
                        expected=spec.expected_output,
                        trials=TRIALS, seed=seed,
                        key=(device, name, options.variant, seed)))
    return cells


def run_naive(cells):
    """Per-cell table rebuild + recompile + re-lower (no caches)."""
    results = {}
    for cell in cells:
        tables = ReliabilityTables(cell.calibration)
        compiled = compile_circuit(cell.circuit, cell.calibration,
                                   cell.options, tables=tables)
        results[cell.key] = execute(compiled, cell.calibration,
                                    trials=cell.trials, seed=cell.seed,
                                    expected=cell.expected)
    return results


def test_backend_sweep_shares_tables_and_compiles(benchmark):
    cells = device_grid()

    start = time.perf_counter()
    naive = run_naive(cells)
    naive_seconds = time.perf_counter() - start

    sweep = benchmark.pedantic(run_sweep, args=(cells,),
                               rounds=1, iterations=1)
    sweep_seconds = sweep.wall_time

    # Identical sampled law: caching must not change a single count.
    for result in sweep:
        assert result.execution.counts == naive[result.key].counts

    # The cache structure the speedup rests on: one compile per
    # distinct configuration, every replicated cell a hit.
    distinct = len({c.compile_key() for c in cells})
    assert sweep.compile_stats.misses == distinct
    assert sweep.compile_stats.hits == len(cells) - distinct

    speedup = naive_seconds / sweep_seconds
    lines = [f"{len(cells)} cells over {len(DEVICES)} devices",
             f"naive per-cell rebuilds: {naive_seconds:.2f}s",
             f"run_sweep (shared tables/compiles): {sweep_seconds:.2f}s",
             f"speedup: {speedup:.1f}x (bar: >=1.5x)",
             sweep.summary()]
    record(benchmark, "\n".join(lines))
    if not SMOKE:
        assert speedup >= 1.5, f"only {speedup:.2f}x over naive"
