"""Bench: regenerate Figure 7 (objective choice: omega sweep)."""

from conftest import BENCH_TRIALS, SMOKE, record

from repro.experiments import run_fig7

KWARGS = {"trials": BENCH_TRIALS}
if SMOKE:
    KWARGS["benchmarks"] = ("BV4", "Toffoli")


def test_fig7_objective_choice(benchmark, calibration):
    result = benchmark.pedantic(
        run_fig7, kwargs={"calibration": calibration, **KWARGS},
        rounds=1, iterations=1)
    for bench in result.runs:
        balanced = result.success(bench, "r-smt*(w=0.5)")
        # 7a: w=0.5 is best or near-best among the omegas.
        for label in ("r-smt*(w=0)", "r-smt*(w=1)"):
            assert balanced >= result.success(bench, label) - 0.08, bench
        # 7b: R-SMT* duration is near T-SMT*'s optimum (within 50%).
        assert result.duration(bench, "r-smt*(w=0.5)") <= \
            1.5 * result.duration(bench, "t-smt*")
        # 7c: every configuration compiles in under a minute.
        for label in result.labels:
            assert result.compile_time(bench, label) < 60.0
    record(benchmark, result.to_text())
