"""Bench: regenerate Table 2 (benchmark characteristics)."""

from conftest import record

from repro.experiments import run_table2


def test_table2_benchmark_characteristics(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    assert len(result.rows) == 12
    for row in result.rows:
        assert row.qubits == row.paper_qubits
        assert abs(row.cnots - row.paper_cnots) <= 3
    record(benchmark, result.to_text())
