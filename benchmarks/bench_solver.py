"""Bench: the noise-adaptive mapping solver fast path on the fig11 ladder.

Compares three solver configurations on the Figure-11 random-program
ladder (the paper's compile-time scalability sweep):

* **seed** — the pre-fast-path configuration: the generic per-value
  probing engine with an identity warm start (no symmetry breaking, no
  dominance, no greedy warm start);
* **cold** — the vectorized engine with topology-automorphism symmetry
  breaking and dominance pruning, started cold;
* **warm** — the compile fast path: vectorized engine + symmetries +
  dominance + greedy warm start (what ``ReliabilitySmtMapper`` runs).

Node counts are bit-deterministic and pinned exactly against
``solver_baseline.json``; wall clock is machine-dependent and asserted
only as an aggregate seed/warm ratio (skipped in smoke mode). Points
past 8 qubits are node-capped: the seed engine cannot finish them (the
paper reports hours at 32 qubits), so equal node budgets compare cost
per node in the scaling regime. Optimality is asserted unchanged on
every uncapped point, and the 2-worker portfolio is asserted
bit-identical to the serial proof (its merge rule reconstructs the
serial answer regardless of worker count or core count).
"""

import json
import os
import time

from conftest import SMOKE, record

from repro.compiler.mapping.smt import (
    _greedy_warm_start,
    _identity_warm_start,
    reliability_model,
)
from repro.hardware import (
    CalibrationGenerator,
    ReliabilityTables,
    square_topology,
)
from repro.programs import random_circuit
from repro.solver import BranchAndBoundSolver
from repro.solver.portfolio import PortfolioSolver

_BASELINE = os.path.join(os.path.dirname(__file__), "solver_baseline.json")


def _instance(n_qubits: int, n_gates: int):
    circuit = random_circuit(n_qubits, n_gates,
                             seed=2019 + n_qubits * 10000 + n_gates)
    topology = square_topology(max(n_qubits, 4))
    calibration = CalibrationGenerator(topology, seed=2019).snapshot(0)
    tables = ReliabilityTables(calibration)
    model, search_qubits = reliability_model(circuit, calibration,
                                             tables, 0.5)
    symmetries = calibration.topology.automorphisms()
    warm = _greedy_warm_start(circuit, calibration, tables, search_qubits)
    identity = _identity_warm_start(search_qubits)
    return model, symmetries, warm, identity


def _timed(solver, model, **kwargs):
    start = time.perf_counter()
    result = solver.solve(model, **kwargs)
    return result, time.perf_counter() - start


def _run_ladder(points):
    rows = []
    for spec in points:
        cap = spec["node_cap"]
        model, syms, warm, identity = _instance(spec["qubits"],
                                                spec["gates"])
        seed, t_seed = _timed(
            BranchAndBoundSolver(engine="generic", node_limit=cap),
            model, initial=identity)
        cold, t_cold = _timed(
            BranchAndBoundSolver(engine="vector", node_limit=cap),
            model, symmetries=syms)
        fast, t_warm = _timed(
            BranchAndBoundSolver(engine="vector", node_limit=cap),
            model, initial=warm, symmetries=syms)
        rows.append({"spec": spec, "seed": seed, "cold": cold,
                     "warm": fast, "t_seed": t_seed, "t_cold": t_cold,
                     "t_warm": t_warm})
    return rows


def test_solver_ladder(benchmark):
    with open(_BASELINE) as fh:
        baseline = json.load(fh)
    tier = "smoke" if SMOKE else "full"
    points = baseline[tier]
    rows = benchmark.pedantic(_run_ladder, args=(points,),
                              rounds=1, iterations=1)

    lines = ["fig11 solver ladder (seed vs vectorized fast path)",
             f"{'point':>14} {'seed':>12} {'cold':>12} {'warm':>12} "
             f"{'speedup':>8}"]
    total_seed = total_warm = 0.0
    for row in rows:
        spec = row["spec"]
        seed, cold, warm = row["seed"], row["cold"], row["warm"]
        # Node counts are deterministic: pin them exactly.
        assert seed.nodes == spec["seed_nodes"], spec
        assert cold.nodes == spec["cold_nodes"], spec
        assert warm.nodes == spec["warm_nodes"], spec
        if spec["node_cap"] is None:
            # Unchanged optimality: every configuration proves the
            # same optimum.
            assert seed.optimal and cold.optimal and warm.optimal
            assert abs(seed.objective - warm.objective) < 1e-9
            assert abs(seed.objective - cold.objective) < 1e-9
        else:
            # Node-capped scaling points: the fast path's incumbent is
            # never worse under the identical budget.
            assert warm.objective >= seed.objective - 1e-9
        # The greedy warm start never costs nodes over a cold start.
        assert warm.nodes <= cold.nodes
        total_seed += row["t_seed"]
        total_warm += row["t_warm"]
        label = (f"{spec['qubits']}q/{spec['gates']}g"
                 + ("*" if spec["node_cap"] else ""))
        lines.append(
            f"{label:>14} {row['t_seed'] * 1e3:>10.1f}ms "
            f"{row['t_cold'] * 1e3:>10.1f}ms "
            f"{row['t_warm'] * 1e3:>10.1f}ms "
            f"{row['t_seed'] / row['t_warm']:>7.2f}x")
    speedup = total_seed / total_warm
    lines.append(f"{'aggregate':>14} {total_seed * 1e3:>10.1f}ms "
                 f"{'':>12} {total_warm * 1e3:>10.1f}ms "
                 f"{speedup:>7.2f}x  (* = node-capped)")
    floor = baseline["speedup_floor"][tier]
    if floor is not None:
        assert speedup >= floor, (
            f"fast-path aggregate speedup {speedup:.2f}x fell below the "
            f"pinned {floor}x floor")
    record(benchmark, "\n".join(lines))


def test_portfolio_bit_identity(benchmark):
    """The 2-worker portfolio reconstructs the serial answer exactly."""
    with open(_BASELINE) as fh:
        baseline = json.load(fh)
    tier = "smoke" if SMOKE else "full"
    spec = baseline[tier][1]  # first non-trivial point of the ladder
    model, syms, warm, _ = _instance(spec["qubits"], spec["gates"])

    serial = BranchAndBoundSolver(engine="vector").solve(
        model, initial=warm, symmetries=syms)

    def solve_portfolio():
        return PortfolioSolver(workers=2).solve(
            model, initial=warm, symmetries=syms)

    portfolio = benchmark.pedantic(solve_portfolio, rounds=1,
                                   iterations=1)
    assert portfolio.optimal and serial.optimal
    assert portfolio.objective == serial.objective
    assert portfolio.assignment == serial.assignment
    assert portfolio.stats is not None
    assert portfolio.stats.engine == "portfolio"
    record(benchmark,
           f"portfolio({portfolio.stats.workers}w, "
           f"{portfolio.stats.subtrees} subtrees) == serial: "
           f"objective {serial.objective:.6f}, "
           f"{portfolio.nodes} vs {serial.nodes} nodes")
