"""Bench: the stabilizer engine's large-n Clifford tier.

The dense engines stop at the amplitude budget (~22 qubits of
complex128 under the default chunk cap); the stabilizer engine samples
noisy Clifford programs in polynomial time. This bench runs the
50-100+ qubit GHZ-mirror grid end to end through the sweep runtime on
the ``grid144`` preset — compile, trace lowering, symbolic tableau
pass, vectorized shot sampling — and pins the two contracts that make
the tier trustworthy: serial vs parallel sweeps are bit-identical, and
``engine="auto"`` reproduces the stabilizer counts exactly on Clifford
input.
"""

from conftest import SMOKE, record

from repro.backend import get_backend
from repro.compiler import CompilerOptions
from repro.programs import ghz_mirror
from repro.runtime import SweepCell, run_sweep

SIZES = (30, 50) if SMOKE else (50, 60, 100)
TRIALS = 256 if SMOKE else 4096


def _cells(engine: str):
    """A fresh cell list per run (cells derive state in-place)."""
    backend = get_backend("grid144")
    return [SweepCell(circuit=ghz_mirror(n), backend=backend, day=0,
                      options=CompilerOptions.greedy_e(),
                      expected="0" * n, trials=TRIALS, seed=11,
                      engine=engine, key=(engine, n))
            for n in SIZES]


def test_stabilizer_large_n_sweep(benchmark):
    """End-to-end noisy GHZ-mirror sweep at dense-impossible sizes."""
    sweep = benchmark.pedantic(
        run_sweep, args=(_cells("stabilizer"),), kwargs={"strict": True},
        rounds=1, iterations=1)
    assert all(r.ok for r in sweep)
    assert all(0.0 <= r.success_rate <= 1.0 for r in sweep)
    # Parallel fan-out must reproduce the serial counts bit for bit.
    fanned = run_sweep(_cells("stabilizer"), workers=2, strict=True)
    for serial, parallel in zip(sweep, fanned):
        assert serial.execution.counts == parallel.execution.counts
    rows = "\n".join(
        f"  GHZ{n}m @{TRIALS} trials: success={r.success_rate:.4f}"
        for n, r in zip(SIZES, sweep))
    record(benchmark,
           "stabilizer large-n sweep (grid144, serial == 2-worker):\n"
           + rows)


def test_auto_routes_clifford_to_stabilizer(benchmark):
    """``engine="auto"`` must match ``engine="stabilizer"`` exactly."""
    reference = run_sweep(_cells("stabilizer"), strict=True)
    routed = benchmark.pedantic(
        run_sweep, args=(_cells("auto"),), kwargs={"strict": True},
        rounds=1, iterations=1)
    for direct, auto in zip(reference, routed):
        assert direct.execution.counts == auto.execution.counts
    record(benchmark,
           f"auto-routing: {len(SIZES)} Clifford cells "
           f"(max {max(SIZES)} qubits) bit-identical to the "
           f"stabilizer engine")
