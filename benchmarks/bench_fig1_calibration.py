"""Bench: regenerate Figure 1 (daily calibration variation series)."""

from conftest import SMOKE, record

from repro.experiments import run_fig1

DAYS = 8 if SMOKE else 25


def test_fig1_calibration_series(benchmark):
    result = benchmark.pedantic(run_fig1, kwargs={"days": DAYS},
                                rounds=1, iterations=1)
    # Shape: spatio-temporal spreads in the ballpark the paper reports
    # (9.2x T2, 9.0x CNOT, 5.9x readout).
    assert 3.0 < result.t2_variation < 30.0
    assert 3.0 < result.cnot_variation < 30.0
    assert 2.0 < result.readout_variation < 20.0
    record(benchmark, result.to_text())
