"""Stage-prefix cache throughput: post-mapping sweeps reuse mappings.

The acceptance bar for the pass-manager pipeline's stage cache: a
fig10-style grid that sweeps scheduling/peephole knobs (routing policy
x peephole) over a *fixed* R-SMT* mapping must compile >= 1.5x faster
through the sweep runtime (whose compile cache nests a
:class:`~repro.runtime.StageCache`) than through per-cell whole-program
compilation, and the outputs must be bit-identical.

The win is by construction: the SMT mapping dominates compile time
(~90% on these benchmarks) and every option combo shares one mapping
artifact, so the cached path pays the solver once per benchmark instead
of once per cell.
"""

import time

from repro.compiler import CompilerOptions, compile_circuit
from repro.hardware import ReliabilityTables
from repro.programs import get_benchmark
from repro.runtime import SweepCell, run_sweep

from conftest import SMOKE, record

BENCHMARKS = ("BV4",) if SMOKE else ("BV4", "HS6", "Toffoli", "Peres")
ROUTINGS = ("1bp", "rr") if SMOKE else ("1bp", "rr", "best", "shortest")
PEEPHOLE = (False, True)


def knob_grid(calibration):
    """benchmark x routing x peephole, all on the R-SMT*(w=0.5) mapping.

    Compile-only cells: the bench isolates the compile stage the stage
    cache accelerates.
    """
    return [SweepCell(circuit=get_benchmark(name).build(),
                      calibration=calibration,
                      options=CompilerOptions.r_smt_star().with_(
                          routing=routing, peephole=peephole),
                      simulate=False,
                      key=(name, routing, peephole))
            for name in BENCHMARKS
            for routing in ROUTINGS
            for peephole in PEEPHOLE]


def compile_whole_programs(cells, calibration):
    """The pre-pipeline path: one full compilation per distinct cell.

    Reliability tables are shared per snapshot (PR 2 did that too), so
    the comparison isolates exactly what the stage-prefix cache adds.
    """
    tables = ReliabilityTables(calibration)
    return [compile_circuit(cell.circuit, cell.calibration, cell.options,
                            tables=tables)
            for cell in cells]


def test_stage_prefix_cache_speedup(benchmark, calibration):
    """>= 1.5x on the knob grid; outputs bit-identical to full compiles."""
    cells = knob_grid(calibration)
    combos = len(ROUTINGS) * len(PEEPHOLE)

    start = time.perf_counter()
    baseline = compile_whole_programs(cells, calibration)
    baseline_seconds = time.perf_counter() - start

    swept = benchmark.pedantic(run_sweep, args=(cells,),
                               rounds=3, iterations=1, warmup_rounds=1)
    swept_seconds = benchmark.stats.stats.median

    # Bit-identity: every cell's compiled artifact matches the
    # whole-program path.
    for cell, ref, result in zip(cells, baseline, swept):
        assert ref.fingerprint() == result.compiled.fingerprint(), cell.key

    # Cache behavior is grid-determined: all compile keys are distinct
    # (no whole-program hits), the mapping is solved once per benchmark,
    # and schedule/swap-insert once per (benchmark, routing).
    assert swept.compile_stats.misses == len(cells)
    assert swept.compile_stats.hits == 0
    per_bench_hits = (combos - 1) + 2 * (combos - len(ROUTINGS))
    assert swept.stage_stats.hits == len(BENCHMARKS) * per_bench_hits

    mapping_cached = sum(
        1 for result in swept
        for timing in result.compiled.pass_timings
        if timing.name.startswith("mapping[") and timing.cached)
    assert mapping_cached == len(BENCHMARKS) * (combos - 1)

    speedup = baseline_seconds / swept_seconds
    benchmark.extra_info["speedup"] = speedup
    record(benchmark,
           f"fig10-style knob grid: {len(cells)} cells "
           f"({len(BENCHMARKS)} mappings x {combos} knob combos), "
           f"whole-program={baseline_seconds:.2f}s  "
           f"stage-cached={swept_seconds:.2f}s  speedup={speedup:.1f}x  "
           f"stage hit rate={swept.stage_stats.hit_rate:.0%}")
    if not SMOKE:
        assert speedup >= 1.5


def test_stage_cache_scales_with_knob_count(benchmark, calibration):
    """Marginal cost of extra knob combos excludes the mapping solve."""
    cells = knob_grid(calibration)
    # One combo per benchmark: the irreducible mapping + one lowering.
    one_combo = [cell for cell in cells
                 if cell.key[1:] == (ROUTINGS[0], False)]

    start = time.perf_counter()
    run_sweep(one_combo)
    single = time.perf_counter() - start

    full = benchmark.pedantic(run_sweep, args=(cells,),
                              rounds=3, iterations=1, warmup_rounds=1)
    replicated = benchmark.stats.stats.median
    ratio = replicated / single
    combos = len(ROUTINGS) * len(PEEPHOLE)
    benchmark.extra_info["knob_cost_ratio"] = ratio
    record(benchmark,
           f"1 combo/benchmark: {single:.2f}s; {combos} combos/benchmark: "
           f"{replicated:.2f}s ({ratio:.2f}x for {combos}x the cells)")
    assert len(full) == len(cells)
    if not SMOKE:
        # 8x the cells must cost far less than 8x the work.
        assert ratio < combos / 2
