"""Bench: regenerate Figure 5 (success rate, Qiskit vs T-SMT* vs R-SMT*).

The paper's headline: R-SMT* obtains geomean 2.9x (up to 18x) higher
success rate than Qiskit across the 12 benchmarks and beats T-SMT*
throughout.
"""

from conftest import BENCH_TRIALS, SMOKE, record

from repro.experiments import run_fig5

#: Smoke mode keeps representatives of both program families instead
#: of all twelve benchmarks.
SUBSET = ["BV4", "HS4", "QFT", "Toffoli", "Peres"] if SMOKE else None


def test_fig5_success_rates(benchmark, calibration):
    result = benchmark.pedantic(
        run_fig5, kwargs={"calibration": calibration,
                          "trials": BENCH_TRIALS, "subset": SUBSET},
        rounds=1, iterations=1)
    # Shape: R-SMT* >= Qiskit on every benchmark; multi-x geomean.
    for bench in result.runs:
        assert result.success(bench, "r-smt*") >= \
            result.success(bench, "qiskit") - 0.05, bench
    assert result.geomean_improvement("qiskit", "r-smt*") > 1.5
    # Zero-movement benchmarks beat the Toffoli (triangle) family on
    # average (paper's §7 observation).
    star = [b for b in ["BV4", "BV6", "HS4", "QFT", "Adder"]
            if b in result.runs]
    triangle = [b for b in ["Toffoli", "Fredkin", "Or", "Peres"]
                if b in result.runs]
    star_mean = sum(result.success(b, "r-smt*") for b in star) / len(star)
    tri_mean = sum(result.success(b, "r-smt*")
                   for b in triangle) / len(triangle)
    assert star_mean > tri_mean - 0.05
    record(benchmark, result.to_text())
