"""Array-backend throughput: the ``"gpu"`` engine vs host numpy.

The pluggable array-backend seam only earns its keep if the ``"gpu"``
engine actually outruns the numpy contraction once an accelerated
library is installed: this bench pins a >= 1.3x median speedup on a
12-qubit high-trial random circuit (state tensors big enough that
tensordot throughput, not Python overhead, dominates). With neither
torch nor cupy installed the speedup subject skips cleanly, and the
numpy-only chunk-budget invariance check still runs — which is exactly
what the accelerator-less CI smoke job exercises.
"""

import statistics
import time

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.programs import random_circuit
from repro.simulator import best_accelerated_backend, execute
from repro.simulator.xp import CHUNK_ENV

from conftest import SMOKE, record

#: Big enough that per-gate tensordots dominate the run; greedy
#: mapping because the SMT variants do not scale to 12 qubits.
N_QUBITS = 12
N_GATES = 24 if SMOKE else 60
TRIALS = 256 if SMOKE else 4096


@pytest.fixture(scope="module")
def program_12q(calibration, tables):
    circuit = random_circuit(N_QUBITS, N_GATES, seed=5,
                             two_qubit_fraction=0.3)
    return compile_circuit(circuit, calibration,
                           CompilerOptions.greedy_e(), tables=tables)


def test_gpu_speedup_over_numpy(benchmark, program_12q, calibration):
    """Median ``engine="gpu"`` speedup over the numpy contraction."""
    if best_accelerated_backend() is None:
        pytest.skip("no accelerated array backend (torch/cupy) installed")
    kwargs = {"trials": TRIALS, "seed": 0}

    def timed_numpy(rounds):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            execute(program_12q, calibration, engine="batched",
                    array_backend="numpy", **kwargs)
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    # Warm both paths (trace lowering, device init, staging uploads).
    reference = execute(program_12q, calibration, engine="batched",
                        array_backend="numpy", **kwargs)
    accelerated = execute(program_12q, calibration, engine="gpu",
                          **kwargs)
    # Counts are bit-identical by construction — assert it here too, so
    # a speedup can never be bought with a correctness regression.
    assert accelerated.counts == reference.counts

    numpy_median = timed_numpy(1 if SMOKE else 3)
    benchmark.pedantic(
        execute, args=(program_12q, calibration),
        kwargs={**kwargs, "engine": "gpu"},
        rounds=1 if SMOKE else 5, iterations=1)
    gpu_median = benchmark.stats.stats.median
    speedup = numpy_median / gpu_median
    benchmark.extra_info["speedup"] = speedup
    record(benchmark,
           f"rand{N_QUBITS}q{N_GATES}g @{TRIALS} trials: "
           f"numpy={numpy_median * 1e3:.1f} ms  "
           f"gpu={gpu_median * 1e3:.1f} ms  speedup={speedup:.2f}x  "
           f"(backend: {best_accelerated_backend().name})")
    if not SMOKE:
        assert speedup >= 1.3


def test_chunk_budget_invariance(benchmark, program_12q, calibration,
                                 monkeypatch):
    """Squeezing the chunk budget must not change counts (numpy path,
    so it runs — and means something — on accelerator-less CI)."""
    kwargs = {"trials": TRIALS, "seed": 0, "array_backend": "numpy"}
    reference = execute(program_12q, calibration, **kwargs)
    monkeypatch.setenv(CHUNK_ENV, "1")  # 65536 amplitudes = 16 plans @12q
    squeezed = benchmark.pedantic(
        execute, args=(program_12q, calibration), kwargs=kwargs,
        rounds=1, iterations=1)
    assert squeezed.counts == reference.counts
    record(benchmark,
           f"chunk-budget invariance: {sum(reference.counts.values())} "
           f"trials identical at default vs 1 MiB budget")
