"""Bench: ablation studies for this repo's own design choices."""

from conftest import BENCH_TRIALS, SMOKE, record

from repro.experiments.ablations import (
    run_convention_ablation,
    run_omega_sweep,
    run_peephole_ablation,
)

#: Smoke mode shrinks the SMT-heavy grids (the omega sweep solves one
#: R-SMT* model per point) while keeping the benchmarks the shape
#: assertions below reference.
OMEGA_BENCHMARKS = ("BV4", "Toffoli") if SMOKE else None
SUBSET = ["BV4", "HS2", "Toffoli"] if SMOKE else None


def test_ablation_omega_sweep(benchmark, calibration):
    kwargs = {"calibration": calibration, "trials": BENCH_TRIALS}
    if OMEGA_BENCHMARKS is not None:
        kwargs["benchmarks"] = OMEGA_BENCHMARKS
    result = benchmark.pedantic(run_omega_sweep, kwargs=kwargs,
                                rounds=1, iterations=1)
    # The best omega always lies strictly inside (0, 1) or at the
    # balanced point — never at pure-readout (w=1) for CNOT-heavy
    # programs like Toffoli.
    assert result.best_omega("Toffoli") < 1.0
    record(benchmark, result.to_text())


def test_ablation_peephole(benchmark, calibration):
    result = benchmark.pedantic(
        run_peephole_ablation,
        kwargs={"calibration": calibration, "trials": BENCH_TRIALS,
                "subset": SUBSET},
        rounds=1, iterations=1)
    for name, before, after, s_plain, s_tidy in result.rows:
        assert after <= before, name
        assert s_tidy >= s_plain - 0.08, name
    record(benchmark, result.to_text())


def test_ablation_swap_convention(benchmark, calibration):
    result = benchmark.pedantic(
        run_convention_ablation,
        kwargs={"calibration": calibration, "trials": BENCH_TRIALS},
        rounds=1, iterations=1)
    # Both conventions must bracket the measurement: round-trip charges
    # every executed CNOT (pessimistic), one-way only the outbound leg.
    for name, one_way, round_trip, measured in result.rows:
        assert round_trip <= one_way + 1e-12, name
        assert round_trip <= measured + 0.12, name
    # Empirically the paper's one-way convention is the better
    # predictor (return-swap errors often miss the measured qubits) —
    # a statistical claim over the full benchmark set at full trials,
    # so smoke mode (shrunk trials) treats it like a perf bar.
    if not SMOKE:
        assert result.mean_abs_error("one-way") <= \
            result.mean_abs_error("round-trip") + 0.02
    record(benchmark, result.to_text())
