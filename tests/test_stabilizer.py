"""Tests for the stabilizer subsystem: tableau engine, auto-routing,
capacity guard, and the large-n Clifford benchmark tier."""

import time
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import get_backend
from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import SimulationCapacityError, SimulationError
from repro.hardware import (
    CalibrationGenerator,
    default_ibmq16_calibration,
    square_topology,
)
from repro.programs import (
    build_benchmark,
    expected_output,
    ghz,
    ghz_mirror,
    large_benchmark_names,
    random_circuit,
    repetition_code,
)
from repro.runtime import SweepCell, run_sweep
from repro.simulator import (
    CLIFFORD_GATES,
    empirical_distribution,
    execute,
    first_non_clifford,
    is_clifford,
    total_variation_distance,
)
from repro.simulator.xp import CHUNK_ENV

GREEDY = CompilerOptions.greedy_e()


@pytest.fixture(scope="module")
def calibration():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def ghz12_program(calibration):
    return compile_circuit(ghz_mirror(12), calibration, GREEDY)


@pytest.fixture(scope="module")
def ghz6_program(calibration):
    return compile_circuit(ghz_mirror(6), calibration, GREEDY)


@pytest.fixture(scope="module")
def bv8_program(calibration):
    return compile_circuit(build_benchmark("BV8"), calibration, GREEDY)


@pytest.fixture(scope="module")
def toffoli_program(calibration):
    return compile_circuit(build_benchmark("Toffoli"), calibration, GREEDY)


class TestIsClifford:
    def test_clifford_benchmarks(self):
        for name in large_benchmark_names():
            assert is_clifford(build_benchmark(name)), name

    def test_t_gate_is_not_clifford(self):
        circuit = build_benchmark("Toffoli")
        assert not is_clifford(circuit)
        gate = first_non_clifford(circuit)
        assert gate is not None and gate.name not in CLIFFORD_GATES

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n_gates=st.integers(0, 30),
           gate_set=st.sampled_from([
               ("h", "s", "cx"), ("h", "t", "cx"),
               ("x", "y", "z", "cz", "swap"),
               ("h", "x", "s", "sdg", "t", "cx", "cz"),
           ]))
    def test_agrees_with_gate_set_membership(self, seed, n_gates,
                                             gate_set):
        circuit = random_circuit(4, n_gates, seed=seed,
                                 gate_set=gate_set)
        expected = all(g.name in CLIFFORD_GATES for g in circuit.gates
                       if g.name not in ("measure", "barrier"))
        assert is_clifford(circuit) == expected
        assert (first_non_clifford(circuit) is None) == expected


class TestCrossEngine:
    """Stabilizer sampling must agree with the dense engines."""

    TRIALS = 8192

    def _distributions(self, program, calibration):
        results = {engine: execute(program, calibration,
                                   trials=self.TRIALS, seed=5,
                                   engine=engine)
                   for engine in ("stabilizer", "batched", "trial")}
        return {engine: empirical_distribution(r.counts)
                for engine, r in results.items()}, results

    @pytest.mark.parametrize("fixture", ["ghz6_program", "bv8_program"])
    def test_small_clifford_tvd(self, fixture, calibration, request):
        """Small subjects keep sampling noise well under the bound (at
        12+ qubits the support outgrows any realistic shot count and
        empirical TVD measures variance, not disagreement)."""
        program = request.getfixturevalue(fixture)
        dists, _ = self._distributions(program, calibration)
        assert total_variation_distance(
            dists["stabilizer"], dists["batched"]) < 0.06
        assert total_variation_distance(
            dists["stabilizer"], dists["trial"]) < 0.06

    def test_ideal_distribution_matches_dense(self, ghz12_program,
                                              calibration):
        stab = execute(ghz12_program, calibration, trials=64, seed=5,
                       engine="stabilizer").ideal_distribution
        dense = execute(ghz12_program, calibration, trials=64, seed=5,
                        engine="batched").ideal_distribution
        assert set(stab) == set(dense)
        for outcome, p in dense.items():
            assert stab[outcome] == pytest.approx(p)

    def test_ghz_coin_ideal(self, calibration):
        """Plain GHZ has one measurement coin: a 50/50 ideal mix."""
        program = compile_circuit(ghz(5), calibration, GREEDY)
        ideal = execute(program, calibration, trials=64, seed=0,
                        engine="stabilizer").ideal_distribution
        assert ideal == pytest.approx({"00000": 0.5, "11111": 0.5})

    def test_rejects_non_clifford(self, toffoli_program, calibration):
        with pytest.raises(SimulationError, match="auto"):
            execute(toffoli_program, calibration, trials=16, seed=0,
                    engine="stabilizer")


class TestAutoRouting:
    def test_clifford_matches_stabilizer(self, ghz12_program,
                                         calibration):
        direct = execute(ghz12_program, calibration, trials=1024,
                         seed=3, engine="stabilizer")
        routed = execute(ghz12_program, calibration, trials=1024,
                         seed=3, engine="auto")
        assert routed.counts == direct.counts

    def test_non_clifford_falls_back_to_dense_with_warning(
            self, toffoli_program, calibration):
        from repro.simulator.stabilizer import engine as stab_engine

        stab_engine._WARNED_NON_CLIFFORD.clear()
        with pytest.warns(RuntimeWarning, match="not Clifford"):
            routed = execute(toffoli_program, calibration, trials=512,
                             seed=3, engine="auto")
        dense = execute(toffoli_program, calibration, trials=512,
                        seed=3, engine="batched")
        assert routed.counts == dense.counts
        # The fallback is announced once per gate name, not per run.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            execute(toffoli_program, calibration, trials=16, seed=3,
                    engine="auto")


class TestCapacityGuard:
    def test_dense_engines_refuse_over_budget(self, ghz12_program,
                                              calibration, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "0.0001")  # ~6 amplitudes
        for engine in ("batched", "trial"):
            with pytest.raises(SimulationCapacityError,
                               match="stabilizer") as exc:
                execute(ghz12_program, calibration, trials=16, seed=0,
                        engine=engine)
            assert "12-qubit" in str(exc.value)

    def test_stabilizer_ignores_amplitude_budget(self, ghz12_program,
                                                 calibration,
                                                 monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "0.0001")
        result = execute(ghz12_program, calibration, trials=64, seed=0,
                         engine="stabilizer")
        assert sum(result.counts.values()) == 64


class TestLargeNTier:
    def test_registry(self):
        names = large_benchmark_names()
        assert names == ["GHZ12", "REP49", "GHZ60", "BV64", "GHZ100"]
        assert expected_output("GHZ100") == "0" * 100
        assert expected_output("BV64").count("1") == 3
        assert len(build_benchmark("REP49").used_qubits()) == 49
        assert len(repetition_code(3, rounds=2).used_qubits()) == 7

    def test_ghz60_completes_within_budget(self):
        """Tier-1 wall-clock contract: a 60-qubit noisy GHZ run is a
        seconds-scale job on the stabilizer engine."""
        topo = square_topology(64)
        calibration = CalibrationGenerator(topo, seed=7).snapshot(0)
        start = time.perf_counter()
        program = compile_circuit(ghz_mirror(60), calibration, GREEDY)
        result = execute(program, calibration, trials=2048, seed=1,
                         expected="0" * 60, engine="stabilizer")
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0
        assert sum(result.counts.values()) == 2048
        assert 0.0 <= result.success_rate <= 1.0

    def test_sweep_serial_parallel_bit_identity(self):
        def cells():
            backend = get_backend("ibmq20")
            return [SweepCell(circuit=ghz_mirror(n), backend=backend,
                              day=0, options=GREEDY, expected="0" * n,
                              trials=512, seed=9, engine="stabilizer",
                              key=n)
                    for n in (12, 16)]

        serial = run_sweep(cells(), strict=True)
        parallel = run_sweep(cells(), workers=2, strict=True)
        for left, right in zip(serial, parallel):
            assert left.execution.counts == right.execution.counts
