"""End-to-end tests for compile_circuit, swap insertion and codegen."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CompiledProgram,
    CompilerOptions,
    compile_circuit,
    estimate_reliability,
    weighted_log_reliability,
)
from repro.exceptions import CompilationError
from repro.hardware import ReliabilityTables, default_ibmq16_calibration
from repro.ir.circuit import Circuit
from repro.ir.qasm import qasm_to_circuit
from repro.programs import build_benchmark, expected_output, random_circuit
from repro.simulator import StateVector


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def tables(cal):
    return ReliabilityTables(cal)


ALL_OPTIONS = [CompilerOptions.qiskit(), CompilerOptions.t_smt(),
               CompilerOptions.t_smt_star(), CompilerOptions.r_smt_star(),
               CompilerOptions.greedy_e(), CompilerOptions.greedy_v()]


def simulate_physical(program: CompiledProgram) -> str:
    """Noise-free execution of the physical circuit -> classical string.

    Marginalizes over unmeasured qubits (e.g. BV's ancilla stays in
    superposition) and asserts the *measured* outcome is deterministic.
    """
    circuit = program.physical.circuit
    used = circuit.used_qubits()
    dense = {h: i for i, h in enumerate(used)}
    state = StateVector(len(used))
    measures = {}
    for gate in circuit.gates:
        if gate.is_measure:
            measures[dense[gate.qubits[0]]] = gate.cbit
        elif gate.name != "barrier":
            state.apply_gate(gate.name,
                             tuple(dense[q] for q in gate.qubits),
                             param=gate.param)
    probs = state.probabilities()
    n = len(used)
    outcome_probs = {}
    for index, p in enumerate(probs):
        if p < 1e-9:
            continue
        chars = ["0"] * circuit.n_cbits
        for q, cbit in measures.items():
            chars[cbit] = str((index >> (n - 1 - q)) & 1)
        key = "".join(chars)
        outcome_probs[key] = outcome_probs.get(key, 0.0) + p
    best = max(outcome_probs, key=outcome_probs.get)
    assert outcome_probs[best] == pytest.approx(1.0, abs=1e-6), \
        f"physical output is not deterministic: {outcome_probs}"
    return best


class TestSemanticPreservation:
    """The compiled physical circuit must compute the same answer as the
    logical benchmark — for every variant, under every routing policy."""

    @pytest.mark.parametrize("options", ALL_OPTIONS,
                             ids=[o.variant for o in ALL_OPTIONS])
    @pytest.mark.parametrize("bench", ["BV4", "HS4", "Toffoli", "Fredkin",
                                       "Peres", "Or", "QFT", "Adder"])
    def test_compiled_circuit_computes_benchmark_answer(self, options,
                                                        bench, cal, tables):
        program = compile_circuit(build_benchmark(bench), cal, options,
                                  tables=tables)
        assert simulate_physical(program) == expected_output(bench)

    @pytest.mark.parametrize("routing", ["rr", "1bp"])
    def test_routing_policies_preserve_semantics(self, routing, cal, tables):
        options = CompilerOptions.t_smt_star(routing=routing)
        program = compile_circuit(build_benchmark("Fredkin"), cal, options,
                                  tables=tables)
        assert simulate_physical(program) == expected_output("Fredkin")

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_random_classical_circuits_preserved(self, cal, tables, seed):
        """X/CX-only circuits have deterministic outputs; compilation
        (including swap insertion) must preserve them exactly."""
        import random as pyrandom
        rng = pyrandom.Random(seed)
        circuit = Circuit(4, 4, name=f"cls{seed}")
        for _ in range(12):
            if rng.random() < 0.5:
                circuit.x(rng.randrange(4))
            else:
                a, b = rng.sample(range(4), 2)
                circuit.cx(a, b)
        circuit.measure_all()
        program = compile_circuit(circuit, cal,
                                  CompilerOptions.greedy_e(), tables=tables)
        # Reference: classical simulation of the logical circuit.
        bits = [0, 0, 0, 0]
        for gate in circuit.gates:
            if gate.name == "x":
                bits[gate.qubits[0]] ^= 1
            elif gate.name == "cx":
                bits[gate.target] ^= bits[gate.control]
        expected = "".join(str(b) for b in bits)
        assert simulate_physical(program) == expected


class TestPhysicalProgram:
    def test_all_cnots_on_coupling_edges(self, cal, tables):
        for options in ALL_OPTIONS:
            program = compile_circuit(build_benchmark("Fredkin"), cal,
                                      options, tables=tables)
            for gate in program.physical.circuit.gates:
                if gate.is_two_qubit:
                    assert cal.topology.is_adjacent(*gate.qubits), \
                        options.variant

    def test_swap_cnots_counted(self, cal, tables):
        program = compile_circuit(build_benchmark("Toffoli"), cal,
                                  CompilerOptions.qiskit(), tables=tables)
        assert program.physical.swap_cnots == 6 * program.swap_count

    def test_times_parallel_to_gates(self, cal, tables):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star(),
                                  tables=tables)
        assert len(program.physical.times) == \
            len(program.physical.circuit.gates)
        assert all(d > 0 for _, d in program.physical.times)

    def test_per_qubit_times_are_serialized(self, cal, tables):
        """No two physical gates on the same qubit overlap in time."""
        program = compile_circuit(build_benchmark("HS6"), cal,
                                  CompilerOptions.qiskit(), tables=tables)
        windows = {}
        for gate, (start, duration) in zip(program.physical.circuit.gates,
                                           program.physical.times):
            for q in gate.qubits:
                windows.setdefault(q, []).append((start, start + duration))
        for q, spans in windows.items():
            spans.sort()
            for (s1, f1), (s2, f2) in zip(spans, spans[1:]):
                assert s2 >= f1 - 1e-6


class TestQasmOutput:
    def test_qasm_parses_back(self, cal, tables):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star(),
                                  tables=tables)
        back = qasm_to_circuit(program.qasm())
        assert back.n_qubits == 16
        assert len(back) == len(program.physical.circuit)

    def test_summary_mentions_variant(self, cal, tables):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.greedy_e(), tables=tables)
        assert "greedye*" in program.summary()


class TestMetrics:
    def test_estimate_matches_route_products(self, cal, tables):
        program = compile_circuit(build_benchmark("Toffoli"), cal,
                                  CompilerOptions.r_smt_star(),
                                  tables=tables)
        est = program.reliability
        assert 0 < est.score <= 1
        assert est.round_trip_score <= est.score + 1e-12
        assert est.score == pytest.approx(est.cnot_score * est.readout_score)

    def test_weighted_log_reliability(self, cal, tables):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star(),
                                  tables=tables)
        value = weighted_log_reliability(program.reliability, 0.5)
        assert value < 0

    def test_zero_swap_scores_higher_than_many_swaps(self, cal, tables):
        """The reliability estimate must reward avoiding movement."""
        good = compile_circuit(build_benchmark("BV4"), cal,
                               CompilerOptions.r_smt_star(), tables=tables)
        bad = compile_circuit(build_benchmark("BV4"), cal,
                              CompilerOptions.qiskit(), tables=tables)
        assert good.swap_count == 0
        assert bad.swap_count > 0
        assert good.estimated_success > bad.estimated_success


class TestOptionsValidation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(CompilationError):
            CompilerOptions(variant="magic")

    def test_unknown_routing_rejected(self):
        with pytest.raises(CompilationError):
            CompilerOptions(routing="teleport")

    def test_omega_range_checked(self):
        with pytest.raises(CompilationError):
            CompilerOptions(omega=1.5)

    def test_with_updates(self):
        opts = CompilerOptions.r_smt_star().with_(omega=0.25)
        assert opts.omega == 0.25
        assert opts.variant == "r-smt*"

    def test_noise_awareness_flags(self):
        assert not CompilerOptions.qiskit().is_noise_aware
        assert not CompilerOptions.t_smt().is_noise_aware
        assert CompilerOptions.t_smt_star().is_noise_aware
        assert CompilerOptions.r_smt_star().is_noise_aware
        assert CompilerOptions.greedy_e().is_noise_aware
