"""Tests for the compiled-program verifier."""

import pytest

from repro.compiler import (
    CompilerOptions,
    compile_circuit,
    verify_compiled,
)
from repro.exceptions import CompilationError
from repro.hardware import default_ibmq16_calibration
from repro.ir.gates import Gate
from repro.programs import build_benchmark


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


ALL_OPTIONS = [CompilerOptions.qiskit(), CompilerOptions.t_smt(),
               CompilerOptions.t_smt_star(), CompilerOptions.r_smt_star(),
               CompilerOptions.greedy_e(), CompilerOptions.greedy_v()]


class TestVerifyPasses:
    @pytest.mark.parametrize("options", ALL_OPTIONS,
                             ids=[o.variant for o in ALL_OPTIONS])
    @pytest.mark.parametrize("bench", ["BV4", "HS6", "Fredkin", "Adder"])
    def test_every_variant_verifies(self, options, bench, cal):
        program = compile_circuit(build_benchmark(bench), cal, options)
        report = verify_compiled(program, cal)
        assert report.ok, report.errors
        assert "semantic:distribution" in report.checks_run

    def test_raise_if_failed_noop_on_success(self, cal):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star())
        verify_compiled(program, cal).raise_if_failed()


class TestVerifyCatchesCorruption:
    def corrupt(self, cal, mutate):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star())
        mutate(program)
        return verify_compiled(program, cal)

    def test_detects_non_coupling_cnot(self, cal):
        def mutate(program):
            program.physical.circuit._gates.insert(0, Gate("cx", (0, 5)))
            program.physical.times.insert(0, (0.0, 1.0))
        report = self.corrupt(cal, mutate)
        assert not report.ok
        assert any("coupling" in e for e in report.errors)

    def test_detects_broken_placement(self, cal):
        def mutate(program):
            first = next(iter(program.placement))
            other = [q for q in program.placement if q != first][0]
            program.placement[first] = program.placement[other]
        report = self.corrupt(cal, mutate)
        assert not report.ok
        assert any("injective" in e for e in report.errors)

    def test_detects_gate_after_measure(self, cal):
        def mutate(program):
            measured = next(g.qubits[0]
                            for g in program.physical.circuit.gates
                            if g.is_measure)
            program.physical.circuit._gates.append(Gate("x", (measured,)))
            program.physical.times.append((999.0, 1.0))
        report = self.corrupt(cal, mutate)
        assert not report.ok
        assert any("measurement" in e for e in report.errors)

    def test_detects_semantic_change(self, cal):
        def mutate(program):
            # Flip a data qubit right before readout.
            hw = program.placement[0]
            gates = program.physical.circuit._gates
            idx = next(i for i, g in enumerate(gates) if g.is_measure)
            gates.insert(idx, Gate("x", (hw,)))
            program.physical.times.insert(idx, (500.0, 1.0))
        report = self.corrupt(cal, mutate)
        assert not report.ok
        assert any("distribution" in e for e in report.errors)

    def test_detects_overlapping_timing(self, cal):
        def mutate(program):
            program.physical.times[1] = program.physical.times[0]
        program = compile_circuit(build_benchmark("HS2"), cal,
                                  CompilerOptions.qiskit())
        # Find two gates sharing a qubit and give them the same window.
        gates = program.physical.circuit.gates
        share = None
        for i, a in enumerate(gates):
            for j, b in enumerate(gates[i + 1:], start=i + 1):
                if set(a.qubits) & set(b.qubits):
                    share = (i, j)
                    break
            if share:
                break
        i, j = share
        program.physical.times[j] = program.physical.times[i]
        report = verify_compiled(program, cal, semantic=False)
        assert not report.ok
        assert any("overlap" in e for e in report.errors)

    def test_raise_if_failed_raises(self, cal):
        report = self.corrupt(
            cal, lambda p: p.placement.__setitem__(0, 99))
        with pytest.raises(CompilationError):
            report.raise_if_failed()

    def test_semantic_check_skipped_when_large(self, cal):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star())
        report = verify_compiled(program, cal, max_semantic_qubits=1)
        assert report.ok
        assert "semantic:skipped(too-large)" in report.checks_run
