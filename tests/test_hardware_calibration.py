"""Tests for calibration records, generator statistics, and persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CalibrationError
from repro.hardware.calibration import (
    Calibration,
    EdgeCalibration,
    QubitCalibration,
    uniform_calibration,
)
from repro.hardware.calibration_gen import (
    CalibrationGenerator,
    NoiseProfile,
    default_ibmq16_calibration,
)
from repro.hardware.topology import GridTopology, ibmq16_topology


class TestRecords:
    def test_qubit_record_validation(self):
        with pytest.raises(CalibrationError):
            QubitCalibration(t1_us=-1, t2_us=50, readout_error=0.1,
                             single_qubit_error=0.001)
        with pytest.raises(CalibrationError):
            QubitCalibration(t1_us=90, t2_us=70, readout_error=1.5,
                             single_qubit_error=0.001)

    def test_edge_record_validation(self):
        with pytest.raises(CalibrationError):
            EdgeCalibration(cnot_error=-0.1, cnot_duration_slots=3)
        with pytest.raises(CalibrationError):
            EdgeCalibration(cnot_error=0.05, cnot_duration_slots=0)

    def test_coherence_slots(self):
        rec = QubitCalibration(t1_us=90, t2_us=80, readout_error=0.05,
                               single_qubit_error=0.001)
        assert rec.coherence_slots == pytest.approx(1000.0)  # 80us / 80ns


class TestCalibrationContainer:
    def test_uniform_calibration_covers_machine(self):
        cal = uniform_calibration(ibmq16_topology())
        assert len(cal.qubits) == 16
        assert len(cal.edges) == 22

    def test_accessors(self):
        cal = uniform_calibration(ibmq16_topology(), cnot_error=0.05,
                                  readout_error=0.08)
        assert cal.cnot_error(0, 1) == pytest.approx(0.05)
        assert cal.cnot_error(1, 0) == pytest.approx(0.05)  # undirected
        assert cal.cnot_reliability(0, 1) == pytest.approx(0.95)
        assert cal.readout_reliability(3) == pytest.approx(0.92)
        assert cal.swap_reliability(0, 1) == pytest.approx(0.95 ** 3)
        assert cal.swap_duration(0, 1) == pytest.approx(9.0)

    def test_missing_edge_rejected(self):
        cal = uniform_calibration(ibmq16_topology())
        with pytest.raises(CalibrationError):
            cal.edge(0, 5)  # not adjacent

    def test_incomplete_records_rejected(self):
        topo = GridTopology(2, 2)
        cal = uniform_calibration(topo)
        bad_qubits = dict(cal.qubits)
        del bad_qubits[0]
        with pytest.raises(CalibrationError):
            Calibration(topology=topo, qubits=bad_qubits, edges=cal.edges)

    def test_means_and_variation(self):
        cal = uniform_calibration(ibmq16_topology(), cnot_error=0.04)
        assert cal.mean_cnot_error() == pytest.approx(0.04)
        assert cal.variation("cnot_error") == pytest.approx(1.0)
        with pytest.raises(CalibrationError):
            cal.variation("nonsense")

    def test_json_roundtrip(self):
        cal = default_ibmq16_calibration(day=3)
        back = Calibration.from_json(cal.to_json())
        assert back.label == cal.label
        assert back.topology.n_qubits == cal.topology.n_qubits
        for q in cal.qubits:
            assert back.qubits[q] == cal.qubits[q]
        for e in cal.edges:
            assert back.edges[e] == cal.edges[e]


class TestGenerator:
    def test_deterministic_per_seed_and_day(self):
        gen1 = CalibrationGenerator(ibmq16_topology(), seed=5)
        gen2 = CalibrationGenerator(ibmq16_topology(), seed=5)
        assert gen1.snapshot(4).to_dict() == gen2.snapshot(4).to_dict()

    def test_seeds_differ(self):
        gen1 = CalibrationGenerator(ibmq16_topology(), seed=5)
        gen2 = CalibrationGenerator(ibmq16_topology(), seed=6)
        assert gen1.snapshot(0).to_dict() != gen2.snapshot(0).to_dict()

    def test_days_differ_but_correlate(self):
        gen = CalibrationGenerator(ibmq16_topology(), seed=5)
        d0, d1 = gen.snapshot(0), gen.snapshot(1)
        assert d0.to_dict() != d1.to_dict()
        # Static quality dominates: the best/worst edges mostly persist.
        worst0 = max(d0.edges, key=lambda e: d0.edges[e].cnot_error)
        rank1 = sorted(d1.edges, key=lambda e: -d1.edges[e].cnot_error)
        assert worst0 in rank1[:8]

    def test_days_iterator(self):
        gen = CalibrationGenerator(ibmq16_topology(), seed=5)
        labels = [c.label for c in gen.days(3)]
        assert labels == ["day0", "day1", "day2"]

    def test_statistics_near_paper_means(self):
        gen = CalibrationGenerator(ibmq16_topology(), seed=11)
        cnot, readout, t2 = [], [], []
        for cal in gen.days(20):
            cnot.append(cal.mean_cnot_error())
            readout.append(cal.mean_readout_error())
            t2.extend(r.t2_us for r in cal.qubits.values())
        assert 0.02 <= sum(cnot) / len(cnot) <= 0.08
        assert 0.04 <= sum(readout) / len(readout) <= 0.11
        assert 40 <= sum(t2) / len(t2) <= 110

    def test_error_rates_clamped(self):
        profile = NoiseProfile(cnot_sigma=3.0, max_error_rate=0.35)
        gen = CalibrationGenerator(ibmq16_topology(), seed=0,
                                   profile=profile)
        cal = gen.snapshot(0)
        assert all(0 < e.cnot_error <= 0.35 for e in cal.edges.values())

    @given(day=st.integers(0, 12))
    @settings(max_examples=10, deadline=None)
    def test_every_snapshot_is_valid(self, day):
        cal = CalibrationGenerator(GridTopology(3, 3), seed=1).snapshot(day)
        assert all(r.t2_us > 0 for r in cal.qubits.values())
        assert all(0 <= r.readout_error < 1 for r in cal.qubits.values())
        assert all(e.cnot_duration_slots >= 1
                   for e in cal.edges.values())
