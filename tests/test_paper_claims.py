"""Integration tests tying the reproduction to the paper's key claims.

These run the real pipeline (compile + noisy execution) at moderate
trial counts and assert the *shape* of each headline result. Absolute
numbers differ from the paper (our substrate is a simulator with
synthetic calibration), but directions, orderings, and rough magnitudes
must hold.
"""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.experiments import geometric_mean
from repro.hardware import (
    CalibrationGenerator,
    ReliabilityTables,
    default_ibmq16_calibration,
    ibmq16_topology,
)
from repro.programs import all_benchmarks, build_benchmark, expected_output
from repro.simulator import execute

TRIALS = 512


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def tables(cal):
    return ReliabilityTables(cal)


def run_variant(name, options, cal, tables, trials=TRIALS, seed=7):
    circuit = build_benchmark(name)
    program = compile_circuit(circuit, cal, options, tables=tables)
    result = execute(program, cal, trials=trials, seed=seed,
                     expected=expected_output(name))
    return program, result


class TestHeadlineClaim:
    """§1/§7: R-SMT* gives a multi-x geomean success-rate improvement
    over the Qiskit baseline, with large peaks."""

    @pytest.fixture(scope="class")
    def sweep(self, cal, tables):
        out = {}
        for name, _, _ in [(n, None, None) for n in
                           ("BV4", "BV8", "HS4", "HS6", "Toffoli",
                            "Adder")]:
            _, qiskit = run_variant(name, CompilerOptions.qiskit(),
                                    cal, tables)
            _, rsmt = run_variant(name, CompilerOptions.r_smt_star(),
                                  cal, tables)
            out[name] = (qiskit.success_rate, rsmt.success_rate)
        return out

    def test_r_smt_never_loses(self, sweep):
        for name, (base, ours) in sweep.items():
            assert ours >= base - 0.05, name

    def test_geomean_improvement_is_multix(self, sweep):
        ratios = [ours / max(base, 1e-3) for base, ours in sweep.values()]
        assert geometric_mean(ratios) > 1.5

    def test_peak_improvement_is_large(self, sweep):
        ratios = [ours / max(base, 1e-3) for base, ours in sweep.values()]
        assert max(ratios) > 4.0


class TestNoiseAdaptationClaim:
    """§7: R-SMT* >= T-SMT* (reliability objective matters)."""

    @pytest.mark.parametrize("name", ["Toffoli", "Fredkin", "Or", "Adder"])
    def test_reliability_objective_beats_time_objective(self, name, cal,
                                                        tables):
        _, t = run_variant(name, CompilerOptions.t_smt_star(routing="1bp"),
                           cal, tables)
        _, r = run_variant(name, CompilerOptions.r_smt_star(), cal, tables)
        assert r.success_rate >= t.success_rate - 0.05


class TestZeroMovementClaim:
    """§1: zero-movement-mappable programs are substantially more
    reliable than programs needing even one SWAP."""

    def test_star_benchmarks_map_without_swaps(self, cal, tables):
        for name in ("BV4", "BV6", "BV8", "HS2", "HS4", "HS6", "QFT",
                     "Adder"):
            program = compile_circuit(build_benchmark(name), cal,
                                      CompilerOptions.r_smt_star(),
                                      tables=tables)
            assert program.swap_count == 0, name

    def test_triangle_benchmarks_need_swaps(self, cal, tables):
        """The 2x8 grid is bipartite: triangles force >= 1 SWAP."""
        for name in ("Toffoli", "Fredkin", "Or", "Peres"):
            program = compile_circuit(build_benchmark(name), cal,
                                      CompilerOptions.r_smt_star(),
                                      tables=tables)
            assert program.swap_count >= 1, name


class TestCalibrationAwareDurations:
    """§7.2: real gate times shorten executables (up to 1.68x in the
    paper); never lengthen them."""

    def test_calibrated_durations_never_longer(self, cal, tables):
        for name, circuit, _ in all_benchmarks():
            uniform = compile_circuit(circuit, cal,
                                      CompilerOptions.t_smt(routing="rr"),
                                      tables=tables)
            calibrated = compile_circuit(
                circuit, cal, CompilerOptions.t_smt_star(routing="rr"),
                tables=tables)
            assert calibrated.duration <= uniform.duration + 1e-9, name


class TestDailyAdaptationClaim:
    """Fig. 6: recompiling daily, R-SMT* tracks machine drift at least
    as well as T-SMT* on most days."""

    def test_three_day_resilience(self):
        generator = CalibrationGenerator(ibmq16_topology(), seed=2019)
        wins = 0
        days = 3
        for day in range(days):
            day_cal = generator.snapshot(day)
            day_tables = ReliabilityTables(day_cal)
            _, t = run_variant("Toffoli",
                               CompilerOptions.t_smt_star(routing="1bp"),
                               day_cal, day_tables, seed=11 + day)
            _, r = run_variant("Toffoli", CompilerOptions.r_smt_star(),
                               day_cal, day_tables, seed=11 + day)
            if r.success_rate >= t.success_rate - 0.03:
                wins += 1
        assert wins >= 2


class TestHeuristicClaim:
    """§7.4: GreedyE* is comparable to R-SMT* and scales far better."""

    def test_greedy_success_comparable(self, cal, tables):
        ratios = []
        for name in ("BV4", "HS4", "Toffoli", "Adder"):
            _, r = run_variant(name, CompilerOptions.r_smt_star(),
                               cal, tables)
            _, g = run_variant(name, CompilerOptions.greedy_e(),
                               cal, tables)
            ratios.append(g.success_rate / max(r.success_rate, 1e-9))
        assert geometric_mean(ratios) > 0.8

    def test_greedy_compile_time_far_smaller_at_scale(self, cal, tables):
        from repro.programs import random_circuit
        circuit = random_circuit(12, 300, seed=1)
        greedy = compile_circuit(circuit, cal, CompilerOptions.greedy_e(),
                                 tables=tables)
        capped = CompilerOptions.r_smt_star().with_(solver_time_limit=2.0)
        smt = compile_circuit(circuit, cal, capped, tables=tables)
        assert greedy.compile_time < 1.0
        assert smt.compile_time > 5 * greedy.compile_time

    def test_greedy_handles_128_qubits(self):
        """Fig. 11's right edge: 128-qubit random program compiles in
        well under a second with GreedyE*."""
        from repro.hardware import CalibrationGenerator, square_topology
        from repro.programs import random_circuit
        topo = square_topology(128)
        big_cal = CalibrationGenerator(topo, seed=0).snapshot(0)
        circuit = random_circuit(128, 512, seed=0)
        program = compile_circuit(circuit, big_cal,
                                  CompilerOptions.greedy_e())
        assert program.mapping.solve_time < 5.0
        assert len(program.placement) == 128
