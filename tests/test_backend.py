"""Backend/engine registry tests: presets, cache isolation, CLI."""

import io

import pytest

from repro.backend import (
    Backend,
    ExecutionEngine,
    get_backend,
    get_engine,
    register_backend,
    register_engine,
    registered_backends,
    registered_engines,
)
from repro.backend import base as backend_base
from repro.backend import engines as backend_engines
from repro.cli import main
from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import BackendError, SimulationError, TopologyError
from repro.hardware import GridTopology, device_calibration
from repro.programs import get_benchmark
from repro.runtime import SweepCell, TraceCache, run_sweep
from repro.simulator import estimate_success_analytic, execute

TRIALS = 128


@pytest.fixture
def bv4():
    return get_benchmark("BV4")


def make_device_cells(backends, spec, seeds=(0,), options=None, **kwargs):
    options = options or CompilerOptions.r_smt_star()
    return [SweepCell(circuit=spec.build(), backend=backend,
                      options=options, expected=spec.expected_output,
                      trials=TRIALS, seed=seed,
                      key=(backend.name, seed), **kwargs)
            for backend in backends for seed in seeds]


class TestBackendRegistry:
    def test_at_least_five_presets(self):
        assert len(registered_backends()) >= 5

    def test_lookup_is_case_insensitive_and_memoized(self):
        assert get_backend("IBMQ16") is get_backend("ibmq16")
        assert get_backend("ibmq16").topology.n_qubits == 16

    def test_unknown_backend_suggests(self):
        with pytest.raises(BackendError, match="did you mean 'ibmq16'"):
            get_backend("ibmq61")
        # The registry error still satisfies the legacy device contract.
        with pytest.raises(TopologyError):
            get_backend("quantum-toaster")

    def test_content_id_stable_and_distinct(self):
        a = get_backend("ibmq16")
        assert a.content_id() == \
            Backend(name="ibmq16", topology=a.topology).content_id()
        ids = {get_backend(n).content_id() for n in registered_backends()}
        assert len(ids) == len(registered_backends())
        assert a.with_(calibration_seed=7).content_id() != a.content_id()

    def test_calibration_stream_memoized(self):
        backend = get_backend("falcon27")
        assert backend.calibration(3) is backend.calibration(3)
        assert backend.calibration(3).label == "day3"
        days = list(backend.days(2))
        assert [c.label for c in days] == ["day0", "day1"]

    def test_third_party_registration_outside_devices_module(self):
        """Registering a machine touches neither devices.py nor the
        executor — the whole point of the registry."""

        @register_backend("testlab9")
        def testlab9():
            return Backend(name="testlab9",
                           topology=GridTopology(3, 3, name="TestLab9"),
                           description="test-only 3x3 machine")

        try:
            assert "testlab9" in registered_backends()
            backend = get_backend("testlab9")
            assert backend.n_qubits == 9
            # The legacy device entry points see it immediately.
            from repro.hardware import device_topology

            assert device_topology("testlab9").name == "TestLab9"
            # And it executes end to end.
            spec = get_benchmark("BV4")
            sweep = run_sweep(make_device_cells([backend], spec))
            assert 0.0 <= sweep.results[0].success_rate <= 1.0
        finally:
            backend_base._BACKENDS.pop("testlab9", None)
            backend_base._INSTANCES.pop("testlab9", None)

    def test_device_calibration_uses_backend_profile(self):
        """The compat wrapper must honor each preset's own profile."""
        falcon = device_calibration("falcon27")
        rueschlikon = device_calibration("ibmq16")
        assert falcon.mean_cnot_error() < rueschlikon.mean_cnot_error()
        # Seed override still works and is reflected in the data.
        assert device_calibration("ibmq16", seed=7).content_id() != \
            rueschlikon.content_id()


class TestEngineRegistry:
    def test_builtins_registered(self):
        assert {"batched", "trial", "analytic"} <= set(registered_engines())

    def test_unknown_engine_suggests(self):
        with pytest.raises(SimulationError, match="did you mean 'batched'"):
            get_engine("bathced")

    def test_engine_lookup_case_insensitive(self):
        # Matches the backend registry's case handling.
        assert get_engine("Batched") is get_engine("batched")

    def test_third_party_engine_runs_without_editing_executor(self, bv4):
        class ConstantEngine(ExecutionEngine):
            name = "constant-test"

            def run(self, compiled, calibration, noise, *, trials, seed,
                    expected=None, trace_cache=None):
                from repro.simulator import ExecutionResult

                return ExecutionResult(counts={expected: trials},
                                       trials=trials, expected=expected)

        register_engine(ConstantEngine)
        try:
            cal = device_calibration("ibmq16")
            compiled = compile_circuit(bv4.build(), cal,
                                       CompilerOptions.r_smt_star())
            result = execute(compiled, cal, trials=16,
                             expected=bv4.expected_output,
                             engine="constant-test")
            assert result.success_rate == 1.0
        finally:
            backend_engines._ENGINES.pop("constant-test", None)

    def test_analytic_engine_matches_estimate(self, bv4):
        cal = device_calibration("ibmq16")
        compiled = compile_circuit(bv4.build(), cal,
                                   CompilerOptions.r_smt_star())
        a = execute(compiled, cal, trials=4096, seed=0,
                    expected=bv4.expected_output, engine="analytic")
        b = execute(compiled, cal, trials=4096, seed=99,
                    expected=bv4.expected_output, engine="analytic")
        # Deterministic and seed-independent.
        assert a.counts == b.counts
        assert sum(a.counts.values()) == 4096
        estimate = estimate_success_analytic(compiled, cal).success
        # success = s * p_ideal(expected) + (1 - s) / 2^n, so it must
        # sit within the uniform-mass margin of the bare estimate.
        assert a.success_rate == pytest.approx(estimate, abs=0.05)

    def test_cell_engine_derived_from_backend(self, bv4):
        backend = get_backend("ibmq16").with_(default_engine="analytic")
        cell = SweepCell(circuit=bv4.build(), backend=backend,
                         options=CompilerOptions.r_smt_star(),
                         expected=bv4.expected_output)
        assert cell.engine == "analytic"
        override = SweepCell(circuit=bv4.build(), backend=backend,
                             options=CompilerOptions.r_smt_star(),
                             expected=bv4.expected_output, engine="trial")
        assert override.engine == "trial"


class TestCrossDeviceIsolation:
    def test_distinct_keys_and_zero_cross_hits(self, bv4):
        """Identical circuit+options on two backends: disjoint compile,
        stage and trace key spaces — no cache tier may cross-serve."""
        backends = [get_backend("ibmq16"), get_backend("aspen16")]
        cells = make_device_cells(backends, bv4)
        assert cells[0].compile_key() != cells[1].compile_key()
        assert cells[0].prefix_key() != cells[1].prefix_key()
        sweep = run_sweep(cells)
        # One compile, one lowering per device; zero hits anywhere.
        assert sweep.compile_stats.misses == 2
        assert sweep.compile_stats.hits == 0
        assert sweep.trace_stats.hits == 0
        assert sweep.stage_stats.hits == 0

    def test_same_device_still_shares(self, bv4):
        backend = get_backend("ibmq16")
        cells = make_device_cells([backend, backend], bv4, seeds=(0, 1))
        sweep = run_sweep(cells)
        assert sweep.compile_stats.misses == 1
        assert sweep.compile_stats.hits == len(cells) - 1
        assert sweep.trace_stats.hits == len(cells) - 1

    def test_trace_cache_scoping(self, bv4):
        """Two backends with *identical* calibrations still occupy
        disjoint trace-key spaces once scoped."""
        a = get_backend("ibmq16")
        b = a.with_(name="ibmq16-prime")
        cal = a.calibration()
        compiled = compile_circuit(bv4.build(), cal,
                                   CompilerOptions.qiskit())
        cache = TraceCache()
        execute(compiled, cal, trials=8, seed=0,
                trace_cache=cache.scoped(a))
        execute(compiled, cal, trials=8, seed=0,
                trace_cache=cache.scoped(b))
        assert cache.stats.hits == 0 and cache.stats.misses == 2
        assert len(cache) == 2

    def test_mixed_device_grid_parallel_bit_identical(self, bv4):
        backends = [get_backend(n)
                    for n in ("ibmq16", "ibmq5", "iontrap8")]
        cells = make_device_cells(backends, bv4, seeds=(0, 1))
        serial = run_sweep(cells, workers=0)
        for workers in (2, 3):
            parallel = run_sweep(cells, workers=workers)
            for a, b in zip(serial, parallel):
                assert a.key == b.key
                assert a.execution.counts == b.execution.counts
            assert parallel.compile_stats.hits == serial.compile_stats.hits
            assert parallel.trace_stats.hits == serial.trace_stats.hits

    def test_partition_clusters_whole_machines(self, bv4):
        """With at least as many machines as batches, each device's
        cells land on exactly one worker (shared tables memo)."""
        from repro.runtime.sweep import _partition

        backends = [get_backend(n)
                    for n in ("ibmq16", "ibmq5", "iontrap8")]
        variants = [CompilerOptions.greedy_e(), CompilerOptions.greedy_v()]
        cells = [cell
                 for options in variants
                 for cell in make_device_cells(backends, bv4,
                                               options=options)]
        batches = _partition(cells, workers=3)
        for batch in batches:
            assert len({cell.machine_key() for _, cell in batch}) == 1


class TestPreRefactorIdentity:
    def test_backend_cell_matches_bare_calibration_cell(self, bv4):
        """The default ibmq16+batched path is pinned: routing a cell
        through the backend axis changes no fingerprint and no count."""
        backend = get_backend("ibmq16")
        options = CompilerOptions.r_smt_star()
        with_backend = SweepCell(circuit=bv4.build(), backend=backend,
                                 options=options,
                                 expected=bv4.expected_output,
                                 trials=TRIALS, seed=5, key="b")
        bare = SweepCell(circuit=bv4.build(),
                         calibration=device_calibration("ibmq16"),
                         options=options, expected=bv4.expected_output,
                         trials=TRIALS, seed=5, key="c")
        assert with_backend.calibration.content_id() == \
            bare.calibration.content_id()
        assert with_backend.engine == bare.engine == "batched"
        a, b = run_sweep([with_backend]).results[0], \
            run_sweep([bare]).results[0]
        assert a.compiled.fingerprint() == b.compiled.fingerprint()
        assert a.execution.counts == b.execution.counts

    def test_execute_matches_direct_engine_run(self, bv4):
        """`execute` is a thin dispatcher: going through the registry
        must be bit-identical to the engine's own run()."""
        cal = device_calibration("ibmq16")
        compiled = compile_circuit(bv4.build(), cal,
                                   CompilerOptions.r_smt_star())
        via_execute = execute(compiled, cal, trials=TRIALS, seed=3,
                              expected=bv4.expected_output)
        from repro.simulator import NoiseModel

        direct = get_engine("batched").run(
            compiled, cal, NoiseModel(cal), trials=TRIALS, seed=3,
            expected=bv4.expected_output)
        assert via_execute.counts == direct.counts


class TestBackendCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_backends_listing(self):
        code, text = self.run_cli("backends")
        assert code == 0
        for name in ("ibmq16", "ibmq5", "ibmq20", "iontrap8", "falcon27"):
            assert name in text
        assert "analytic" in text  # engine roster rides along

    def test_run_on_preset_with_engine(self):
        code, text = self.run_cli("run", "--benchmark", "BV4",
                                  "--device", "falcon27",
                                  "--engine", "analytic",
                                  "--trials", "64")
        assert code == 0
        assert "success rate:" in text

    def test_run_unknown_engine_is_an_error(self):
        code, _ = self.run_cli("run", "--benchmark", "BV4",
                               "--engine", "warp-drive",
                               "--trials", "8")
        assert code == 1

    def test_multi_device_sweep(self):
        code, text = self.run_cli(
            "sweep", "--device", "ibmq16", "ibmq5", "iontrap8",
            "--benchmarks", "BV4", "--variants", "greedye*",
            "--trials", "32")
        assert code == 0
        for name in ("ibmq16", "ibmq5", "iontrap8"):
            assert name in text
        assert text.count("BV4") == 3  # same grid ran once per device

    def test_experiment_accepts_device(self):
        code, text = self.run_cli("experiment", "fig8",
                                  "--device", "aspen16")
        assert code == 0
        assert "est.reliability" in text

    def test_unknown_device_is_an_error(self):
        code, _ = self.run_cli("sweep", "--device", "toaster",
                               "--benchmarks", "BV4")
        assert code == 1


class TestDiskStoreStats:
    def test_summary_surfaces_per_tier_stats(self, bv4, tmp_path):
        backend = get_backend("ibmq5")
        cells = make_device_cells([backend], bv4,
                                  options=CompilerOptions.greedy_e())
        first = run_sweep(cells, cache_dir=tmp_path)
        assert first.disk_stats["compile"].hits == 0
        assert first.disk_stats["compile"].bytes_written > 0
        assert "disk store:" in first.summary()
        second = run_sweep(cells, cache_dir=tmp_path)
        assert second.disk_stats["compile"].hits == len(
            {c.compile_key() for c in cells})
        assert second.disk_stats["compile"].bytes_read > 0
        assert "hit" in second.summary()

    def test_result_stats_are_snapshots(self, bv4, tmp_path):
        """Reusing one persistent cache across sweeps must not mutate
        an earlier result's disk counters."""
        from repro.runtime import PersistentCompileCache

        cache = PersistentCompileCache(tmp_path)
        cells = make_device_cells([get_backend("ibmq5")], bv4,
                                  options=CompilerOptions.greedy_e())
        first = run_sweep(cells, compile_cache=cache)
        written_then = first.disk_stats["compile"].bytes_written
        run_sweep(make_device_cells([get_backend("iontrap8")], bv4,
                  options=CompilerOptions.greedy_e()),
                  compile_cache=cache)
        assert first.disk_stats["compile"].bytes_written == written_then

    def test_in_memory_sweep_has_no_disk_section(self, bv4):
        sweep = run_sweep(make_device_cells([get_backend("ibmq5")], bv4,
                          options=CompilerOptions.greedy_e()))
        assert sweep.disk_stats == {}
        assert "disk store:" not in sweep.summary()
