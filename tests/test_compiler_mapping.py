"""Tests for the mapping passes: trivial, SMT variants, greedy variants."""

import itertools
import math

import pytest

from repro.compiler import (
    CompilerOptions,
    GreedyEdgeMapper,
    GreedyVertexMapper,
    ReliabilitySmtMapper,
    TimeSmtMapper,
    TrivialMapper,
    make_mapper,
)
from repro.exceptions import MappingError
from repro.hardware import (
    ReliabilityTables,
    default_ibmq16_calibration,
    ibmq16_topology,
    uniform_calibration,
)
from repro.ir.circuit import Circuit
from repro.programs import build_benchmark


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def tables(cal):
    return ReliabilityTables(cal)


ALL_MAPPERS = [
    ("trivial", lambda: TrivialMapper()),
    ("t-smt", lambda: TimeSmtMapper(CompilerOptions.t_smt())),
    ("t-smt*", lambda: TimeSmtMapper(CompilerOptions.t_smt_star())),
    ("r-smt*", lambda: ReliabilitySmtMapper(CompilerOptions.r_smt_star())),
    ("greedyv*", lambda: GreedyVertexMapper()),
    ("greedye*", lambda: GreedyEdgeMapper()),
]


class TestAllMappers:
    @pytest.mark.parametrize("label,factory", ALL_MAPPERS)
    @pytest.mark.parametrize("bench", ["BV4", "HS4", "Toffoli", "Adder"])
    def test_valid_injective_placement(self, label, factory, bench,
                                       cal, tables):
        circuit = build_benchmark(bench)
        result = factory().run(circuit, cal, tables)
        values = list(result.placement.values())
        assert len(result.placement) == circuit.n_qubits
        assert len(set(values)) == len(values)
        assert all(0 <= h < 16 for h in values)

    @pytest.mark.parametrize("label,factory", ALL_MAPPERS)
    def test_program_too_large_rejected(self, label, factory, cal, tables):
        circuit = Circuit(17)
        circuit.h(16)
        with pytest.raises(MappingError):
            factory().run(circuit, cal, tables)


class TestTrivialMapper:
    def test_lexicographic(self, cal, tables):
        result = TrivialMapper().run(build_benchmark("BV4"), cal, tables)
        assert result.placement == {0: 0, 1: 1, 2: 2, 3: 3}
        assert not result.optimal


class TestReliabilitySmt:
    def test_star_benchmarks_get_zero_swap_mappings(self, cal, tables):
        """BV/HS/QFT/Adder admit adjacent placements; R-SMT* finds them."""
        for bench in ("BV4", "BV8", "HS6", "QFT", "Adder"):
            circuit = build_benchmark(bench)
            result = ReliabilitySmtMapper(
                CompilerOptions.r_smt_star()).run(circuit, cal, tables)
            for gate in circuit.cnots:
                hc = result.placement[gate.control]
                ht = result.placement[gate.target]
                assert cal.topology.is_adjacent(hc, ht), bench

    def test_matches_brute_force_on_small_program(self, tables):
        """Exactness: enumerate all placements of a 3-qubit program on a
        2x2 machine and compare objectives."""
        topo_cal = default_ibmq16_calibration()
        # Use a 2x3 machine so brute force is tiny.
        from repro.hardware import CalibrationGenerator, GridTopology
        small_cal = CalibrationGenerator(GridTopology(3, 2), seed=3) \
            .snapshot(0)
        small_tables = ReliabilityTables(small_cal)
        circuit = Circuit(3, 3).cx(0, 1).cx(1, 2).measure_all()
        options = CompilerOptions.r_smt_star(omega=0.5)
        result = ReliabilitySmtMapper(options).run(circuit, small_cal,
                                                   small_tables)
        assert result.optimal

        def objective(placement):
            score = 0.0
            for q in range(3):
                score += 0.5 * math.log(
                    small_cal.readout_reliability(placement[q]))
            for (qc, qt) in [(0, 1), (1, 2)]:
                rel = small_tables.best_one_bend(
                    placement[qc], placement[qt]).reliability
                score += 0.5 * math.log(rel)
            return score

        brute = max(objective(dict(zip(range(3), perm)))
                    for perm in itertools.permutations(range(6), 3))
        assert result.objective == pytest.approx(brute, abs=1e-9)

    def test_omega_one_optimizes_readouts(self, cal, tables):
        """With omega=1 the chosen readout qubits are the global best."""
        circuit = build_benchmark("BV4")
        options = CompilerOptions.r_smt_star(omega=1.0)
        result = ReliabilitySmtMapper(options).run(circuit, cal, tables)
        measured_hw = [result.placement[g.qubits[0]]
                       for g in circuit.measurements]
        rels = sorted((cal.readout_reliability(h)
                       for h in cal.topology.iter_qubits()), reverse=True)
        chosen = sorted((cal.readout_reliability(h) for h in measured_hw),
                        reverse=True)
        assert chosen == pytest.approx(rels[:len(chosen)])

    def test_interacting_only_search_still_places_everything(self, cal,
                                                             tables):
        """BV8 has 4 non-interacting (but measured) qubits."""
        circuit = build_benchmark("BV8")
        result = ReliabilitySmtMapper(
            CompilerOptions.r_smt_star()).run(circuit, cal, tables)
        assert len(result.placement) == 8


class TestTimeSmt:
    def test_rejects_wrong_variant(self):
        with pytest.raises(MappingError):
            TimeSmtMapper(CompilerOptions.r_smt_star())

    def test_uniform_variant_ignores_calibration(self, tables):
        """T-SMT must produce the same placement for any calibration with
        the same topology (it is noise-blind)."""
        from repro.hardware import CalibrationGenerator
        circuit = build_benchmark("Toffoli")
        placements = []
        for seed in (1, 2):
            cal = CalibrationGenerator(ibmq16_topology(),
                                       seed=seed).snapshot(0)
            mapper = TimeSmtMapper(CompilerOptions.t_smt())
            placements.append(mapper.run(circuit, cal,
                                         ReliabilityTables(cal)).placement)
        interacting = {0, 1, 2}
        assert {q: placements[0][q] for q in interacting} == \
            {q: placements[1][q] for q in interacting}

    def test_finds_adjacent_chain_for_line_program(self, cal, tables):
        circuit = Circuit(3, 3).cx(0, 1).cx(1, 2).measure_all()
        result = TimeSmtMapper(
            CompilerOptions.t_smt_star()).run(circuit, cal, tables)
        assert cal.topology.is_adjacent(result.placement[0],
                                        result.placement[1])
        assert cal.topology.is_adjacent(result.placement[1],
                                        result.placement[2])
        assert result.optimal


class TestGreedy:
    def test_greedy_edge_handles_disconnected_graph(self, cal, tables):
        """HS6 is a perfect matching: each pair must land adjacent."""
        circuit = build_benchmark("HS6")
        result = GreedyEdgeMapper().run(circuit, cal, tables)
        for (a, b) in circuit.interaction_graph():
            assert cal.topology.is_adjacent(result.placement[a],
                                            result.placement[b])

    def test_greedy_vertex_handles_disconnected_graph(self, cal, tables):
        circuit = build_benchmark("HS6")
        result = GreedyVertexMapper().run(circuit, cal, tables)
        for (a, b) in circuit.interaction_graph():
            assert cal.topology.is_adjacent(result.placement[a],
                                            result.placement[b])

    def test_greedy_is_fast(self, cal, tables):
        from repro.programs import random_circuit
        circuit = random_circuit(16, 500, seed=0)
        result = GreedyEdgeMapper().run(circuit, cal, tables)
        assert result.solve_time < 2.0

    def test_circuit_without_cnots(self, cal, tables):
        circuit = Circuit(3, 3).h(0).h(1).h(2).measure_all()
        for mapper in (GreedyEdgeMapper(), GreedyVertexMapper()):
            result = mapper.run(circuit, cal, tables)
            assert len(result.placement) == 3


class TestMakeMapper:
    @pytest.mark.parametrize("options,expected", [
        (CompilerOptions.qiskit(), TrivialMapper),
        (CompilerOptions.t_smt(), TimeSmtMapper),
        (CompilerOptions.t_smt_star(), TimeSmtMapper),
        (CompilerOptions.r_smt_star(), ReliabilitySmtMapper),
        (CompilerOptions.greedy_v(), GreedyVertexMapper),
        (CompilerOptions.greedy_e(), GreedyEdgeMapper),
    ])
    def test_dispatch(self, options, expected):
        assert isinstance(make_mapper(options), expected)
