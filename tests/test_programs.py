"""Tests for the benchmark programs: structure and functional correctness.

Functional correctness is checked by running each benchmark noiselessly
on the statevector simulator and asserting the registered deterministic
answer comes out with probability 1.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit
from repro.programs import (
    all_benchmarks,
    bernstein_vazirani,
    benchmark_names,
    build_benchmark,
    expected_output,
    get_benchmark,
    hidden_shift,
    qft_roundtrip,
    random_circuit,
)
from repro.programs.arith import (
    adder,
    adder_expected_output,
    fredkin,
    fredkin_expected_output,
    or_gate,
    or_expected_output,
    peres,
    peres_expected_output,
    toffoli,
    toffoli_expected_output,
)
from repro.simulator import StateVector


def ideal_outcome(circuit: Circuit) -> str:
    """Noise-free deterministic outcome of a circuit (cbit 0 first)."""
    state = StateVector(circuit.n_qubits)
    measures = {}
    for gate in circuit.gates:
        if gate.is_measure:
            measures[gate.qubits[0]] = gate.cbit
        elif gate.name != "barrier":
            state.apply_gate(gate.name, gate.qubits, param=gate.param)
    probs = state.probabilities()
    # Marginalize over unmeasured qubits; assert determinism on cbits.
    outcome_probs = {}
    n = circuit.n_qubits
    for index, p in enumerate(probs):
        if p < 1e-9:
            continue
        chars = ["0"] * circuit.n_cbits
        for q, cbit in measures.items():
            chars[cbit] = str((index >> (n - 1 - q)) & 1)
        key = "".join(chars)
        outcome_probs[key] = outcome_probs.get(key, 0.0) + p
    best = max(outcome_probs, key=outcome_probs.get)
    assert outcome_probs[best] == pytest.approx(1.0, abs=1e-6), \
        f"non-deterministic output: {outcome_probs}"
    return best


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(benchmark_names()) == 12

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(Exception):
            get_benchmark("nope")

    def test_registry_metadata_matches_builders(self):
        for name in benchmark_names():
            spec = get_benchmark(name)
            circuit = spec.build()
            assert circuit.n_qubits == spec.paper_qubits
            assert circuit.cnot_count() >= spec.paper_cnots - 3

    def test_all_benchmarks_iterator(self):
        names = [n for n, _, _ in all_benchmarks()]
        assert names == benchmark_names()

    def test_cnot_counts_match_table2(self):
        """CNOT counts equal Table 2 for all but Adder (see DESIGN.md)."""
        for name in benchmark_names():
            spec = get_benchmark(name)
            if name == "Adder":
                continue
            assert spec.build().cnot_count() == spec.paper_cnots, name


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("name", [
        "BV4", "BV6", "BV8", "HS2", "HS4", "HS6",
        "Toffoli", "Fredkin", "Or", "Peres", "QFT", "Adder",
    ])
    def test_registered_expected_output_is_the_ideal_outcome(self, name):
        assert ideal_outcome(build_benchmark(name)) == expected_output(name)

    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_bv_returns_hidden_string(self, bits):
        circuit = bernstein_vazirani(bits)
        assert ideal_outcome(circuit) == "".join(str(b) for b in bits)

    @given(half=st.lists(st.integers(0, 1), min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_hs_returns_shift(self, half):
        shift = half + half[::-1]  # even length
        circuit = hidden_shift(shift)
        assert ideal_outcome(circuit) == "".join(str(b) for b in shift)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_qft_roundtrip_returns_zero(self, n):
        assert ideal_outcome(qft_roundtrip(n)) == "0" * n

    @pytest.mark.parametrize("inputs", [(a, b, c) for a in (0, 1)
                                        for b in (0, 1) for c in (0, 1)])
    def test_toffoli_truth_table(self, inputs):
        assert ideal_outcome(toffoli(inputs)) == \
            toffoli_expected_output(inputs)

    @pytest.mark.parametrize("inputs", [(a, b, c) for a in (0, 1)
                                        for b in (0, 1) for c in (0, 1)])
    def test_fredkin_truth_table(self, inputs):
        assert ideal_outcome(fredkin(inputs)) == \
            fredkin_expected_output(inputs)

    @pytest.mark.parametrize("inputs", [(a, b, 0) for a in (0, 1)
                                        for b in (0, 1)])
    def test_or_truth_table(self, inputs):
        assert ideal_outcome(or_gate(inputs)) == or_expected_output(inputs)

    @pytest.mark.parametrize("inputs", [(a, b, c) for a in (0, 1)
                                        for b in (0, 1) for c in (0, 1)])
    def test_peres_truth_table(self, inputs):
        assert ideal_outcome(peres(inputs)) == peres_expected_output(inputs)

    @pytest.mark.parametrize("inputs", [(c, b, a) for c in (0, 1)
                                        for b in (0, 1) for a in (0, 1)])
    def test_adder_truth_table(self, inputs):
        assert ideal_outcome(adder(inputs)) == adder_expected_output(inputs)

    def test_adder_interaction_graph_is_a_star(self):
        """The paper's zero-movement observation needs a triangle-free
        adder; ours is a star centered on qubit 2."""
        edges = set(adder().interaction_graph())
        assert edges == {(1, 2), (0, 2), (2, 3)}

    def test_toffoli_family_has_triangles(self):
        for circuit in (toffoli(), fredkin(), or_gate(), peres()):
            edges = set(circuit.interaction_graph())
            assert {(0, 1), (0, 2), (1, 2)} <= edges


class TestValidation:
    def test_bv_rejects_bad_string(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani([0, 2])
        with pytest.raises(CircuitError):
            bernstein_vazirani([])

    def test_hs_rejects_odd_length(self):
        with pytest.raises(CircuitError):
            hidden_shift([1, 0, 1])

    def test_arith_rejects_bad_inputs(self):
        with pytest.raises(CircuitError):
            toffoli((1, 1))
        with pytest.raises(CircuitError):
            adder((2, 0, 0))


class TestRandomCircuits:
    def test_reproducible(self):
        a = random_circuit(4, 30, seed=1)
        b = random_circuit(4, 30, seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_circuit(4, 30, seed=1) != random_circuit(4, 30, seed=2)

    def test_gate_count(self):
        c = random_circuit(4, 30, seed=0, measure=False)
        assert c.gate_count() == 30

    def test_measure_layer(self):
        c = random_circuit(4, 10, seed=0)
        assert len(c.measurements) == 4

    def test_two_qubit_fraction(self):
        c = random_circuit(4, 200, seed=0, two_qubit_fraction=1.0,
                           measure=False)
        assert c.cnot_count() == 200

    def test_rejects_tiny_register(self):
        with pytest.raises(CircuitError):
            random_circuit(1, 5)

    @given(seed=st.integers(0, 1000), n=st.integers(2, 8),
           g=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_gates_within_register(self, seed, n, g):
        c = random_circuit(n, g, seed=seed)
        for gate in c:
            assert all(q < n for q in gate.qubits)
