"""Compile-service tests: protocol framing, admission control, the
served/in-process bit-identity contract, and the chaos drills the
service's robustness story rests on (dropped and truncated responses,
worker death behind the service, a server killed and restarted
mid-sweep, SIGTERM drain).

Chaos tests arm the ``REPRO_FAULTS`` gate per-test via monkeypatch,
exactly like ``tests/test_faults.py``; connection-level faults are
addressed by submit-request sequence number (global arrival order), so
single-client drills observe their faults deterministically.
"""

import contextlib
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.compiler import CompilerOptions
from repro.exceptions import (
    CircuitOpen,
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceUnavailable,
)
from repro.hardware import default_ibmq16_calibration
from repro.programs import get_benchmark
from repro.runtime import (
    FaultPlan,
    PersistentCompileCache,
    SweepCell,
    cell_fingerprint,
    run_sweep,
)
from repro.service import (
    AdmissionController,
    MAX_MESSAGE_BYTES,
    ReproServer,
    RetryPolicy,
    ServerConfig,
    ServiceClient,
    decode_cell,
    decode_result,
    encode_cell,
    encode_result,
    recv_message,
    send_message,
    submit_sweep,
)
from repro.service.protocol import send_truncated

TRIALS = 64

#: Fast-compiling options: service tests exercise the transport and
#: admission layers, not the SMT solver.
OPTIONS = CompilerOptions.qiskit()


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(autouse=True)
def armed(monkeypatch):
    """Arm the fault gate for every test in this file (plans are only
    passed where a drill wants them; armed-but-absent is inert)."""
    monkeypatch.setenv("REPRO_FAULTS", "1")


def make_cells(cal, benchmarks=("BV4", "Toffoli", "HS2"), seeds=(0, 1)):
    cells = []
    for name in benchmarks:
        spec = get_benchmark(name)
        circuit = spec.build()
        for seed in seeds:
            cells.append(SweepCell(
                circuit=circuit, calibration=cal, options=OPTIONS,
                expected=spec.expected_output, trials=TRIALS, seed=seed,
                key=(name, seed)))
    return cells


@pytest.fixture(scope="module")
def cells(cal):
    return make_cells(cal)


@pytest.fixture(scope="module")
def baseline(cells):
    """The in-process reference every served run is compared against."""
    return run_sweep(cells)


def assert_matches_reference(reference, results):
    """Served results must be bit-identical to the in-process run
    (journal-resume provenance aside)."""
    by_key = {result.key: result for result in reference}
    assert len(results) == len(reference.results)
    for got in results:
        ref = by_key[got.key]
        assert got.ok, f"cell {got.key} failed: {got.failure}"
        assert got.execution.counts == ref.execution.counts
        assert got.compiled.placement == ref.compiled.placement
        assert got.compiled.qasm() == ref.compiled.qasm()
        assert got.success_rate == ref.success_rate


@contextlib.contextmanager
def running_server(faults=None, **config_kwargs):
    """An in-thread server on an OS-picked loopback port."""
    server = ReproServer(ServerConfig(**config_kwargs), faults=faults)
    host, port = server.start()
    try:
        yield server, host, port
    finally:
        server.stop()


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_port(port: int, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port),
                                     timeout=0.2).close()
            return
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"port {port} never opened")


# --------------------------------------------------------------------------
# Wire protocol
# --------------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            send_message(a, {"type": "submit", "tenant": "t", "n": 3})
            assert recv_message(b) == {"type": "submit", "tenant": "t",
                                       "n": 3}

    def test_clean_eof_between_frames_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert recv_message(b) is None

    def test_torn_frame_is_a_protocol_error(self):
        a, b = socket.socketpair()
        with b:
            send_truncated(a, {"type": "result", "body": "x" * 64})
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)

    def test_oversized_length_prefix_is_rejected_not_allocated(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall((MAX_MESSAGE_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="corrupt length"):
                recv_message(b)

    def test_non_json_payload_is_a_protocol_error(self):
        a, b = socket.socketpair()
        with a, b:
            payload = b"\xffnot json"
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(b)

    def test_untyped_envelope_is_a_protocol_error(self):
        a, b = socket.socketpair()
        with a, b:
            payload = b"[1,2,3]"
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(ProtocolError, match="typed envelope"):
                recv_message(b)

    def test_cell_roundtrip_verifies_fingerprint(self, cal):
        cell = make_cells(cal, benchmarks=("BV4",), seeds=(0,))[0]
        envelope = encode_cell(cell)
        assert envelope["fingerprint"] == cell_fingerprint(cell)
        decoded = decode_cell(envelope)
        assert cell_fingerprint(decoded) == envelope["fingerprint"]

    def test_fingerprint_mismatch_is_rejected(self, cal):
        one, other = make_cells(cal, benchmarks=("BV4",), seeds=(0, 1))
        envelope = encode_cell(one)
        envelope["fingerprint"] = cell_fingerprint(other)
        with pytest.raises(ProtocolError, match="mismatch"):
            decode_cell(envelope)

    def test_result_body_roundtrip(self, baseline):
        result = baseline.results[0]
        decoded = decode_result({"result": encode_result(result)})
        assert decoded == result


# --------------------------------------------------------------------------
# Admission control (unit)
# --------------------------------------------------------------------------


class TestAdmission:
    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionController(capacity=0)
        with pytest.raises(ValueError, match="tenant cap"):
            AdmissionController(tenant_cap=0)

    def test_k_plus_first_distinct_submit_is_shed(self):
        controller = AdmissionController(capacity=3, tenant_cap=100)
        for i in range(3):
            assert controller.offer(f"fp-{i}", object(), "t").kind \
                == "admit"
        verdict = controller.offer("fp-3", object(), "t")
        assert verdict.kind == "shed"
        assert verdict.reason == "queue-full"
        assert verdict.retry_after > 0
        assert controller.stats.shed_queue_full == 1

    def test_queue_full_hint_scales_with_backlog(self):
        small = AdmissionController(capacity=1, retry_after=0.1)
        small.offer("fp-0", object(), "t")
        hint = small.offer("fp-x", object(), "t").retry_after
        assert hint == pytest.approx(0.1 * 2.0)

    def test_duplicate_fingerprint_coalesces_without_queue_cost(self):
        controller = AdmissionController(capacity=1, tenant_cap=100)
        first = controller.offer("fp", object(), "alice")
        again = controller.offer("fp", object(), "bob")
        assert first.kind == "admit" and again.kind == "coalesce"
        assert again.request is first.request
        assert controller.depth() == 1  # no second queue slot
        assert controller.stats.coalesced == 1
        # Both tenants occupy outstanding slots, and complete() frees
        # them all.
        assert controller.snapshot()["tenants"] == {"alice": 1, "bob": 1}
        batch = controller.take_batch(8, timeout=0.0)
        controller.complete(batch[0], result="done")
        assert first.request.done.is_set()
        assert first.request.result == "done"
        assert controller.snapshot()["tenants"] == {}

    def test_tenant_cap_is_enforced(self):
        controller = AdmissionController(capacity=100, tenant_cap=2)
        controller.offer("fp-0", object(), "greedy")
        controller.offer("fp-1", object(), "greedy")
        verdict = controller.offer("fp-2", object(), "greedy")
        assert verdict.kind == "shed" and verdict.reason == "tenant-cap"
        # Other tenants are unaffected — that is the point of the cap.
        assert controller.offer("fp-2", object(), "modest").kind == "admit"

    def test_draining_sheds_new_work_but_keeps_admitted(self):
        controller = AdmissionController(capacity=8)
        admitted = controller.offer("fp-0", object(), "t")
        controller.drain()
        verdict = controller.offer("fp-1", object(), "t")
        assert verdict.kind == "shed" and verdict.reason == "draining"
        # The admitted request still flows through the executor path.
        batch = controller.take_batch(8, timeout=0.0)
        assert batch == [admitted.request]
        controller.complete(batch[0], result="ok")
        assert controller.pending() == 0

    def test_in_flight_requests_still_coalesce(self):
        controller = AdmissionController(capacity=4)
        first = controller.offer("fp", object(), "a")
        controller.take_batch(4, timeout=0.0)  # fp is now in flight
        assert controller.depth() == 0
        late = controller.offer("fp", object(), "b")
        assert late.kind == "coalesce"
        assert late.request is first.request

    def test_take_batch_honors_max_batch(self):
        controller = AdmissionController(capacity=10)
        for i in range(5):
            controller.offer(f"fp-{i}", object(), "t")
        batch = controller.take_batch(2, timeout=0.0)
        assert [r.fingerprint for r in batch] == ["fp-0", "fp-1"]
        assert controller.depth() == 3


# --------------------------------------------------------------------------
# Served sweeps, no faults: the bit-identity contract
# --------------------------------------------------------------------------


class TestServedSweep:
    def test_served_results_match_in_process_run(self, cells, baseline):
        with running_server() as (_server, host, port):
            results = submit_sweep(cells, host, port, deadline=120.0)
        assert_matches_reference(baseline, results)

    def test_journal_serves_resubmitted_cells(self, cells, baseline,
                                              tmp_path):
        with running_server(cache_dir=tmp_path / "store") as \
                (server, host, port):
            first = submit_sweep(cells, host, port, deadline=120.0)
            with ServiceClient(host, port, tenant="second") as client:
                again = client.submit_many(cells, deadline=120.0)
                stats = dict(client.stats)
            health = server.health()
        assert_matches_reference(baseline, first)
        assert_matches_reference(baseline, again)
        # Every resubmitted cell was served from the checkpoint journal
        # (surfaced per-response and in the health report).
        assert stats["journal_hits"] == len(cells)
        assert health["journal"] is True
        assert health["served"] == 2 * len(cells)

    def test_concurrent_identical_submits_coalesce(self, cal, baseline):
        # The cell-level delay fault holds the batch in the executor
        # long enough that the second client's identical submit must
        # coalesce onto the in-flight request.
        cell = make_cells(cal, benchmarks=("BV4",), seeds=(0,))[0]
        with running_server(faults=FaultPlan(delay={0: 0.8})) as \
                (server, host, port):
            outcome = {}

            def first():
                with ServiceClient(host, port, tenant="a") as client:
                    outcome["a"] = client.submit(cell, deadline=60.0)

            thread = threading.Thread(target=first)
            thread.start()
            time.sleep(0.25)  # let the submit be admitted and batched
            with ServiceClient(host, port, tenant="b") as client:
                outcome["b"] = client.submit(cell, deadline=60.0)
                coalesced = client.stats["coalesced"]
            thread.join()
            health = server.health()
        assert coalesced == 1
        assert health["coalesced"] == 1
        assert outcome["a"] == outcome["b"]
        ref = {r.key: r for r in baseline}[cell.key]
        assert outcome["a"].execution.counts == ref.execution.counts

    def test_health_probe_over_the_wire(self):
        with running_server() as (_server, host, port):
            with ServiceClient(host, port) as client:
                report = client.health()
        assert report["status"] == "ok"
        assert report["capacity"] == 64
        assert report["queue_depth"] == 0
        assert report["journal"] is False

    def test_unknown_request_type_is_a_structured_error(self):
        with running_server() as (_server, host, port):
            with socket.create_connection((host, port)) as conn:
                send_message(conn, {"type": "frobnicate"})
                response = recv_message(conn)
        assert response["type"] == "error"
        assert "frobnicate" in response["message"]

    def test_malformed_submit_body_is_rejected_not_crashed(self):
        with running_server() as (_server, host, port):
            with socket.create_connection((host, port)) as conn:
                send_message(conn, {"type": "submit", "tenant": "t",
                                    "fingerprint": "cell-v1|bogus",
                                    "cell": "AAAA"})
                response = recv_message(conn)
                # The connection survives for a retry with a good body.
                send_message(conn, {"type": "health"})
                health = recv_message(conn)
        assert response["type"] == "error"
        assert response["error_type"] == "ProtocolError"
        assert health["type"] == "health"


# --------------------------------------------------------------------------
# Admission bounds, end to end
# --------------------------------------------------------------------------


class TestAdmissionEndToEnd:
    def test_overload_sheds_structurally_and_backoff_completes(
            self, cal, baseline):
        """Acceptance: with capacity 1, three concurrent distinct
        submits produce at least one structured queue-full shed (never
        a hang), and clients that keep backing off all complete with
        correct results."""
        cells = make_cells(cal, benchmarks=("BV4", "Toffoli", "HS2"),
                           seeds=(0,))
        retry = RetryPolicy(max_attempts=10, base_delay=0.1,
                            max_delay=0.5)
        with running_server(queue_capacity=1, batch_max=1,
                            faults=FaultPlan(delay={0: 0.6})) as \
                (server, host, port):
            results, sheds = {}, []

            def submit_one(index, cell):
                with ServiceClient(host, port, tenant=f"t{index}",
                                   retry=retry,
                                   jitter_seed=index) as client:
                    results[cell.key] = client.submit(cell,
                                                      deadline=120.0)
                    sheds.append(client.stats["sheds"])

            threads = [threading.Thread(target=submit_one, args=(i, c))
                       for i, c in enumerate(cells)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            health = server.health()
        assert len(results) == len(cells)
        assert_matches_reference(
            run_sweep(cells), list(results.values()))
        # The bound actually fired: the server shed, the clients retried
        # through it.
        assert health["shed_queue_full"] >= 1
        assert sum(sheds) >= 1

    def test_tenant_cap_shed_end_to_end(self, cal):
        cells = make_cells(cal, benchmarks=("BV4", "Toffoli"),
                           seeds=(0,))
        with running_server(tenant_cap=1,
                            faults=FaultPlan(delay={0: 0.8})) as \
                (_server, host, port):
            def occupy():
                with ServiceClient(host, port, tenant="greedy") as c:
                    c.submit(cells[0], deadline=60.0)

            thread = threading.Thread(target=occupy)
            thread.start()
            time.sleep(0.25)
            impatient = RetryPolicy(max_attempts=1)
            with ServiceClient(host, port, tenant="greedy",
                               retry=impatient) as client:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    client.submit(cells[1], deadline=10.0)
            thread.join()
        assert excinfo.value.reason == "tenant-cap"
        assert excinfo.value.retry_after > 0

    def test_draining_server_sheds_with_notice(self, cal):
        cell = make_cells(cal, benchmarks=("BV4",), seeds=(0,))[0]
        with running_server() as (server, host, port):
            server.request_drain()
            with ServiceClient(host, port,
                               retry=RetryPolicy(max_attempts=1)) as \
                    client:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    client.submit(cell, deadline=10.0)
            assert server.health()["status"] == "draining"
        assert excinfo.value.reason == "draining"


# --------------------------------------------------------------------------
# Client resilience
# --------------------------------------------------------------------------


class TestClientResilience:
    def test_backoff_delays_are_seed_deterministic_and_bounded(self):
        import random

        policy = RetryPolicy(base_delay=0.1, multiplier=2.0,
                             max_delay=1.0, jitter=0.25)
        a = [policy.delay(n, random.Random(7)) for n in range(1, 6)]
        b = [policy.delay(n, random.Random(7)) for n in range(1, 6)]
        assert a == b
        for attempt, value in enumerate(a, start=1):
            raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert raw * 0.75 <= value <= raw * 1.25

    def test_circuit_breaker_opens_and_fails_fast(self):
        port = free_port()  # nothing listening
        retry = RetryPolicy(max_attempts=6, base_delay=0.01,
                            breaker_threshold=2, breaker_cooldown=60.0)
        with ServiceClient("127.0.0.1", port, retry=retry) as client:
            with pytest.raises(CircuitOpen):
                client.submit(_tiny_cell(), deadline=None)
            assert client.breaker_open
            assert client.stats["transport_failures"] == 2

    def test_breaker_half_open_probe_recovers(self, cal, baseline):
        cell = make_cells(cal, benchmarks=("BV4",), seeds=(0,))[0]
        port = free_port()
        retry = RetryPolicy(max_attempts=1, base_delay=0.01,
                            breaker_threshold=1, breaker_cooldown=0.2)
        with ServiceClient("127.0.0.1", port, retry=retry) as client:
            with pytest.raises(ServiceError):
                client.submit(cell)  # trips the breaker
            assert client.breaker_open
            server = ReproServer(ServerConfig(port=port))
            server.start()
            try:
                with pytest.raises(CircuitOpen):
                    client.submit(cell)  # still cooling down
                time.sleep(0.25)
                result = client.submit(cell, deadline=60.0)  # probe
                assert not client.breaker_open
            finally:
                server.stop()
        ref = {r.key: r for r in baseline}[cell.key]
        assert result.execution.counts == ref.execution.counts

    def test_deadline_cuts_backoff_short(self):
        port = free_port()
        retry = RetryPolicy(max_attempts=50, base_delay=0.3, jitter=0.0,
                            breaker_threshold=100)
        with ServiceClient("127.0.0.1", port, retry=retry) as client:
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                client.submit(_tiny_cell(), deadline=0.5)
            assert time.monotonic() - started < 5.0

    def test_slow_response_trips_the_deadline(self, cal):
        cell = make_cells(cal, benchmarks=("BV4",), seeds=(0,))[0]
        with running_server(faults=FaultPlan(conn_delay={0: 5.0})) as \
                (_server, host, port):
            with ServiceClient(host, port,
                               retry=RetryPolicy(max_attempts=1)) as \
                    client:
                with pytest.raises(DeadlineExceeded):
                    client.submit(cell, deadline=1.0)


def _tiny_cell():
    """A cell that is never executed (transport-failure tests)."""
    cal = default_ibmq16_calibration()
    return make_cells(cal, benchmarks=("BV4",), seeds=(0,))[0]


# --------------------------------------------------------------------------
# Chaos drills: connection faults, worker death, server kill + restart
# --------------------------------------------------------------------------


class TestChaosServed:
    def test_dropped_response_is_retried_to_bit_identity(
            self, cal, baseline, tmp_path):
        cells = make_cells(cal, benchmarks=("BV4", "Toffoli"),
                           seeds=(0,))
        with running_server(cache_dir=tmp_path / "store",
                            faults=FaultPlan(conn_drop=(1,))) as \
                (_server, host, port):
            with ServiceClient(host, port,
                               retry=RetryPolicy(base_delay=0.05)) as \
                    client:
                results = client.submit_many(cells, deadline=120.0)
                stats = dict(client.stats)
        assert_matches_reference(run_sweep(cells), results)
        assert stats["transport_failures"] == 1
        assert stats["retries"] >= 1
        # The resubmitted cell was already journaled: served as a hit,
        # not recomputed.
        assert stats["journal_hits"] >= 1

    def test_truncated_response_is_rejected_and_retried(
            self, cal, tmp_path):
        cells = make_cells(cal, benchmarks=("BV4", "Toffoli"),
                           seeds=(0,))
        with running_server(cache_dir=tmp_path / "store",
                            faults=FaultPlan(conn_trunc=(0,))) as \
                (_server, host, port):
            with ServiceClient(host, port,
                               retry=RetryPolicy(base_delay=0.05)) as \
                    client:
                results = client.submit_many(cells, deadline=120.0)
                stats = dict(client.stats)
        assert_matches_reference(run_sweep(cells), results)
        assert stats["transport_failures"] == 1
        assert stats["journal_hits"] >= 1

    def test_worker_death_behind_the_service_is_invisible(
            self, cells, baseline):
        """A transient worker kill inside the server's pool is absorbed
        by the supervised-pool retry; clients see only correct
        results."""
        with running_server(workers=3, max_retries=2, batch_window=0.5,
                            batch_max=16,
                            faults=FaultPlan(kill_on={0: 1})) as \
                (_server, host, port):
            results = {}

            def submit_one(index, cell):
                with ServiceClient(host, port, tenant=f"t{index}",
                                   jitter_seed=index) as client:
                    results[cell.key] = client.submit(cell,
                                                      deadline=180.0)

            threads = [threading.Thread(target=submit_one, args=(i, c))
                       for i, c in enumerate(cells)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert_matches_reference(baseline, list(results.values()))

    def test_connection_chaos_compound_drill(self, cal, baseline,
                                             tmp_path):
        """The end-to-end chaos proof: dropped AND truncated responses
        in one served sweep, with a journal — the client converges on
        results bit-identical to the unfaulted in-process run."""
        cells = make_cells(cal)
        plan = FaultPlan(conn_drop=(1, 4), conn_trunc=(2,),
                         conn_delay={0: 0.2})
        with running_server(cache_dir=tmp_path / "store",
                            faults=plan) as (server, host, port):
            with ServiceClient(host, port,
                               retry=RetryPolicy(base_delay=0.05)) as \
                    client:
                results = client.submit_many(cells, deadline=300.0)
                stats = dict(client.stats)
            health = server.health()
        assert_matches_reference(baseline, results)
        assert stats["transport_failures"] == 3  # two drops + one trunc
        # Two cells were resubmitted after a faulted response; both
        # were served from the journal, not recomputed. (The dropped
        # resubmission at seq 2 was *also* a journal hit, but its torn
        # response never reached the client's counters.)
        assert stats["journal_hits"] == 2
        assert health["status"] == "ok"


class TestServerRestartDrill:
    def test_killed_server_restarts_and_resumes_from_journal(
            self, cal, baseline, tmp_path):
        """The acceptance drill: the server is killed (``os._exit``)
        right after journaling a result but before answering; a
        restarted server on the same port serves the resubmission from
        the checkpoint journal and the client converges bit-identically
        with the in-process run."""
        cells = make_cells(cal, benchmarks=("BV4", "Toffoli"),
                           seeds=(0, 1))
        port = free_port()
        cache_dir = tmp_path / "store"
        env = dict(os.environ, REPRO_FAULTS="1",
                   REPRO_FAULT_SPEC="kill-server:1",
                   PYTHONPATH=_src_path())

        def spawn(spawn_env):
            return subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--port", str(port), "--cache-dir", str(cache_dir)],
                env=spawn_env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)

        first = spawn(env)
        try:
            wait_for_port(port)
            outcome = {}

            def run_client():
                retry = RetryPolicy(max_attempts=20, base_delay=0.3,
                                    multiplier=1.4, max_delay=1.5,
                                    breaker_threshold=50)
                with ServiceClient("127.0.0.1", port,
                                   retry=retry) as client:
                    outcome["results"] = client.submit_many(
                        cells, deadline=180.0)
                    outcome["stats"] = dict(client.stats)

            thread = threading.Thread(target=run_client)
            thread.start()
            # The kill fires on the second submit (seq 1), after its
            # result hit the journal.
            assert first.wait(timeout=120) == 86
            clean_env = dict(env)
            clean_env.pop("REPRO_FAULT_SPEC")
            second = spawn(clean_env)
            try:
                wait_for_port(port)
                thread.join(timeout=180)
                assert not thread.is_alive()
            finally:
                second.send_signal(signal.SIGTERM)
                assert second.wait(timeout=30) == 0
        finally:
            if first.poll() is None:  # pragma: no cover — drill failed
                first.kill()
                first.wait()
        assert_matches_reference(run_sweep(cells), outcome["results"])
        assert outcome["stats"]["transport_failures"] >= 1
        # The journaled-then-unanswered cell was served from the
        # restarted server's journal, not recomputed.
        assert outcome["stats"]["journal_hits"] >= 1
        journal = PersistentCompileCache(cache_dir).journal
        for cell in cells:
            assert journal.load(cell_fingerprint(cell)) is not None


class TestGracefulDrain:
    def test_sigterm_drains_journals_and_exits_zero(self, cal,
                                                    tmp_path):
        """Acceptance: SIGTERM mid-sweep finishes and journals the
        in-flight cell, sheds new submits with a draining notice, and
        exits 0 — no zombies, no lost work."""
        cells = make_cells(cal, benchmarks=("BV4", "Toffoli"),
                           seeds=(0,))
        port = free_port()
        cache_dir = tmp_path / "store"
        env = dict(os.environ, REPRO_FAULTS="1",
                   REPRO_FAULT_SPEC="delay:0=1.5",
                   PYTHONPATH=_src_path())
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port), "--cache-dir", str(cache_dir)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            wait_for_port(port)
            outcome = {}

            def submit_in_flight():
                with ServiceClient("127.0.0.1", port) as client:
                    outcome["result"] = client.submit(cells[0],
                                                      deadline=120.0)

            thread = threading.Thread(target=submit_in_flight)
            thread.start()
            time.sleep(0.6)  # the submit is admitted and executing
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.2)
            with ServiceClient("127.0.0.1", port,
                               retry=RetryPolicy(max_attempts=1)) as \
                    late:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    late.submit(cells[1], deadline=10.0)
            assert excinfo.value.reason == "draining"
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover — drill failed
                proc.kill()
                proc.wait()
        # The in-flight cell was answered correctly AND journaled
        # before exit.
        reference = run_sweep([cells[0]])
        assert outcome["result"].execution.counts == \
            reference.results[0].execution.counts
        journal = PersistentCompileCache(cache_dir).journal
        assert journal.load(cell_fingerprint(cells[0])) is not None


def _src_path() -> str:
    import repro

    return os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))


# --------------------------------------------------------------------------
# Satellite: argument validation
# --------------------------------------------------------------------------


class TestValidation:
    def test_run_sweep_rejects_negative_workers(self, cells):
        with pytest.raises(ValueError, match="workers must be >= 0"):
            run_sweep(cells, workers=-1)

    def test_run_sweep_rejects_negative_max_retries(self, cells):
        with pytest.raises(ValueError, match="max_retries must be >= 0"):
            run_sweep(cells, max_retries=-1)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_run_sweep_rejects_non_positive_batch_timeout(self, cells,
                                                          bad):
        with pytest.raises(ValueError,
                           match="batch_timeout must be positive"):
            run_sweep(cells, batch_timeout=bad)

    def test_run_sweep_zero_workers_and_retries_stay_legal(self, cal):
        sweep = run_sweep(make_cells(cal, benchmarks=("BV4",),
                                     seeds=(0,)),
                          workers=0, max_retries=0)
        assert sweep.ok

    @pytest.mark.parametrize("argv", [
        ["sweep", "--workers", "-1"],
        ["sweep", "--max-retries", "-2"],
        ["sweep", "--batch-timeout", "0"],
        ["sweep", "--batch-timeout", "-3.5"],
        ["serve", "--queue-capacity", "0"],
        ["serve", "--workers", "-1"],
        ["submit", "--max-attempts", "0"],
        ["submit", "--deadline", "-1"],
    ])
    def test_cli_rejects_bad_values_at_parse_time(self, argv, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "must be" in capsys.readouterr().err
